"""Setuptools shim (the environment has no `wheel` package, so the
legacy `setup.py develop` path is what `pip install -e .` uses)."""

from setuptools import setup

setup()
