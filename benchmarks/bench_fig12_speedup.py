"""Figure 12: overall GC speedup across platforms.

Paper headline: replacing DDR4 with HMC buys 1.21x; adding Charon in
the logic layer reaches 3.29x (geomean over the six workloads), with
the Ideal offload device bounding what primitive offload could give.
"""

from repro.experiments import figures, render_table
from repro.units import geomean

from conftest import publish, run_once


def test_figure12(benchmark):
    rows = run_once(benchmark, figures.figure12)
    publish("fig12_speedup", render_table(
        rows,
        title="Figure 12: GC speedup over cpu-ddr4 "
              "(paper geomean: HMC 1.21x, Charon 3.29x)"))
    geo = rows[-1]
    assert geo["workload"] == "geomean"
    # Platform ordering: DDR4 < HMC < Charon < Ideal.
    assert 1.0 < geo["cpu-hmc"] < geo["charon"] < geo["ideal"]
    # The headline factor lands in the paper's neighbourhood.
    assert 2.0 < geo["charon"] < 6.0
    # HMC alone is a modest win, as the paper stresses.
    assert geo["cpu-hmc"] < 2.0
