"""Figure 14: per-primitive speedup of Charon over the DDR4 host.

Paper averages (maxima): Search 2.90x (4.09x), Scan&Push 1.20x (1.86x,
with degradation on the Spark ML workloads), Copy 10.17x (26.15x),
Bitmap Count 5.63x (6.11x).
"""

from repro.experiments import figures, render_table

from conftest import publish, run_once


def test_figure14(benchmark):
    rows = run_once(benchmark, figures.figure14)
    publish("fig14_per_primitive", render_table(
        rows,
        title="Figure 14: per-primitive speedup, Charon vs cpu-ddr4 "
              "(paper avg: S 2.90, SP 1.20, C 10.17, BC 5.63)"))
    average = next(r for r in rows if r["workload"] == "average")
    peak = next(r for r in rows if r["workload"] == "max")
    # Search: all workloads benefit moderately.
    assert 2.0 < average["search"] < 4.5
    # Scan&Push: the weakest primitive, degrading on ML workloads.
    assert average["scan_push"] < 1.5
    spark_sp = [r["scan_push"] for r in rows
                if r["workload"] in ("BS", "KM", "LR")]
    assert all(value < 1.2 for value in spark_sp)
    # Copy: the strongest primitive; ALS peaks it.
    assert average["copy"] > 3.0
    assert peak["copy"] == max(
        r["copy"] for r in rows if isinstance(r["copy"], float))
    # Bitmap Count: the optimized algorithm + bitmap cache pay off.
    assert average["bitmap_count"] > 3.0
