"""Micro-benchmarks of the simulator's hot kernels.

Unlike the figure benches (which regenerate paper exhibits once), these
use pytest-benchmark's statistical timing to track the library's own
performance: functional scavenge throughput, the bitmap count
datapaths, the bitmap cache, and offload dispatch.
"""

from repro.config import HeapConfig
from repro.core.bitmap_math import streaming_live_words
from repro.cpu.cache import SetAssociativeCache
from repro.gcalgo.parallel_scavenge import MinorGC
from repro.gcalgo.trace import Primitive, TraceEvent
from repro.heap.heap import JavaHeap
from repro.heap.mark_bitmap import MarkBitmaps
from repro.platform import TraceReplayer, build_platform
from repro.workloads.base import workload_klasses

from conftest import run_once

HEAP_BYTES = 8 * 1024 * 1024


def populated_heap():
    heap = JavaHeap(HeapConfig(heap_bytes=HEAP_BYTES),
                    klasses=workload_klasses())
    prev = 0
    for _ in range(2000):
        view = heap.new_object("Record")
        heap.set_field(view, 0, prev)
        prev = view.addr
    heap.roots.append(prev)
    return heap


def test_minor_gc_functional_throughput(benchmark):
    """Full functional scavenge of 2000 live objects."""

    def scavenge():
        heap = populated_heap()
        return MinorGC(heap).collect()

    trace = benchmark(scavenge)
    assert trace.objects_copied == 2000


def test_bitmap_streaming_datapath(benchmark):
    """The unit's word-serial subtract+popcount over a 4K-bit range."""
    bitmaps = MarkBitmaps(0x1000_0000, 0x1000_0000 + 4096 * 8)
    cursor = 0
    while cursor < 4090:
        bitmaps.mark_object(0x1000_0000 + cursor * 8, 5 * 8)
        cursor += 7
    beg_int, end_int, num_bits = bitmaps.range_bits(
        0x1000_0000, 0x1000_0000 + 4096 * 8)
    mask = (1 << 64) - 1
    beg = [(beg_int >> (64 * i)) & mask for i in range(64)]
    end = [(end_int >> (64 * i)) & mask for i in range(64)]

    count = benchmark(streaming_live_words, beg, end, num_bits)
    assert count > 0


def test_naive_bitmap_walk(benchmark):
    """The Fig. 8 software loop over the same range (the baseline the
    unit's algorithm beats)."""
    bitmaps = MarkBitmaps(0x1000_0000, 0x1000_0000 + 4096 * 8)
    cursor = 0
    while cursor < 4090:
        bitmaps.mark_object(0x1000_0000 + cursor * 8, 5 * 8)
        cursor += 7

    count = benchmark(bitmaps.naive_live_words_in_range,
                      0x1000_0000, 0x1000_0000 + 4096 * 8)
    assert count > 0


def test_bitmap_cache_access(benchmark):
    """Tag lookup + LRU update throughput."""
    cache = SetAssociativeCache(8 * 1024, 8, 32)
    addrs = [i * 32 for i in range(512)]

    def churn():
        for addr in addrs:
            cache.access(addr)

    benchmark(churn)


def test_offload_dispatch_rate(benchmark):
    """End-to-end offload cost: packet, routing, unit, response."""
    heap = JavaHeap(HeapConfig(heap_bytes=HEAP_BYTES),
                    klasses=workload_klasses())
    platform = build_platform(
        "charon",
        __import__("repro.config", fromlist=["default_config"])
        .default_config().with_heap_bytes(HEAP_BYTES), heap)
    event = TraceEvent(Primitive.COPY, "evacuate",
                       src=heap.layout.eden.start,
                       dst=heap.layout.old.start, size_bytes=4096)
    clock = iter(range(1, 10_000_000))

    def offload():
        return platform.offload_finish(next(clock) * 1e-5, event,
                                       "minor")

    assert benchmark(offload) > 0


def test_trace_replay_throughput(benchmark):
    """Replayer event rate on a real minor-GC trace."""
    heap = populated_heap()
    trace = MinorGC(heap).collect()
    from repro.config import default_config
    config = default_config().with_heap_bytes(HEAP_BYTES)

    def replay():
        fresh = JavaHeap(config.heap, klasses=workload_klasses())
        platform = build_platform("cpu-ddr4", config, fresh)
        return TraceReplayer(platform).replay(trace)

    result = benchmark(replay)
    assert result.wall_seconds > 0
