"""Figure 2: GC overhead (vs mutator time) over heap over-provisioning.

Paper: even at 2x the minimum heap GC costs ~15% of mutator time, and
the overhead explodes (up to 365%) as the heap approaches the minimum.
This bench finds each workload's minimum viable heap by bisection
(catching OutOfMemoryError) and measures GC/mutator time at 1x, 1.25x,
1.5x and 2x, on the host-DDR4 platform as the paper does.
"""

from repro.experiments import figures, render_table

from conftest import publish, run_once


def test_figure2(benchmark):
    rows = run_once(benchmark, figures.figure2)
    publish("fig02_heap_overhead", render_table(
        rows,
        title="Figure 2: GC overhead %% of mutator time "
              "(paper: ~15%% at 2x min heap, exploding toward 1x)"))
    for row in rows:
        # The minimum heap is a real minimum: at most the Table 3 size.
        assert row["min_heap_mb"] > 0
        # Overheads are positive and generally shrink with headroom.
        assert row["x2"] > 0
