"""Figure 16: memory-side vs CPU-side Charon placement.

Paper: placing the units beside the host memory controller keeps the
MLP and algorithm benefits but forfeits the internal TSV bandwidth —
about 37% less throughput than the logic-layer placement (i.e. the
memory side is ~1.59x the CPU side).
"""

from repro.experiments import figures, render_table
from repro.units import geomean

from conftest import publish, run_once


def test_figure16(benchmark):
    rows = run_once(benchmark, figures.figure16)
    publish("fig16_cpu_side", render_table(
        rows,
        title="Figure 16: memory-side vs CPU-side Charon "
              "(paper: memory side ~1.59x the CPU side)"))
    geo = rows[-1]
    assert geo["workload"] == "geomean"
    # Memory-side wins overall, within the paper's neighbourhood.
    assert 1.2 < geo["memside_vs_cpuside"] < 2.2
    # CPU-side Charon still beats the plain host (MLP + algorithms).
    assert all(row["charon_cpuside"] > 1.0 for row in rows[:-1])
    # The copy-heavy workloads show the biggest memory-side advantage.
    als = next(r for r in rows if r["workload"] == "ALS")
    assert als["memside_vs_cpuside"] > 1.0
