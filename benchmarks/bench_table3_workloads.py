"""Table 3: the workloads, their datasets and (scaled) heap sizes."""

import pytest

from repro.experiments import render_table, tables
from repro.experiments.runner import collect_run
from repro.workloads.registry import WORKLOAD_NAMES

from conftest import publish, run_once


def test_table3(benchmark):
    def generate():
        rows = tables.table3()
        # Augment with actual GC activity from real runs.
        for row in rows:
            name = next(n for n in WORKLOAD_NAMES
                        if tables.WORKLOAD_ABBREV[n] == row["workload"])
            run = collect_run(name)
            row["minor_gcs"] = run.minor_count
            row["major_gcs"] = run.major_count
            row["allocated_mb"] = round(run.allocated_bytes / 2**20, 1)
        return rows

    rows = run_once(benchmark, generate)
    publish("table3_workloads", render_table(
        rows, title="Table 3: workloads (paper heaps scaled 1/256)"))
    assert len(rows) == 6
    heaps = {row["workload"]: row["paper_heap_gb"] for row in rows}
    assert heaps == {"BS": 10.0, "KM": 8.0, "LR": 12.0, "CC": 4.0,
                     "PR": 4.0, "ALS": 4.0}
    # Every workload actually exercises the generational machinery.
    for row in rows:
        assert row["minor_gcs"] >= 3
    assert sum(row["major_gcs"] for row in rows) >= 4
