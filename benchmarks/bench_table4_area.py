"""Table 4: Charon component areas and the Sec. 5.3 power headroom."""

import pytest

from repro.core import area_power
from repro.experiments import render_table, tables

from conftest import publish, run_once


def test_table4(benchmark):
    def generate():
        return tables.table4(), tables.table4_summary()

    rows, summary = run_once(benchmark, generate)
    text = render_table(rows, title="Table 4: Charon area (mm^2, "
                        "TSMC 40nm synthesis results from the paper)")
    summary_rows = [{"metric": key, "value": value}
                    for key, value in summary.items()]
    text += "\n\n" + render_table(summary_rows,
                                  title="Sec. 5.3 area/power headlines")
    publish("table4_area", text)

    assert summary["total_area_mm2"] == pytest.approx(1.947, abs=1e-3)
    assert summary["logic_layer_fraction_pct"] == pytest.approx(
        0.49, abs=0.02)
    assert summary["max_power_density_mw_mm2"] == pytest.approx(
        45.1, abs=0.2)
    assert area_power.thermally_feasible()
