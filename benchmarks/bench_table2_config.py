"""Table 2: the architectural parameters as actually configured.

Not a performance result; this bench asserts the simulated system is
built from the paper's numbers (the figure benches then depend on it).
"""

import pytest

from repro.experiments import render_table, tables

from conftest import publish, run_once


def test_table2(benchmark):
    rows = run_once(benchmark, tables.table2)
    publish("table2_config", render_table(
        rows, title="Table 2: architectural parameters in effect"))
    params = {row["parameter"]: row["value"] for row in rows}
    assert params["host cores"] == 8
    assert params["host frequency (GHz)"] == pytest.approx(2.67)
    assert params["instruction window"] == 36
    assert params["DDR4 bandwidth (GB/s)"] == pytest.approx(34.0)
    assert params["DDR4 energy (pJ/bit)"] == 35.0
    assert params["HMC cubes"] == 4
    assert params["HMC vaults per cube"] == 32
    assert params["HMC internal BW per cube (GB/s)"] == \
        pytest.approx(320.0)
    assert params["HMC link BW (GB/s)"] == pytest.approx(80.0)
    assert params["HMC link latency (ns)"] == pytest.approx(3.0)
    assert params["HMC energy (pJ/bit)"] == 21.0
    assert params["Copy/Search units"] == 8
    assert params["Bitmap Count units"] == 8
    assert params["Scan&Push units"] == 8
    assert params["bitmap cache (KB)"] == 8
    assert params["MAI entries per cube"] == 32
