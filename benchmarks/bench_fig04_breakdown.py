"""Figure 4: runtime breakdown of MinorGC and MajorGC on the host.

Paper: a handful of primitives dominate — Search/Scan&Push/Copy cover
71.4%/78.2% of MinorGC time (Spark/GraphChi) and Scan&Push/Bitmap
Count/Copy cover 74.1%/79.1% of MajorGC — motivating primitive-level
offload instead of full-GC offload.
"""

from repro.experiments import figures, render_table

from conftest import publish, run_once


def test_figure4(benchmark):
    rows = run_once(benchmark, figures.figure4)
    publish("fig04_breakdown", render_table(
        rows,
        title="Figure 4: GC runtime breakdown on cpu-ddr4 (%% of GC "
              "time; paper: offloadable 71-93%% depending on workload)"))
    minor_rows = [row for row in rows if row["gc"] == "minor"]
    for row in minor_rows:
        # The offloadable primitives dominate every MinorGC.
        assert row["offloadable_pct"] > 50.0
    for row in rows:
        if row["gc"] == "major" and row["workload"] in ("CC", "PR"):
            # Pointer-dense majors are dominated by the primitives too.
            # (ALS majors degenerate: its whole old generation sits in
            # the dense prefix, so almost nothing is offloadable --
            # and almost nothing needs doing.)
            assert row["offloadable_pct"] > 50.0
    spark = [row for row in minor_rows
             if row["workload"] in ("BS", "KM", "LR")]
    graph = [row for row in minor_rows
             if row["workload"] in ("CC", "PR")]
    # Spark minors are Copy/Search heavy; GraphChi minors lean on
    # Scan&Push much more (Sec. 3.2).
    assert all(row["copy"] > row["scan_push"] for row in spark)
    assert all(row["scan_push"] > 15.0 for row in graph)
