"""Figure 15: GC throughput scalability with thread/unit count.

Paper: Charon scales much better than the DDR4 host (which saturates
its 34 GB/s), and the distributed bitmap-cache/TLB organisation
generally beats the unified one as contention at the central cube
grows.
"""

from repro.experiments import figures, render_table

from conftest import publish, run_once

#: Two contrasting workloads (the paper highlights GraphChi-CC as the
#: exception where unified can win); the full six would quadruple the
#: longest benchmark for no additional signal.
WORKLOADS = ("spark-lr", "graphchi-cc")
THREADS = (1, 2, 4, 8, 16)


def test_figure15(benchmark):
    rows = run_once(
        benchmark, lambda: figures.figure15(WORKLOADS,
                                            thread_counts=THREADS))
    publish("fig15_scalability", render_table(
        rows,
        title="Figure 15: GC throughput vs threads, normalized to "
              "1-thread cpu-ddr4 (paper: Charon scales, DDR4 "
              "saturates; distributed >= unified)"))
    by_workload = {}
    for row in rows:
        by_workload.setdefault(row["workload"], []).append(row)
    for name, series in by_workload.items():
        eight = next(r for r in series if r["threads"] == 8)
        sixteen = next(r for r in series if r["threads"] == 16)
        # The DDR4 host saturates at the core count; Charon keeps
        # scaling past it by adding units.
        assert sixteen["ddr4"] <= eight["ddr4"] * 1.02
        assert sixteen["charon_distributed"] > \
            eight["charon_distributed"] * 1.1
        # At full scale Charon clearly outruns the host, and the
        # distributed organisation is at least as good as unified.
        assert sixteen["charon_distributed"] > sixteen["ddr4"]
        assert sixteen["charon_distributed"] >= \
            sixteen["charon_unified"] * 0.98
