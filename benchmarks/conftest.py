"""Benchmark harness plumbing.

Every benchmark regenerates one of the paper's result exhibits.  The
rendered tables are printed (visible with ``pytest -s``) and also
written under ``benchmarks/results/`` so EXPERIMENTS.md can be checked
against a fresh run.  Workload traces are produced once per session and
shared through :mod:`repro.experiments.runner`'s cache, so the full
suite replays each workload on each platform exactly once.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print an exhibit and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiment sweeps are deterministic and expensive; statistical
    repetition would only re-measure the memoisation layer.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
