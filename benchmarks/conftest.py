"""Benchmark harness plumbing.

Every benchmark regenerates one of the paper's result exhibits.  The
rendered tables are printed (visible with ``pytest -s``) and also
written under ``benchmarks/results/`` so EXPERIMENTS.md can be checked
against a fresh run.  Workload traces are produced once per session and
shared through :mod:`repro.experiments.runner`'s cache, so the full
suite replays each workload on each platform exactly once.

Captured traces also persist across sessions: unless the caller
already pointed ``REPRO_TRACE_CACHE`` somewhere, the content-addressed
trace cache lives in ``benchmarks/.trace-cache``, so a second
benchmark run skips every collector execution and goes straight to
replay.  The session footer prints the cache hit/miss tally.
"""

from __future__ import annotations

import os
import pathlib

from repro.config import TRACE_CACHE_ENV
from repro.obs import provenance
from repro.obs.tracer import install_env_exporters

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

os.environ.setdefault(TRACE_CACHE_ENV,
                      str(pathlib.Path(__file__).parent / ".trace-cache"))

# Honour REPRO_TRACE_OUT / REPRO_METRICS_OUT under pytest too, so a
# benchmark session can leave a Chrome trace and a metric snapshot
# behind (the CI bench-smoke job uploads both as artifacts).
install_env_exporters()


def publish(name: str, text: str) -> None:
    """Print an exhibit and persist it under benchmarks/results/,
    alongside a provenance manifest tying it to its trace-cache keys."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    provenance.write_manifest(RESULTS_DIR,
                              name=f"{name}.manifest.json",
                              command=f"benchmark {name}",
                              outputs=[f"{name}.txt"])


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiment sweeps are deterministic and expensive; statistical
    repetition would only re-measure the memoisation layer.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    from repro.experiments import trace_cache
    terminalreporter.write_line(trace_cache.stats_line())
