"""Section 3.3's offload-selection argument, quantified.

The paper excludes linked-list traversal ("limited parallelism,
latency-bound") and allocate/check-mark ("single atomic instructions"
with too-small offload granularity) from the offload set.  This bench
reproduces both comparisons.
"""

from repro.experiments import primitive_selection, render_table

from conftest import publish, run_once


def test_primitive_selection(benchmark):
    def generate():
        return (primitive_selection.linked_list_study(),
                primitive_selection.check_mark_study(),
                primitive_selection.selection_summary())

    traversal, marks, summary = run_once(benchmark, generate)
    text = render_table(
        traversal, title="Sec. 3.3: linked-list traversal vs an "
        "equal-volume Copy")
    text += "\n\n" + render_table(
        marks, title="Sec. 3.3: a single check-mark, host vs offload")
    summary_rows = [{"metric": key, "value": value}
                    for key, value in summary.items()]
    text += "\n\n" + render_table(summary_rows, title="Conclusion")
    publish("sec33_primitive_selection", text)

    # The traversal's gain is a small constant factor...
    assert summary["traversal_speedup"] < 3.0
    # ...an order of magnitude below the bandwidth-parallel Copy.
    assert summary["traversal_benefit_small"]
    assert summary["copy_speedup"] > 8.0
    # Per-node offloads are even worse than one big offload.
    per_node = next(r for r in traversal
                    if "per-node" in r["operation"])
    one_shot = next(r for r in traversal
                    if "one offload" in r["operation"])
    assert per_node["speedup"] < one_shot["speedup"]
    # And a check-mark offload costs several times a cached host check.
    assert summary["check_mark_offload_penalty"] > 2.0
