"""Figure 13: utilized memory bandwidth during GC and access locality.

Paper: Charon sustains far more than the 80 GB/s off-chip limit by
riding the TSVs, and over 70% of its unit accesses are cube-local for
most workloads (LR and CC drop to about half).
"""

from repro.experiments import figures, render_table

from conftest import publish, run_once


def test_figure13(benchmark):
    rows = run_once(benchmark, figures.figure13)
    publish("fig13_bandwidth", render_table(
        rows,
        title="Figure 13: average DRAM bandwidth during GC (GB/s) and "
              "Charon local-access share (paper: >70%% local for most)"))
    for row in rows:
        # Charon always moves more bytes/second than the host can.
        assert row["charon_gbps"] > row["cpu-ddr4_gbps"]
        assert 0.0 <= row["local_pct"] <= 100.0
    # The DDR4 host never exceeds its 34 GB/s; Charon exceeds the
    # 80 GB/s external link on the bandwidth-hungry workloads.
    assert all(row["cpu-ddr4_gbps"] <= 34.5 for row in rows)
    assert any(row["charon_gbps"] > 80.0 for row in rows)
