"""Figure 17: GC energy across platforms.

Paper: Charon cuts GC energy 60.7% vs the DDR4 host and 51.6% vs the
HMC host, despite drawing somewhat more power while running, because
collections finish so much earlier.
"""

from repro.experiments import figures, render_table

from conftest import publish, run_once


def test_figure17(benchmark):
    rows = run_once(benchmark, figures.figure17)
    summary = figures.energy_savings_summary()
    text = render_table(
        rows,
        title="Figure 17: GC energy normalized to cpu-ddr4 "
              "(paper: Charon at 0.393 vs DDR4, 0.484 vs HMC)")
    text += (f"\n\nmeasured savings: {summary['savings_vs_ddr4_pct']}% "
             f"vs DDR4, {summary['savings_vs_hmc_pct']}% vs HMC "
             "(paper: 60.7% / 51.6%)")
    publish("fig17_energy", text)
    average = rows[-1]
    assert average["workload"] == "average"
    # The ordering and rough magnitudes of the paper.
    assert average["charon"] < average["cpu-hmc"] < 1.0
    assert 40.0 < summary["savings_vs_ddr4_pct"] < 80.0
    assert 30.0 < summary["savings_vs_hmc_pct"] < 70.0
