"""Table 1: applicability of Charon primitives across collectors.

Paper: Copy/Search and Scan&Push apply to ParallelScavenge, G1 and CMS;
Bitmap Count applies to the compacting collectors only.  Both
non-ParallelScavenge rows are demonstrated executably: the mark-sweep
(CMS-like) traces contain Scan&Push but no Bitmap Count and no Copy,
while the simplified G1 regional collector's traces contain all four
primitives (Bitmap Count "with minor fix" for region liveness).
"""

from repro.experiments import render_table, tables

from conftest import publish, run_once


def test_table1(benchmark):
    def generate():
        return tables.table1(), tables.table1_demonstration("graphchi-cc")

    matrix, demo = run_once(benchmark, generate)
    text = render_table(
        matrix, title="Table 1: primitive applicability "
        "(vv = as is, v = minor fix, x = not applicable)")
    demo_rows = [{"evidence": key, "count": value}
                 for key, value in demo.items()]
    text += "\n\n" + render_table(
        demo_rows, title="Executable CMS-row evidence (mark-sweep run)")
    publish("table1_applicability", text)

    cms = next(r for r in matrix if r["collector"] == "CMS")
    assert cms["bitmap_count"] == "x"
    assert demo["sweep_bitmap_count_events"] == 0
    assert demo["sweep_copy_events"] == 0
    assert demo["sweep_scan_push_events"] > 0
    assert demo["minor_copy_events"] > 0
    assert demo["minor_search_events"] > 0
    # G1 exercises all four primitives.
    assert demo["g1_copy_events"] > 0
    assert demo["g1_search_events"] > 0
    assert demo["g1_scan_push_events"] > 0
    assert demo["g1_bitmap_count_events"] > 0
