"""Ablations of Charon's design choices (beyond the paper's figures).

Quantifies the decisions the paper makes by argument: the Sec. 4.5
bitmap cache, the Sec. 4.4 central placement of Scan&Push, unit-count
scaling, and the dispatch-cost budget that makes fine-grained offload
viable at all.
"""

from repro.experiments import ablations, render_table

from conftest import publish, run_once

WORKLOADS = ("graphchi-cc", "spark-bs")


def test_bitmap_cache_ablation(benchmark):
    rows = run_once(benchmark,
                    lambda: ablations.bitmap_cache_ablation(WORKLOADS))
    publish("ablation_bitmap_cache", render_table(
        rows, title="Ablation: Sec. 4.5 bitmap cache on/off "
        "(paper reports ~90% hit rate)"))
    cc = next(r for r in rows if r["workload"] == "CC")
    # The cache earns its keep on the Bitmap-Count-heavy workload.
    assert cc["hit_rate_pct"] > 60.0
    assert cc["bitmap_slowdown_without"] > 1.3
    assert cc["gc_slowdown_without"] > 1.05


def test_scan_push_placement_ablation(benchmark):
    rows = run_once(
        benchmark,
        lambda: ablations.scan_push_placement_ablation(WORKLOADS))
    publish("ablation_scan_push_placement", render_table(
        rows, title="Ablation: Scan&Push at the central cube (paper, "
        "Sec. 4.4) vs at the object's cube"))
    for row in rows:
        # The paper's choice wins: central placement minimises expected
        # hops for the scattered referee loads.
        assert row["central_advantage"] > 1.0


def test_unit_count_sweep(benchmark):
    rows = run_once(benchmark,
                    lambda: ablations.unit_count_sweep(WORKLOADS))
    publish("ablation_unit_count", render_table(
        rows, title="Ablation: GC speedup vs total Charon unit count"))
    for row in rows:
        counts = sorted(
            (key for key in row if key.startswith("units_")),
            key=lambda key: int(key.split("_")[1]))
        # More units never hurt, and help somewhere in the sweep.
        values = [row[key] for key in counts]
        assert values[-1] >= values[0] * 0.98
        assert max(values) > values[0]


def test_dispatch_overhead_sweep(benchmark):
    rows = run_once(benchmark,
                    lambda: ablations.dispatch_overhead_sweep(WORKLOADS))
    publish("ablation_dispatch_overhead", render_table(
        rows, title="Ablation: Charon speedup vs host-side dispatch "
        "cost (fine-grained offload needs a cheap intrinsic)"))
    for row in rows:
        # Monotone: a costlier intrinsic always erodes the speedup,
        # and a 500 ns (syscall-class) dispatch erases most of it on
        # the small-object workload.
        assert row["0ns"] >= row["20ns"] >= row["100ns"] >= row["500ns"]
    cc = next(r for r in rows if r["workload"] == "CC")
    assert cc["500ns"] < 1.0  # offload stops paying off


def test_topology_ablation(benchmark):
    rows = run_once(
        benchmark,
        lambda: ablations.topology_ablation(("graphchi-als",
                                             "spark-bs")))
    publish("ablation_topology", render_table(
        rows, title="Ablation: star vs fully-connected inter-cube "
        "links (the Sec. 4.6 scalability suggestion)"))
    als = next(r for r in rows if r["workload"] == "ALS")
    # The remote-write-bound giant copies benefit from direct links.
    assert als["speedup"] > 1.05
    for row in rows:
        # Never slower: removing hops can only help.
        assert row["speedup"] >= 0.99
