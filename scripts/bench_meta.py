"""Shared provenance stamp for every ``BENCH_*.json`` report.

Each benchmark writer merges :func:`bench_metadata` into its report so
an archived artifact is self-describing: which commit produced it and
when.  Kept dependency-free (stdlib only) — the bench scripts import it
by file-system proximity (their own directory is on ``sys.path``).
"""

from __future__ import annotations

import datetime
import subprocess
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def bench_metadata() -> dict:
    """``{"git_sha": ..., "generated_at": ...}`` for a report.

    The sha degrades to ``"unknown"`` outside a git checkout (an
    unpacked source artifact) rather than failing the benchmark.
    """
    try:
        process = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL)
        sha = process.stdout.strip() if process.returncode == 0 else ""
    except OSError:
        sha = ""
    return {
        "git_sha": sha or "unknown",
        "generated_at": datetime.datetime.now(datetime.timezone.utc)
                                .isoformat(timespec="seconds"),
    }
