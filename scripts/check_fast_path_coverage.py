#!/usr/bin/env python
"""CI guard: every timing platform must take the fast replay path.

Replays the bundled test traces — the TinySpark run plus the mixed
minor/major/sweep and G1 fixture traces — on every platform
configuration (the five named platforms plus ``charon --distributed``)
through ``make_replayer`` in auto mode, then fails if

* any platform silently fell back to the event-by-event replayer
  (the ``replay.kernel_fallbacks`` metric, recorded by auto mode), or
* any replay result reports ``replay_kernel == "event"``, or
* a platform stopped declaring fast-path support at any of the
  1/2/4/8 GC-thread counts the paper sweeps.

The trace sets themselves are generated fresh at the top, which also
pins the *collect-side* fast path: the script fails if that generation
recorded zero fast heap-kernel calls, any ``heap.kernel_fallbacks``
demotion to scalar kernels, or any collector run that took the scalar
path outright (``heap.kernel_calls`` with ``kernel=scalar``) while the
default ``fast`` mode was in effect.

This pins the support matrix: a change that quietly demotes a platform
to event-by-event replay turns every trace sweep back into the
bottleneck the batched kernels removed, and nothing else would notice
— the results stay correct, just slow.  Exit status 0 on success.
Used by the CI ``fast-path-coverage`` job; runnable locally with
``python scripts/check_fast_path_coverage.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

PLATFORMS = ("ideal", "cpu-ddr4", "cpu-hmc", "charon",
             "charon-cpuside", "charon-distributed")
THREADS = (1, 2, 4, 8)


def main() -> int:
    from repro.gcalgo.columnar import compile_traces
    from repro.obs.metrics import global_metrics
    from repro.platform.base import FAST_REFUSE
    from repro.platform.fast_replay import (FastTraceReplayer,
                                            make_replayer)

    from tests.conftest import (TinySpark, make_concurrent_traces,
                                make_g1_traces, make_mixed_run,
                                platform_for)

    trace_sets = {
        "spark-bs": TinySpark().run().traces,
        "mixed": make_mixed_run().traces,
        "g1": make_g1_traces(),
        "concurrent": make_concurrent_traces(),
    }
    compiled_sets = {name: compile_traces(traces)
                     for name, traces in trace_sets.items()}
    failures = []

    # Collect-side guard: generating the trace sets above ran real
    # collectors under the default (fast) heap-kernel mode.
    fast_calls = 0.0
    heap_fallbacks = 0.0
    scalar_collects = []
    for sample in global_metrics().samples():
        metric = sample["metric"]
        if metric == "heap.kernel_calls":
            labels = sample["labels"]
            if labels.get("kernel") == "fast":
                fast_calls += sample["value"]
            elif labels.get("op") in ("minor", "major", "sweep", "g1",
                                      "concurrent"):
                scalar_collects.append(
                    f"{labels['op']} x{sample['value']:.0f}")
        elif metric == "heap.kernel_fallbacks":
            heap_fallbacks += sample["value"]
    if fast_calls == 0:
        failures.append("trace generation recorded zero fast "
                        "heap-kernel calls")
    if heap_fallbacks:
        failures.append(f"{heap_fallbacks:.0f} collector run(s) were "
                        f"silently demoted to scalar heap kernels")
    if scalar_collects:
        failures.append("collector runs took the scalar heap-kernel "
                        "path in fast mode: "
                        + ", ".join(scalar_collects))
    if not failures:
        print(f"collect-side kernels: {fast_calls:.0f} fast calls, "
              f"0 fallbacks, 0 scalar collector runs")
    for name in PLATFORMS:
        for threads in THREADS:
            platform, _, _ = platform_for(name)
            level, why = platform.fast_replay_support(threads)
            if level == FAST_REFUSE:
                failures.append(f"{name} x{threads}: refuses the fast "
                                f"path ({why})")
                continue
            replayer = make_replayer(platform, threads=threads)
            if not isinstance(replayer, FastTraceReplayer):
                failures.append(f"{name} x{threads}: make_replayer fell "
                                f"back to event-by-event replay")
                continue
            for set_name, compiled in compiled_sets.items():
                result = replayer.replay_all(compiled)
                if result.replay_kernel in ("", "event", "mixed"):
                    failures.append(
                        f"{name} x{threads} on {set_name}: replay "
                        f"kernel was {result.replay_kernel!r}")
                else:
                    print(f"{name:15s} x{threads} {set_name:8s} -> "
                          f"{result.replay_kernel}")

    fallbacks = sum(
        sample["value"] for sample in global_metrics().samples()
        if sample["metric"] == "replay.kernel_fallbacks")
    if fallbacks:
        failures.append(f"{fallbacks:.0f} silent fallback(s) to "
                        f"event-by-event replay were recorded")

    # Publish the verdict where live consumers see it: a gauge in the
    # registry (scraped by /metrics when a port is armed) and a typed
    # run-event record — a kernel-coverage regression then shows up on
    # the instrument panel, not only in the CI log.
    from repro.obs.eventlog import get_eventlog
    from repro.obs.tracer import install_env_exporters
    install_env_exporters()
    coverage = global_metrics().scope("coverage")
    coverage.gauge("fast_path_ok",
                   "1 when every platform took the fast replay "
                   "path").set(0.0 if failures else 1.0)
    coverage.gauge("fast_path_failures",
                   "fast-path coverage violations found").set(
                       len(failures))
    eventlog = get_eventlog()
    if eventlog.enabled:
        eventlog.emit("coverage_check", ok=not failures,
                      failures=len(failures),
                      platforms=len(PLATFORMS), threads=len(THREADS),
                      trace_sets=len(trace_sets),
                      detail=failures[:10])

    for failure in failures:
        print(f"fast-path coverage: {failure}", file=sys.stderr)
    if not failures:
        print(f"fast-path coverage: OK — {len(PLATFORMS)} platforms x "
              f"{len(THREADS)} thread counts x {len(trace_sets)} "
              f"trace sets, zero event-by-event fallbacks")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
