#!/usr/bin/env python
"""Warm sweep benchmark: cold vs warm wall time over the same grid.

Runs the platform x workload sweep twice in fresh measured
subprocesses against the same throwaway cache directories:

1. **cold** — empty trace and stage-1 caches, serial: the run captures
   the workload, compiles it, computes every stage-1 product, and
   stores everything;
2. **warm** — the populated caches, ``REPRO_WARM_POOL=1`` and
   ``processes=2``, with *both* ``REPRO_TRACE_CACHE_REQUIRE`` and
   ``REPRO_STAGE1_CACHE_REQUIRE`` set, so any re-capture or stage-1
   recompute raises instead of quietly slipping through.

The warm run must finish at least ``FLOOR``x faster, report a 100%
stage-1 hit rate (zero misses, at least one hit), and return results
*bit-exactly* equal to the cold serial sweep (compared through the
shard journal's exact JSON round-trip encoding).  Per-run wall time
and cells/second land in ``BENCH_sweep.json`` for trend tracking.

Exit status 0 on success.  Used by ``scripts/bench_smoke.py`` and the
CI ``bench-smoke`` job; runnable locally with
``python scripts/bench_sweep.py [report.json]``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: A capture-dominated grid: the warm delta then isolates what this
#: benchmark guards — capture, compile and stage-1 work skipped via
#: the caches.  The kernel-heavy charon platforms would drown that
#: signal in irreducible stage-2 replay time (on a single-CPU runner
#: the pool cannot parallelize it away); they have their own floors in
#: ``bench_replay_kernels.py``.
PLATFORMS = ("ideal", "cpu-ddr4", "cpu-hmc")
WORKLOADS = ("spark-km", "graphchi-cc")
JOBS = 2
#: Acceptance floor: the warm repeat sweep must at least halve the
#: cold wall time (in practice capture dominates and it is far more).
FLOOR = 2.0

#: Environment that must not leak into the measured subprocesses.
_CONTROLLED = ("REPRO_TRACE_CACHE", "REPRO_TRACE_CACHE_REQUIRE",
               "REPRO_STAGE1_CACHE", "REPRO_STAGE1_CACHE_REQUIRE",
               "REPRO_WARM_POOL", "REPRO_JOBS", "REPRO_SHARD_JOURNAL")


def measure(platforms: list, workloads: list,
            jobs: int) -> None:
    """Measured subprocess body: one sweep, one JSON line out."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.experiments import stage1_cache, trace_cache
    from repro.experiments.runner import replay_grid
    from repro.experiments.shard_journal import result_to_dict

    started = time.perf_counter()
    grid = replay_grid(platforms, workloads, processes=jobs)
    wall = time.perf_counter() - started
    print(json.dumps({
        "wall_seconds": wall,
        "cells": len(grid),
        "cells_per_second": len(grid) / wall,
        "stage1": stage1_cache.STATS.snapshot(),
        "trace_cache": trace_cache.STATS.snapshot(),
        "results": {f"{platform}/{name}": result_to_dict(result)
                    for (platform, name), result in grid.items()},
    }))


def run_measured(extra_env: dict, jobs: int) -> dict:
    env = dict(os.environ)
    for name in _CONTROLLED:
        env.pop(name, None)
    env["PYTHONPATH"] = str(REPO / "src")
    env.update(extra_env)
    process = subprocess.run(
        [sys.executable, __file__, "--measure",
         ",".join(PLATFORMS), ",".join(WORKLOADS), str(jobs)],
        cwd=REPO, env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    if process.returncode != 0:
        print(process.stdout)
        sys.exit(f"bench sweep: measured sweep failed "
                 f"(exit {process.returncode})")
    return json.loads(process.stdout.strip().splitlines()[-1])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?",
                        default=str(REPO / "BENCH_sweep.json"))
    parser.add_argument("--measure", nargs=3,
                        metavar=("PLATFORMS", "WORKLOADS", "JOBS"),
                        help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.measure:
        platforms, workloads, jobs = args.measure
        measure(platforms.split(","), workloads.split(","), int(jobs))
        return 0

    from bench_meta import bench_metadata

    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as temp:
        caches = {"REPRO_TRACE_CACHE": str(Path(temp) / "trace"),
                  "REPRO_STAGE1_CACHE": str(Path(temp) / "stage1")}
        cold = run_measured(caches, jobs=1)
        warm = run_measured({**caches,
                             "REPRO_WARM_POOL": "1",
                             "REPRO_TRACE_CACHE_REQUIRE": "1",
                             "REPRO_STAGE1_CACHE_REQUIRE": "1"},
                            jobs=JOBS)

    speedup = cold["wall_seconds"] / warm["wall_seconds"]
    failures = []
    if warm["stage1"]["misses"] != 0 or warm["stage1"]["hits"] == 0:
        failures.append(f"warm sweep missed the stage-1 cache: "
                        f"{warm['stage1']}")
    if warm["results"] != cold["results"]:
        failures.append("warm sweep results are not bit-exact against "
                        "the cold serial sweep")
    if speedup < FLOOR:
        failures.append(f"warm speedup {speedup:.1f}x is below the "
                        f"{FLOOR:.0f}x floor")

    report = {
        "benchmark": "sweep",
        **bench_metadata(),
        "platforms": list(PLATFORMS),
        "workloads": list(WORKLOADS),
        "warm_jobs": JOBS,
        "floor": FLOOR,
        "speedup": speedup,
        "bit_exact": warm["results"] == cold["results"],
        "cold": {key: cold[key] for key in
                 ("wall_seconds", "cells", "cells_per_second",
                  "stage1", "trace_cache")},
        "warm": {key: warm[key] for key in
                 ("wall_seconds", "cells", "cells_per_second",
                  "stage1", "trace_cache")},
    }
    Path(args.report).write_text(json.dumps(report, indent=2,
                                            sort_keys=True) + "\n")
    print(f"bench sweep: cold={cold['wall_seconds']:6.2f}s "
          f"({cold['cells_per_second']:.2f} cells/s) "
          f"warm={warm['wall_seconds']:6.2f}s "
          f"({warm['cells_per_second']:.2f} cells/s) "
          f"speedup={speedup:.1f}x "
          f"stage1={warm['stage1']['hits']} hit(s)/"
          f"{warm['stage1']['misses']} miss(es)")
    print(f"wrote {args.report}")
    for failure in failures:
        print(f"bench sweep: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
