#!/usr/bin/env python
"""Benchmark cold-cache GC trace generation: scalar vs fast kernels.

Builds one deterministic, seeded heap scenario per collector (minor /
major / sweep / g1), then times the collection itself — the functional
layer generating a GCTrace from a cold heap — under the scalar oracle
kernels and the vectorized fast kernels, interleaved best-of-N on
freshly rebuilt heaps.  An equivalence pass first asserts the two
modes produce identical trace event streams, residuals, summaries and
byte-identical post-GC heap buffers (the fast kernels' bit-exactness
contract), plus one end-to-end row: the TinySpark workload's full
cold trace generation under each mode.

Writes ``BENCH_collect.json`` and exits non-zero if any scenario
diverges or the combined minor+major generation speedup misses the
tentpole's >=3x floor.  Used by ``scripts/bench_smoke.py`` and the CI
``bench-smoke`` job; runnable locally with
``python scripts/bench_collect.py [OUT.json]``.
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

#: The acceptance floor applies to minor+major combined: the two
#: compacting collectors dominate end-to-end trace generation.
FLOOR = 3.0
FLOOR_SCENARIOS = ("minor", "major")
REPEATS = 3
HEAP_BYTES = 32 * 1024 * 1024
SEED = 1234


def _populate_classic(seed: int):
    """A driver-fronted heap with live+garbage old and young objects."""
    from repro.config import HeapConfig
    from repro.heap.heap import JavaHeap
    from repro.workloads.base import workload_klasses
    from repro.workloads.mutator import MutatorDriver

    rng = random.Random(seed)
    heap = JavaHeap(HeapConfig(heap_bytes=HEAP_BYTES),
                    klasses=workload_klasses())
    driver = MutatorDriver(heap, run_name="bench-collect")
    old = heap.layout.old

    # Old generation: record clusters hanging off rooted arrays, with
    # interleaved garbage so compaction and sweeping both have work.
    clusters = []
    for _ in range(60):
        array = heap.new_object("objArray", length=32, space=old)
        keep = rng.random() < 0.7
        if keep:
            driver.handle(array.addr)
            clusters.append(array.addr)
        for index in range(32):
            record = heap.new_object("Record", space=old)
            if rng.random() < 0.6:
                heap.array_store(array.addr, index, record.addr)
        for _ in range(rng.randrange(8)):
            heap.new_object("Box", space=old)  # immediate garbage

    # Young generation: records and boxes, some rooted, some linked
    # from old-generation slots (dirtying cards for the card search).
    young = []
    for _ in range(4000):
        record = driver.allocate("Record")
        if rng.random() < 0.35:
            driver.handle(record.addr)
        if rng.random() < 0.2 and clusters:
            array_addr = rng.choice(clusters)
            heap.array_store(array_addr, rng.randrange(32), record.addr)
        if young and rng.random() < 0.5:
            heap.set_field(record, 0, rng.choice(young))
        young.append(record.addr)
    return driver


def _populate_g1(seed: int):
    """A populated regional heap with cross-region references."""
    from repro.config import HeapConfig
    from repro.gcalgo.g1 import G1Collector
    from repro.heap.heap import JavaHeap
    from repro.workloads.base import workload_klasses

    rng = random.Random(seed)
    heap = JavaHeap(HeapConfig(heap_bytes=HEAP_BYTES),
                    klasses=workload_klasses())
    collector = G1Collector(heap)
    arrays = []
    for _ in range(40):
        array = collector.allocate("objArray", length=24)
        if rng.random() < 0.7:
            heap.roots.append(array.addr)
            arrays.append(array.addr)
        for index in range(24):
            record = collector.allocate("Record")
            if rng.random() < 0.6:
                heap.array_store(array.addr, index, record.addr)
        for _ in range(rng.randrange(6)):
            collector.allocate("Box")  # garbage
    for _ in range(1500):
        record = collector.allocate("Record")
        if rng.random() < 0.3:
            heap.roots.append(record.addr)
        if arrays and rng.random() < 0.3:
            heap.array_store(rng.choice(arrays), rng.randrange(24),
                             record.addr)
    return collector


def _scenario(name: str, seed: int):
    """``(build, collect)`` callables for one collector scenario."""
    if name == "g1":
        return (lambda: _populate_g1(seed),
                lambda collector: collector.collect())
    build = lambda: _populate_classic(seed)  # noqa: E731
    if name == "minor":
        return build, lambda driver: driver.minor_gc()
    if name == "major":
        return build, lambda driver: driver.major_gc()
    return build, lambda driver: driver.sweep_gc()


def _final_traces(subject):
    from repro.gcalgo.g1 import G1Collector

    if isinstance(subject, G1Collector):
        return subject.traces
    return subject.run.traces


def _heap_of(subject):
    return subject.heap


def _check_equivalence(name: str, seed: int):
    """Run one scenario under both modes; assert bit-exactness."""
    from repro.heap.fast_kernels import use_kernel_mode

    build, collect = _scenario(name, seed)
    captured = {}
    for mode in ("scalar", "fast"):
        with use_kernel_mode(mode):
            subject = build()
            collect(subject)
        captured[mode] = (_final_traces(subject), _heap_of(subject))
    traces_a, heap_a = captured["scalar"]
    traces_b, heap_b = captured["fast"]
    if len(traces_a) != len(traces_b):
        return f"{name}: trace counts differ"
    for index, (a, b) in enumerate(zip(traces_a, traces_b)):
        if a.kind != b.kind or a.events != b.events:
            return f"{name}: trace #{index} events differ"
        if a.residuals != b.residuals:
            return f"{name}: trace #{index} residuals differ"
        if a.summary() != b.summary():
            return f"{name}: trace #{index} summaries differ"
    if bytes(heap_a.buffer) != bytes(heap_b.buffer):
        return f"{name}: post-GC heap buffers differ"
    return None


def _time_collect(name: str, seed: int, mode: str) -> float:
    """Cold generation time of the scenario's timed collection."""
    from repro.heap.fast_kernels import use_kernel_mode

    build, collect = _scenario(name, seed)
    with use_kernel_mode(mode):
        subject = build()
        start = time.perf_counter()
        collect(subject)
        return time.perf_counter() - start


def _time_end_to_end(mode: str) -> float:
    """Full cold trace generation for the TinySpark workload."""
    from repro.heap.fast_kernels import use_kernel_mode

    from tests.conftest import TinySpark

    with use_kernel_mode(mode):
        start = time.perf_counter()
        TinySpark().run()
        return time.perf_counter() - start


def main() -> int:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 \
        else REPO / "BENCH_collect.json"
    from bench_meta import bench_metadata

    report = {"heap_bytes": HEAP_BYTES, "seed": SEED,
              "repeats": REPEATS, "floor": FLOOR,
              "floor_scenarios": list(FLOOR_SCENARIOS),
              "scenarios": {}, **bench_metadata()}
    failures = []
    floor_scalar = floor_fast = 0.0
    for name in ("minor", "major", "sweep", "g1"):
        divergence = _check_equivalence(name, SEED)
        if divergence:
            failures.append(divergence)
        best_scalar = best_fast = float("inf")
        for _ in range(REPEATS):
            best_scalar = min(best_scalar,
                              _time_collect(name, SEED, "scalar"))
            best_fast = min(best_fast,
                            _time_collect(name, SEED, "fast"))
        speedup = best_scalar / best_fast
        report["scenarios"][name] = {
            "scalar_seconds": best_scalar,
            "fast_seconds": best_fast,
            "speedup": speedup,
            "equivalent": divergence is None,
        }
        print(f"{name:8s} scalar={best_scalar * 1e3:8.2f}ms "
              f"fast={best_fast * 1e3:8.2f}ms "
              f"speedup={speedup:5.1f}x "
              f"equivalence={'ok' if divergence is None else 'FAILED'}")
        if name in FLOOR_SCENARIOS:
            floor_scalar += best_scalar
            floor_fast += best_fast

    combined = floor_scalar / floor_fast
    report["combined_minor_major_speedup"] = combined
    print(f"combined minor+major speedup: {combined:.1f}x "
          f"(floor {FLOOR:.0f}x)")
    if combined < FLOOR:
        failures.append(f"combined minor+major speedup {combined:.1f}x "
                        f"is below the {FLOOR:.0f}x floor")

    best_scalar = best_fast = float("inf")
    for _ in range(REPEATS):
        best_scalar = min(best_scalar, _time_end_to_end("scalar"))
        best_fast = min(best_fast, _time_end_to_end("fast"))
    report["end_to_end"] = {
        "workload": "spark-bs (TinySpark test trace set)",
        "scalar_seconds": best_scalar,
        "fast_seconds": best_fast,
        "speedup": best_scalar / best_fast,
    }
    print(f"end-to-end TinySpark: scalar={best_scalar:6.2f}s "
          f"fast={best_fast:6.2f}s "
          f"speedup={best_scalar / best_fast:5.1f}x")

    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    for failure in failures:
        print(f"bench collect: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
