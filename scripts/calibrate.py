"""Calibration diagnostics: per-primitive per-event costs by platform.

Not part of the library API; used while tuning the cost model against
the paper's Fig. 12/14 targets.  Run: python scripts/calibrate.py [wl].
"""

import sys

from repro.experiments.runner import collect_run, replay_platform
from repro.gcalgo.trace import Primitive
from repro.workloads.registry import WORKLOAD_NAMES

names = sys.argv[1:] or list(WORKLOAD_NAMES)

for name in names:
    run = collect_run(name)
    counts = {p: 0 for p in Primitive}
    for trace in run.traces:
        for p in Primitive:
            counts[p] += trace.count(p)
    host = replay_platform("cpu-ddr4", name)
    charon = replay_platform("charon", name)
    print(f"== {name}  (minors={run.minor_count} majors={run.major_count}) "
          f"walls: host={host.wall_seconds*1e3:.2f}ms "
          f"charon={charon.wall_seconds*1e3:.2f}ms "
          f"resid h={host.residual_seconds*1e3:.2f} "
          f"c={charon.residual_seconds*1e3:.2f}")
    for p in Primitive:
        n = counts[p]
        if not n:
            continue
        h = host.primitive_seconds.get(p, 0.0)
        c = charon.primitive_seconds.get(p, 0.0)
        print(f"   {p.value:13s} n={n:7d} host/ev={h/n*1e9:8.1f}ns "
              f"charon/ev={c/n*1e9:8.1f}ns  speedup={h/c if c else 0:6.2f}")
