#!/usr/bin/env python
"""Paper-scale replay benchmark: throughput and peak RSS under a cap.

Captures the two fast Table 3 workloads at their default heaps (where
they actually collect), writes the traces as a *chunked* ``.npz``, and
then replays them in a fresh measured subprocess against a platform
configured with a ``--scale``-times heap (default 10x) using the
``mmap`` heap backend and the streaming trace reader:

* the subprocess runs under a hard ``RLIMIT_AS`` address-space cap, so
  a regression that materializes the whole event stream (or copies it)
  dies with ``MemoryError`` instead of quietly bloating CI;
* its peak RSS must stay below the scaled heap size itself — the heap
  buffer and mark bitmaps are lazy (``REPRO_HEAP_BACKEND=mmap``) and
  replay only reads trace chunks one at a time, so resident memory
  must not grow with the *configured* heap;
* throughput (events/second through the batched kernels) and peak RSS
  land in ``BENCH_scale.json`` for trend tracking.

Exit status 0 on success.  Used by the CI ``bench-smoke`` job;
runnable locally with ``python scripts/bench_scale.py [report.json]``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

WORKLOADS = ("graphchi-als", "spark-km")
PLATFORM = "charon"
THREADS = 8
CHUNK_EVENTS = 4096
#: address-space headroom above the scaled heap for the interpreter,
#: numpy, and the trace file mapping
AS_HEADROOM_BYTES = 1 << 30


def capture(trace_path: Path) -> int:
    """Capture the workload traces at their default heaps; returns the
    event total."""
    from repro.experiments.runner import collect_run
    from repro.gcalgo.trace_io import save_traces_npz

    def all_traces():
        for name in WORKLOADS:
            for trace in collect_run(name).traces:
                yield trace

    return save_traces_npz(all_traces(), trace_path,
                           chunk_events=CHUNK_EVENTS)


def scaled_heap_bytes(scale: int) -> int:
    from repro.experiments.runner import default_heap_bytes

    return max(default_heap_bytes(name) for name in WORKLOADS) * scale


def measure(trace_path: str, heap_bytes: int, as_cap: int) -> None:
    """Subprocess body: replay the trace file at the scaled heap and
    print a JSON report to stdout."""
    import resource
    import time

    resource.setrlimit(resource.RLIMIT_AS, (as_cap, as_cap))

    def resident_bytes() -> int:
        # current VmRSS, not ru_maxrss: a forked child's ru_maxrss
        # inherits the parent's peak at fork time, so it would track
        # the capture process instead of this replay
        try:
            with open("/proc/self/status") as status:
                return int(status.read()
                           .split("VmRSS:")[1].split()[0]) * 1024
        except (OSError, IndexError, ValueError):
            return resource.getrusage(
                resource.RUSAGE_SELF).ru_maxrss * 1024

    from repro.config import default_config
    from repro.gcalgo.trace_io import load_manifest, stream_compiled
    from repro.heap.heap import JavaHeap
    from repro.platform import build_platform
    from repro.platform.fast_replay import make_replayer
    from repro.workloads.base import workload_klasses

    events = sum(entry["events"]
                 for entry in load_manifest(trace_path)["traces"])
    config = default_config().with_heap_bytes(heap_bytes)
    heap = JavaHeap(config.heap, klasses=workload_klasses())
    platform = build_platform(PLATFORM, config, heap)
    replayer = make_replayer(platform, threads=THREADS, mode="fast")
    started = time.perf_counter()
    result = replayer.replay_all(stream_compiled(trace_path))
    elapsed = time.perf_counter() - started
    peak_rss = resident_bytes()
    print(json.dumps({
        "events": events,
        "replay_seconds": elapsed,
        "events_per_second": events / elapsed,
        "replay_kernel": result.replay_kernel,
        "gc_wall_seconds": result.wall_seconds,
        "peak_rss_bytes": peak_rss,
    }))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?",
                        default=str(REPO / "BENCH_scale.json"))
    parser.add_argument("--scale", type=int, default=10,
                        help="heap scale factor for the replay side")
    parser.add_argument("--measure", nargs=3, metavar=("TRACE",
                        "HEAP_BYTES", "AS_CAP"), help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.measure:
        trace_path, heap_bytes, as_cap = args.measure
        measure(trace_path, int(heap_bytes), int(as_cap))
        return

    heap_bytes = scaled_heap_bytes(args.scale)
    as_cap = heap_bytes + AS_HEADROOM_BYTES
    with tempfile.TemporaryDirectory(prefix="bench-scale-") as directory:
        trace_path = Path(directory) / "scale.gctrace.npz"
        events = capture(trace_path)
        if not events:
            sys.exit("bench scale: capture produced zero events")
        env = dict(os.environ)
        env["REPRO_HEAP_BACKEND"] = "mmap"
        process = subprocess.run(
            [sys.executable, __file__, "--measure", str(trace_path),
             str(heap_bytes), str(as_cap)],
            cwd=REPO, env=env, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        if process.returncode != 0:
            print(process.stdout)
            sys.exit(f"bench scale: measured replay failed under the "
                     f"{as_cap / (1 << 30):.1f} GiB address-space cap "
                     f"(exit {process.returncode})")
        measured = json.loads(process.stdout.strip().splitlines()[-1])

    if measured["events"] != events:
        sys.exit(f"bench scale: subprocess saw {measured['events']} "
                 f"events, parent captured {events}")
    if measured["replay_kernel"] in ("", "event", "mixed"):
        sys.exit(f"bench scale: replay fell back to "
                 f"{measured['replay_kernel']!r}")
    if measured["peak_rss_bytes"] >= heap_bytes:
        sys.exit(f"bench scale: peak RSS "
                 f"{measured['peak_rss_bytes'] / (1 << 20):.0f} MiB is "
                 f"not below the {heap_bytes / (1 << 20):.0f} MiB "
                 f"scaled heap — the lazy-heap/streaming path "
                 f"regressed")
    from bench_meta import bench_metadata

    report = {
        "benchmark": "scale",
        **bench_metadata(),
        "workloads": list(WORKLOADS),
        "platform": PLATFORM,
        "threads": THREADS,
        "heap_scale": args.scale,
        "heap_bytes": heap_bytes,
        "heap_backend": "mmap",
        "chunk_events": CHUNK_EVENTS,
        "address_space_cap_bytes": as_cap,
        **measured,
    }
    Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
    print(f"bench scale: OK — {events} events at "
          f"{measured['events_per_second']:,.0f} events/s on a "
          f"{heap_bytes / (1 << 20):.0f} MiB heap, peak RSS "
          f"{measured['peak_rss_bytes'] / (1 << 20):.0f} MiB "
          f"(report: {args.report})")


if __name__ == "__main__":
    main()
