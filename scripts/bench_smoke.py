#!/usr/bin/env python
"""Benchmark smoke: prove the trace cache makes replays capture-free.

Runs ``benchmarks/bench_fig12_speedup.py`` twice on a tiny two-workload
grid against a fresh cache directory:

1. the first run captures the workload traces and stores them in the
   content-addressed cache;
2. the second run sets ``REPRO_TRACE_CACHE_REQUIRE``, under which any
   cache miss raises instead of re-running a collector — so a passing
   second run *is* the proof of zero collector re-execution.  The
   session footer's cache tally is checked on top ("0 run(s)
   generated", at least one hit).

The second run also exports telemetry through ``REPRO_TRACE_OUT`` /
``REPRO_METRICS_OUT`` into ``$BENCH_SMOKE_ARTIFACTS`` (default
``bench-smoke-artifacts/``); the script then checks the Chrome trace
and metric snapshot are well-formed, and that every provenance
manifest the benchmarks published round-trips with config hashes that
match the trace-cache entry keys on disk.  CI uploads the artifact
directory and ``benchmarks/results/``.

Exit status 0 on success; any failure prints the offending pytest
output.  Used by the CI ``bench-smoke`` job; runnable locally with
``python scripts/bench_smoke.py``.
"""

from __future__ import annotations

import json
import os
import re
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SMOKE_WORKLOADS = "spark-km,graphchi-cc"
ARTIFACTS = Path(os.environ.get("BENCH_SMOKE_ARTIFACTS")
                 or REPO / "bench-smoke-artifacts")
TRACE_ARTIFACT = ARTIFACTS / "bench-smoke.trace.json"
METRICS_ARTIFACT = ARTIFACTS / "bench-smoke.metrics.json"


def run_bench(cache_dir: str, require: bool) -> str:
    env = dict(os.environ)
    env["REPRO_TRACE_CACHE"] = cache_dir
    env["REPRO_WORKLOADS"] = SMOKE_WORKLOADS
    env.pop("REPRO_TRACE_CACHE_REQUIRE", None)
    if require:
        env["REPRO_TRACE_CACHE_REQUIRE"] = "1"
        # The proving run also leaves telemetry behind for CI artifacts.
        ARTIFACTS.mkdir(parents=True, exist_ok=True)
        env["REPRO_TRACE_OUT"] = str(TRACE_ARTIFACT)
        env["REPRO_METRICS_OUT"] = str(METRICS_ARTIFACT)
    process = subprocess.run(
        [sys.executable, "-m", "pytest", "-q",
         str(REPO / "benchmarks" / "bench_fig12_speedup.py")],
        cwd=REPO, env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    label = "second (cache-required)" if require else "first (capture)"
    if process.returncode != 0:
        print(process.stdout)
        sys.exit(f"bench smoke: {label} run failed "
                 f"(exit {process.returncode})")
    print(f"bench smoke: {label} run passed")
    return process.stdout


def cache_tally(output: str) -> dict:
    match = re.search(r"trace cache: (\d+) hit\(s\), (\d+) miss\(es\), "
                      r"(\d+) stale, (\d+) store\(s\), (\d+) run\(s\) "
                      r"generated", output)
    if match is None:
        print(output)
        sys.exit("bench smoke: no trace-cache tally in pytest output")
    keys = ("hits", "misses", "stale", "stores", "generated")
    return dict(zip(keys, map(int, match.groups())))


def check_artifacts(cache: Path) -> None:
    """Validate the exported telemetry and the published manifests."""
    trace = json.loads(TRACE_ARTIFACT.read_text())
    complete = [e for e in trace if e.get("ph") == "X"]
    if not (isinstance(trace, list) and complete):
        sys.exit("bench smoke: Chrome trace artifact has no complete "
                 "spans")
    if not all("pid" in e and "tid" in e and "ts" in e
               for e in complete):
        sys.exit("bench smoke: Chrome trace artifact events are "
                 "missing pid/tid/ts fields")
    metrics = json.loads(METRICS_ARTIFACT.read_text())
    if not metrics.get("metrics"):
        sys.exit("bench smoke: metric snapshot artifact is empty")

    sys.path.insert(0, str(REPO / "src"))
    from repro.obs.provenance import load_manifest, round_trips

    smoke = set(SMOKE_WORKLOADS.split(","))
    keys = {path.stem for path in cache.glob("*.npz")}
    manifests = sorted(
        (REPO / "benchmarks" / "results").glob("*.manifest.json"))
    if not manifests:
        sys.exit("bench smoke: benchmarks published no provenance "
                 "manifests")
    checked = 0
    for path in manifests:
        if not round_trips(path):
            sys.exit(f"bench smoke: manifest {path.name} does not "
                     f"round-trip")
        for run in load_manifest(path).get("runs", ()):
            if run["workload"] not in smoke:
                continue  # a stale manifest from a full local session
            checked += 1
            if run["config_hash"] not in keys:
                sys.exit(f"bench smoke: manifest {path.name} records "
                         f"config hash {run['config_hash'][:12]}… with "
                         f"no matching trace-cache entry")
    if not checked:
        sys.exit("bench smoke: no manifest recorded the smoke "
                 "workloads")
    print(f"bench smoke: telemetry artifacts OK — "
          f"{len(complete)} spans, {len(metrics['metrics'])} metrics, "
          f"{checked} manifest run(s) matched to cache keys")


def run_replay_kernel_bench() -> None:
    """Run the replay-kernel benchmark and validate its report.

    ``bench_replay_kernels.py`` exits non-zero on an equivalence
    failure or a sub-5x charon/cpu-hmc speedup; on success the report
    must carry a verdict and speedup for every platform.
    """
    report_path = ARTIFACTS / "BENCH_replay.json"
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    process = subprocess.run(
        [sys.executable, str(REPO / "scripts" /
                             "bench_replay_kernels.py"),
         str(report_path)],
        cwd=REPO, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    if process.returncode != 0:
        print(process.stdout)
        sys.exit(f"bench smoke: replay-kernel benchmark failed "
                 f"(exit {process.returncode})")
    report = json.loads(report_path.read_text())
    platforms = report.get("platforms", {})
    expected = {"ideal", "cpu-ddr4", "cpu-hmc", "charon",
                "charon-cpuside"}
    if set(platforms) != expected:
        sys.exit(f"bench smoke: BENCH_replay.json covers "
                 f"{sorted(platforms)}, expected {sorted(expected)}")
    broken = [name for name, row in platforms.items()
              if not row["equivalent"] or row["speedup"] <= 0]
    if broken:
        sys.exit(f"bench smoke: BENCH_replay.json records bad rows "
                 f"for {broken}")
    print(f"bench smoke: replay-kernel report OK — " + ", ".join(
        f"{name} {platforms[name]['speedup']:.1f}x"
        for name in sorted(platforms)))


def run_collect_bench() -> None:
    """Run the collect-kernel benchmark and validate its report.

    ``bench_collect.py`` exits non-zero on a scalar/fast divergence or
    a combined minor+major generation speedup below the 3x floor; on
    success the report must carry an equivalence verdict and a speedup
    for every collector scenario.
    """
    report_path = ARTIFACTS / "BENCH_collect.json"
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    process = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "bench_collect.py"),
         str(report_path)],
        cwd=REPO, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    if process.returncode != 0:
        print(process.stdout)
        sys.exit(f"bench smoke: collect-kernel benchmark failed "
                 f"(exit {process.returncode})")
    report = json.loads(report_path.read_text())
    scenarios = report.get("scenarios", {})
    expected = {"minor", "major", "sweep", "g1"}
    if set(scenarios) != expected:
        sys.exit(f"bench smoke: BENCH_collect.json covers "
                 f"{sorted(scenarios)}, expected {sorted(expected)}")
    broken = [name for name, row in scenarios.items()
              if not row["equivalent"] or row["speedup"] <= 0]
    if broken:
        sys.exit(f"bench smoke: BENCH_collect.json records bad rows "
                 f"for {broken}")
    combined = report.get("combined_minor_major_speedup", 0.0)
    if combined < report.get("floor", 3.0):
        sys.exit(f"bench smoke: combined minor+major speedup "
                 f"{combined:.1f}x is below the floor")
    print(f"bench smoke: collect-kernel report OK — " + ", ".join(
        f"{name} {scenarios[name]['speedup']:.1f}x"
        for name in sorted(scenarios))
        + f", combined minor+major {combined:.1f}x")


def run_scale_bench() -> None:
    """Run the paper-scale replay benchmark and validate its report.

    ``bench_scale.py`` replays chunk-streamed traces against a
    10x-scaled mmap-backed heap in a subprocess under a hard
    address-space cap and exits non-zero if peak RSS reaches the
    scaled heap size — the lazy-heap/streaming regression guard.
    """
    report_path = ARTIFACTS / "BENCH_scale.json"
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    process = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "bench_scale.py"),
         str(report_path)],
        cwd=REPO, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    if process.returncode != 0:
        print(process.stdout)
        sys.exit(f"bench smoke: scale benchmark failed "
                 f"(exit {process.returncode})")
    report = json.loads(report_path.read_text())
    if report.get("events", 0) <= 0 \
            or report.get("events_per_second", 0) <= 0:
        sys.exit(f"bench smoke: BENCH_scale.json records no replay "
                 f"throughput: {report}")
    if report.get("peak_rss_bytes", 0) >= report.get("heap_bytes", 0):
        sys.exit("bench smoke: BENCH_scale.json peak RSS reached the "
                 "scaled heap size")
    print(f"bench smoke: scale report OK — "
          f"{report['events_per_second']:,.0f} events/s, peak RSS "
          f"{report['peak_rss_bytes'] / (1 << 20):.0f} MiB on a "
          f"{report['heap_bytes'] / (1 << 20):.0f} MiB heap")


def run_sweep_bench() -> None:
    """Run the warm-sweep benchmark and validate its report.

    ``bench_sweep.py`` runs the same grid cold (empty caches, serial)
    and warm (populated caches, warm pool, cache-require armed) and
    exits non-zero below the 2x warm-over-cold floor, on any stage-1
    miss during the warm run, or if the two result sets are not
    bit-exact.
    """
    report_path = ARTIFACTS / "BENCH_sweep.json"
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    process = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "bench_sweep.py"),
         str(report_path)],
        cwd=REPO, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    if process.returncode != 0:
        print(process.stdout)
        sys.exit(f"bench smoke: sweep benchmark failed "
                 f"(exit {process.returncode})")
    report = json.loads(report_path.read_text())
    if report.get("speedup", 0.0) < report.get("floor", 2.0):
        sys.exit(f"bench smoke: BENCH_sweep.json warm speedup "
                 f"{report.get('speedup', 0.0):.1f}x is below the "
                 f"floor")
    if not report.get("bit_exact"):
        sys.exit("bench smoke: BENCH_sweep.json warm results are not "
                 "bit-exact")
    warm = report.get("warm", {}).get("stage1", {})
    if warm.get("misses", 1) != 0 or warm.get("hits", 0) <= 0:
        sys.exit(f"bench smoke: warm sweep stage-1 tally is not "
                 f"all-hit: {warm}")
    if not report.get("git_sha") or not report.get("generated_at"):
        sys.exit("bench smoke: BENCH_sweep.json is missing the "
                 "git_sha/generated_at provenance stamp")
    print(f"bench smoke: sweep report OK — warm "
          f"{report['speedup']:.1f}x over cold, "
          f"{warm['hits']} stage-1 hit(s), 0 miss(es), bit-exact")


_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eEnNaIf]+$")

_LIVE_SWEEP_DRIVER = """
import sys
from repro.obs.tracer import install_env_exporters
install_env_exporters()
from repro.experiments.runner import replay_grid
replay_grid(("ideal", "cpu-ddr4", "cpu-hmc", "charon",
             "charon-cpuside"), ["graphchi-als"],
            journal=sys.argv[1])
"""


def _scrape(port: int, path: str) -> str:
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=5) as response:
        return response.read().decode("utf-8")


def run_live_observability_probe() -> None:
    """Drive a journaled sweep with the live endpoint armed.

    Polls ``/metrics`` and ``/progress`` while the sweep runs:
    the exposition text must parse line by line, the completion
    percentage must be monotone non-decreasing and reach 100%, and the
    run-event log (written into the artifact dir, which CI uploads)
    must carry the typed records the sweep emits.
    """
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    eventlog_path = ARTIFACTS / "bench-smoke.events.jsonl"
    eventlog_path.unlink(missing_ok=True)
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_METRICS_PORT"] = str(port)
    env["REPRO_EVENTLOG"] = str(eventlog_path)
    with tempfile.TemporaryDirectory(prefix="live-sweep-") as temp:
        env["REPRO_TRACE_CACHE"] = str(Path(temp) / "cache")
        journal = Path(temp) / "journal"
        sweep = subprocess.Popen(
            [sys.executable, "-c", _LIVE_SWEEP_DRIVER, str(journal)],
            cwd=REPO, env=env, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        completions = []
        exposition_checked = False
        try:
            while True:
                finished = sweep.poll() is not None
                try:
                    body = _scrape(port, "/metrics")
                    bad = [line for line in body.splitlines()
                           if line and not line.startswith("#")
                           and not _PROM_LINE.match(line)]
                    if bad:
                        sys.exit(f"bench smoke: invalid exposition "
                                 f"line(s): {bad[:3]}")
                    if body.strip():
                        exposition_checked = True
                    if _scrape(port, "/healthz").strip() != "ok":
                        sys.exit("bench smoke: /healthz did not "
                                 "answer ok")
                    progress = json.loads(_scrape(port, "/progress"))
                    if progress.get("available"):
                        completions.append(progress["completion_pct"])
                except (urllib.error.URLError, OSError,
                        ConnectionError):
                    pass  # server not up yet (or already exiting)
                if finished:
                    break
                time.sleep(0.05)
        finally:
            output = sweep.communicate()[0]
        if sweep.returncode != 0:
            print(output)
            sys.exit(f"bench smoke: live sweep failed "
                     f"(exit {sweep.returncode})")
        if not exposition_checked:
            sys.exit("bench smoke: never scraped a non-empty "
                     "/metrics exposition mid-run")
        if not completions:
            sys.exit("bench smoke: /progress never reported an "
                     "active sweep")
        if completions != sorted(completions):
            sys.exit(f"bench smoke: completion % went backwards: "
                     f"{completions}")
        final = json.loads(
            (journal / "progress.json").read_text())
        if final["completion_pct"] != 100.0 \
                or final["shards_pending"]:
            sys.exit(f"bench smoke: sweep ended at "
                     f"{final['completion_pct']}% with "
                     f"{final['shards_pending']} pending shard(s)")

    sys.path.insert(0, str(REPO / "src"))
    from repro.obs.eventlog import read_events
    events = {record["event"] for record in read_events(eventlog_path)}
    missing = {"run_start", "gc_pause", "shard_claimed", "shard_done",
               "run_end"} - events
    if missing:
        sys.exit(f"bench smoke: run-event log is missing record "
                 f"type(s): {sorted(missing)}")
    print(f"bench smoke: live observability OK — "
          f"{len(completions)} /progress samples (monotone to 100%), "
          f"exposition valid, event log at {eventlog_path.name}")


def main() -> None:
    run_replay_kernel_bench()
    run_collect_bench()
    run_scale_bench()
    run_sweep_bench()
    run_live_observability_probe()
    with tempfile.TemporaryDirectory(prefix="trace-cache-") as cache:
        first = cache_tally(run_bench(cache, require=False))
        workloads = len(SMOKE_WORKLOADS.split(","))
        if first["generated"] != workloads or first["stores"] != workloads:
            sys.exit(f"bench smoke: first run should capture "
                     f"{workloads} workloads, tallied {first}")
        entries = len(list(Path(cache).glob("*.npz")))
        if entries != workloads:
            sys.exit(f"bench smoke: expected {workloads} cache "
                     f"entries, found {entries}")
        second = cache_tally(run_bench(cache, require=True))
        if second["generated"] != 0 or second["misses"] != 0:
            sys.exit(f"bench smoke: second run re-executed a "
                     f"collector, tallied {second}")
        if second["hits"] < workloads:
            sys.exit(f"bench smoke: second run should hit the cache "
                     f"{workloads} times, tallied {second}")
        check_artifacts(Path(cache))
    print(f"bench smoke: OK — second run served {second['hits']} "
          f"cached trace set(s), zero collector re-execution")


if __name__ == "__main__":
    main()
