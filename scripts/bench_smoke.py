#!/usr/bin/env python
"""Benchmark smoke: prove the trace cache makes replays capture-free.

Runs ``benchmarks/bench_fig12_speedup.py`` twice on a tiny two-workload
grid against a fresh cache directory:

1. the first run captures the workload traces and stores them in the
   content-addressed cache;
2. the second run sets ``REPRO_TRACE_CACHE_REQUIRE``, under which any
   cache miss raises instead of re-running a collector — so a passing
   second run *is* the proof of zero collector re-execution.  The
   session footer's cache tally is checked on top ("0 run(s)
   generated", at least one hit).

Exit status 0 on success; any failure prints the offending pytest
output.  Used by the CI ``bench-smoke`` job; runnable locally with
``python scripts/bench_smoke.py``.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SMOKE_WORKLOADS = "spark-km,graphchi-cc"


def run_bench(cache_dir: str, require: bool) -> str:
    env = dict(os.environ)
    env["REPRO_TRACE_CACHE"] = cache_dir
    env["REPRO_WORKLOADS"] = SMOKE_WORKLOADS
    env.pop("REPRO_TRACE_CACHE_REQUIRE", None)
    if require:
        env["REPRO_TRACE_CACHE_REQUIRE"] = "1"
    process = subprocess.run(
        [sys.executable, "-m", "pytest", "-q",
         str(REPO / "benchmarks" / "bench_fig12_speedup.py")],
        cwd=REPO, env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    label = "second (cache-required)" if require else "first (capture)"
    if process.returncode != 0:
        print(process.stdout)
        sys.exit(f"bench smoke: {label} run failed "
                 f"(exit {process.returncode})")
    print(f"bench smoke: {label} run passed")
    return process.stdout


def cache_tally(output: str) -> dict:
    match = re.search(r"trace cache: (\d+) hit\(s\), (\d+) miss\(es\), "
                      r"(\d+) stale, (\d+) store\(s\), (\d+) run\(s\) "
                      r"generated", output)
    if match is None:
        print(output)
        sys.exit("bench smoke: no trace-cache tally in pytest output")
    keys = ("hits", "misses", "stale", "stores", "generated")
    return dict(zip(keys, map(int, match.groups())))


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="trace-cache-") as cache:
        first = cache_tally(run_bench(cache, require=False))
        workloads = len(SMOKE_WORKLOADS.split(","))
        if first["generated"] != workloads or first["stores"] != workloads:
            sys.exit(f"bench smoke: first run should capture "
                     f"{workloads} workloads, tallied {first}")
        entries = len(list(Path(cache).glob("*.npz")))
        if entries != workloads:
            sys.exit(f"bench smoke: expected {workloads} cache "
                     f"entries, found {entries}")
        second = cache_tally(run_bench(cache, require=True))
        if second["generated"] != 0 or second["misses"] != 0:
            sys.exit(f"bench smoke: second run re-executed a "
                     f"collector, tallied {second}")
        if second["hits"] < workloads:
            sys.exit(f"bench smoke: second run should hit the cache "
                     f"{workloads} times, tallied {second}")
    print(f"bench smoke: OK — second run served {second['hits']} "
          f"cached trace set(s), zero collector re-execution")


if __name__ == "__main__":
    main()
