#!/usr/bin/env python
"""Benchmark the replay kernels: event-by-event vs the fast path.

Replays the Spark test trace set (the same ``TinySpark`` workload the
golden equivalence tests use) on every timing platform through both
replayers and writes ``BENCH_replay.json``:

* per-platform events/sec for the event-by-event and fast paths,
* the wall-clock speedup between them,
* an equivalence verdict (integer counters exact, floats to 1e-9
  relative — the same contract the golden tests enforce).

Timing is best-of-N with the two paths interleaved, so scheduler noise
and cache warmth hit both sides alike; the compile step is excluded
(the pipeline compiles once per run).  The script exits non-zero if
any platform's results diverge, or if ``charon`` / ``cpu-hmc`` miss
the tentpole's >=5x floor.  Used by ``scripts/bench_smoke.py`` and the
CI ``bench-smoke`` job; runnable locally with
``python scripts/bench_replay_kernels.py [OUT.json]``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

PLATFORMS = ("ideal", "cpu-ddr4", "cpu-hmc", "charon",
             "charon-cpuside")
#: Platforms the tentpole's acceptance floor applies to.
FLOOR_PLATFORMS = ("charon", "cpu-hmc")
FLOOR = 5.0
THREADS = 8
REPEATS = 7
REL = 1e-9


def relative(a: float, b: float) -> float:
    if a == b:
        return 0.0
    return abs(a - b) / max(abs(a), abs(b), 1e-300)


def equivalent(fast, slow) -> bool:
    ints = ((fast.dram_bytes, slow.dram_bytes),
            (fast.link_bytes, slow.link_bytes),
            (fast.tsv_bytes, slow.tsv_bytes),
            (fast.bitmap_cache_hits, slow.bitmap_cache_hits),
            (fast.bitmap_cache_accesses, slow.bitmap_cache_accesses))
    if any(a != b for a, b in ints):
        return False
    floats = [(fast.wall_seconds, slow.wall_seconds),
              (fast.residual_seconds, slow.residual_seconds),
              (fast.energy.host_j, slow.energy.host_j),
              (fast.energy.memory_j, slow.energy.memory_j),
              (fast.energy.charon_j, slow.energy.charon_j)]
    keys = set(fast.primitive_seconds) | set(slow.primitive_seconds)
    floats += [(fast.primitive_seconds.get(key, 0.0),
                slow.primitive_seconds.get(key, 0.0)) for key in keys]
    return all(relative(a, b) <= REL for a, b in floats)


def main() -> int:
    from repro.gcalgo.columnar import compile_traces
    from repro.platform.fast_replay import FastTraceReplayer
    from repro.platform.replay import TraceReplayer

    from tests.conftest import TinySpark, platform_for

    out = Path(sys.argv[1]) if len(sys.argv) > 1 \
        else REPO / "BENCH_replay.json"
    run = TinySpark().run()
    traces = run.traces
    compiled = compile_traces(traces)
    events = sum(len(trace.events) for trace in traces)

    from bench_meta import bench_metadata

    report = {"workload": "spark-bs (TinySpark test trace set)",
              "gc_events": events, "threads": THREADS,
              "repeats": REPEATS, "platforms": {},
              **bench_metadata()}
    failures = []
    for name in PLATFORMS:
        # Equivalence first (fresh platforms, single replay each).
        slow_result = TraceReplayer(
            platform_for(name)[0], threads=THREADS).replay_all(traces)
        fast_result = FastTraceReplayer(
            platform_for(name)[0], threads=THREADS).replay_all(compiled)
        equal = equivalent(fast_result, slow_result)
        # Then timing: interleaved best-of-N on fresh platforms.
        best_event = best_fast = float("inf")
        for _ in range(REPEATS):
            replayer = TraceReplayer(platform_for(name)[0],
                                     threads=THREADS)
            start = time.perf_counter()
            replayer.replay_all(traces)
            best_event = min(best_event, time.perf_counter() - start)
            replayer = FastTraceReplayer(platform_for(name)[0],
                                         threads=THREADS)
            start = time.perf_counter()
            replayer.replay_all(compiled)
            best_fast = min(best_fast, time.perf_counter() - start)
        speedup = best_event / best_fast
        report["platforms"][name] = {
            "kernel": fast_result.replay_kernel,
            "event_seconds": best_event,
            "fast_seconds": best_fast,
            "event_events_per_sec": events / best_event,
            "fast_events_per_sec": events / best_fast,
            "speedup": speedup,
            "equivalent": equal,
        }
        print(f"{name:15s} {fast_result.replay_kernel:14s} "
              f"event={best_event * 1e3:7.2f}ms "
              f"fast={best_fast * 1e3:7.2f}ms "
              f"speedup={speedup:5.1f}x "
              f"equivalence={'ok' if equal else 'FAILED'}")
        if not equal:
            failures.append(f"{name}: fast path diverged from "
                            f"event-by-event replay")
        if name in FLOOR_PLATFORMS and speedup < FLOOR:
            failures.append(f"{name}: speedup {speedup:.1f}x is below "
                            f"the {FLOOR:.0f}x floor")

    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    for failure in failures:
        print(f"bench replay: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
