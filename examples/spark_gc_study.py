"""Per-workload GC study: run a Table 3 application and compare
platforms and primitives (a single-workload slice of Figs. 12 and 14).

    python examples/spark_gc_study.py [workload]

where workload is one of spark-bs, spark-km, spark-lr, graphchi-cc,
graphchi-pr, graphchi-als (default: spark-bs).
"""

import sys

from repro import run_workload
from repro.experiments.runner import replay_platform, collect_run
from repro.gcalgo.trace import Primitive


def main(name: str) -> None:
    run = collect_run(name)
    print(f"workload {name}: {run.minor_count} minor GCs, "
          f"{run.major_count} major GCs, "
          f"{run.allocated_bytes / 2**20:.1f} MB allocated, "
          f"{run.allocated_objects} objects")

    copied = sum(t.bytes_copied for t in run.traces)
    refs = sum(t.scan_refs_total() for t in run.traces)
    print(f"GC moved {copied / 2**20:.1f} MB and scanned {refs} "
          "references\n")

    print(f"{'platform':16s} {'GC wall':>10s} {'speedup':>8s} "
          f"{'energy':>9s} {'bandwidth':>10s}")
    baseline = None
    for platform in ("cpu-ddr4", "cpu-hmc", "charon", "charon-cpuside",
                     "ideal"):
        result = replay_platform(platform, name)
        if baseline is None:
            baseline = result.wall_seconds
        print(f"{platform:16s} {result.wall_seconds * 1e3:8.2f}ms "
              f"{baseline / result.wall_seconds:7.2f}x "
              f"{result.energy.total_j * 1e3:7.2f}mJ "
              f"{result.utilized_bandwidth / 1e9:8.1f}GB/s")

    host = replay_platform("cpu-ddr4", name)
    charon = replay_platform("charon", name)
    print("\nper-primitive speedup (Charon vs cpu-ddr4):")
    for primitive in (Primitive.SEARCH, Primitive.SCAN_PUSH,
                      Primitive.COPY, Primitive.BITMAP_COUNT):
        host_s = host.primitive_seconds.get(primitive, 0.0)
        charon_s = charon.primitive_seconds.get(primitive, 0.0)
        if host_s and charon_s:
            print(f"  {primitive.value:13s} {host_s / charon_s:6.2f}x")
    if charon.local_fraction is not None:
        print(f"\nCharon served {charon.local_fraction * 100:.1f}% of "
              "unit accesses from the local cube; bitmap cache hit "
              f"rate {100 * (charon.bitmap_cache_hit_rate or 0):.1f}%")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "spark-bs")
