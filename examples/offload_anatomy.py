"""Anatomy of one offload: what the 48-byte request packet carries,
where it is routed, and how the four processing units spend their time.

    python examples/offload_anatomy.py
"""

from repro import JavaHeap, Primitive, default_config
from repro.core.device import CharonDevice
from repro.core.intrinsics import heap_info_of
from repro.core.packets import OffloadRequest
from repro.gcalgo.trace import TraceEvent
from repro.mem.hmc import HMCSystem
from repro.platform.factory import build_vm


def main() -> None:
    config = default_config().with_heap_bytes(16 * 1024 * 1024)
    heap = JavaHeap(config.heap)
    vm = build_vm(config, heap)
    hmc = HMCSystem(config.hmc)
    device = CharonDevice(config, hmc, vm)
    device.initialize(heap_info_of(heap), vm)

    # The wire format of Sec. 4.1.
    request = OffloadRequest(Primitive.COPY, dest_cube=1,
                             src=heap.layout.eden.start,
                             dst=heap.layout.old.start, arg=65536)
    packet = request.encode()
    print(f"offload request packet ({len(packet)} bytes): "
          f"{packet.hex()}")
    print(f"decoded: {OffloadRequest.decode(packet)}\n")

    events = [
        ("Copy 256 B (one object)",
         TraceEvent(Primitive.COPY, "evacuate",
                    src=heap.layout.eden.start,
                    dst=heap.layout.old.start, size_bytes=256)),
        ("Copy 1 MB (an ALS factor matrix)",
         TraceEvent(Primitive.COPY, "evacuate",
                    src=heap.layout.eden.start,
                    dst=heap.layout.old.start, size_bytes=1 << 20)),
        ("Search 64 cards",
         TraceEvent(Primitive.SEARCH, "card-search",
                    src=heap.card_table.table_base, size_bytes=64)),
        ("Scan&Push 2 refs (a Spark record)",
         TraceEvent(Primitive.SCAN_PUSH, "evacuate",
                    src=heap.layout.eden.start, refs=2, pushes=1)),
        ("Scan&Push 48 refs (a graph adjacency chunk)",
         TraceEvent(Primitive.SCAN_PUSH, "mark",
                    src=heap.layout.old.start, refs=48, pushes=20)),
        ("Bitmap Count 256 bits (half a region)",
         TraceEvent(Primitive.BITMAP_COUNT, "adjust",
                    src=heap.layout.old.start, bits=256)),
    ]
    print(f"{'primitive invocation':44s} {'cube':>4s} "
          f"{'round trip':>11s}")
    now = 0.0
    for label, event in events:
        cube = device._target_cube(event)
        finish = device.offload_event(now, event,
                                      "major" if event.phase !=
                                      "evacuate" else "minor")
        print(f"{label:44s} {cube:4d} "
              f"{(finish - now) * 1e9:9.1f}ns")
        now = finish + 1e-6  # let the pipes drain between probes

    hit_rate = device.bitmap_cache.hit_rate
    print(f"\nbitmap cache hit rate so far: {hit_rate * 100:.0f}% "
          "(warms toward ~90% over a compaction, Sec. 4.5)")
    print(f"unit busy time total: "
          f"{device.busy_time_total() * 1e9:.1f} ns across "
          f"{len(device.all_units())} units")


if __name__ == "__main__":
    main()
