"""Using the Charon primitives from a different collector (Table 1).

The paper argues primitive-level offload outlives any single GC
algorithm.  This example runs the CMS-like mark-sweep collector over a
graph workload's old generation and shows which primitives its traces
contain — and then drives the raw ``offload()`` intrinsic directly,
the way a ported collector would.
"""

from repro import MinorGC, MarkSweepGC, Primitive, default_config
from repro.core.intrinsics import CharonRuntime
from repro.core.device import CharonDevice
from repro.mem.hmc import HMCSystem
from repro.platform.factory import build_vm
from repro.workloads.graphchi import ConnectedComponents
from repro.workloads.mutator import MutatorDriver


class SmallGraph(ConnectedComponents):
    """A shrunken CC workload sized for an 8 MB heap."""

    rmat_scale = 9
    edge_factor = 8
    shards = 2
    shard_buffer_bytes = 64 * 1024
    edge_chunks_per_shard = 4
    edge_chunk_bytes = 16 * 1024
    messages_per_shard = 384

    @property
    def default_heap_bytes(self) -> int:
        return 8 * 1024 * 1024


def main() -> None:
    workload = SmallGraph()
    heap = workload.build_heap()
    driver = MutatorDriver(heap, run_name="cms-demo")
    workload.setup(driver)
    for index in range(4):
        workload.iteration(driver, index)
    print(f"heap: {heap.describe()}")

    # Young generation: the scavenger, whose Copy/Search offload is
    # collector-agnostic.
    minor = MinorGC(heap).collect()
    print(f"\nscavenge: {minor.count(Primitive.COPY)} Copy, "
          f"{minor.count(Primitive.SEARCH)} Search, "
          f"{minor.count(Primitive.SCAN_PUSH)} Scan&Push events")

    # Drop the result-history rings: their records become garbage for
    # the old-generation collector to find.
    for ring in workload.history:
        driver.release(ring)

    # Old generation: mark-sweep.  No compaction means no Bitmap Count
    # and no Copy -- exactly the Table 1 CMS row.
    collector = MarkSweepGC(heap)
    sweep = collector.collect()
    print(f"mark-sweep: {sweep.count(Primitive.SCAN_PUSH)} Scan&Push, "
          f"{sweep.count(Primitive.BITMAP_COUNT)} Bitmap Count, "
          f"{sweep.count(Primitive.COPY)} Copy events; "
          f"freed {sweep.bytes_freed} bytes into "
          f"{len(collector.free_list)} free chunks")

    # Now the raw intrinsics, as a ported collector would call them.
    config = default_config().with_heap_bytes(heap.config.heap_bytes)
    vm = build_vm(config, heap)
    device = CharonDevice(config, HMCSystem(config.hmc), vm)
    runtime = CharonRuntime(device)
    entries = runtime.initialize(heap, vm)
    print(f"\ninitialize(): {entries} TLB entries pinned DRAM-side")

    now = 0.0
    live = [view for view in heap.iterate_space(heap.layout.old)
            if not heap.is_filler(view)][:5]
    for view in live:
        refs = len(view.reference_slots())
        now, response = runtime.offload(
            now, Primitive.SCAN_PUSH, view.addr, 0,
            arg=(refs << 16) | refs)
        print(f"offload(SCAN_PUSH, {view.klass.name:10s} "
              f"@{view.addr:#x}, refs={refs}) -> "
              f"t={now * 1e9:7.1f} ns")
    print(f"\n{device.offloads} offloads, "
          f"{device.request_bytes_sent} request bytes, "
          f"{device.response_bytes_sent} response bytes on the wire")


if __name__ == "__main__":
    main()
