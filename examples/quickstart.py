"""Quickstart: build a heap, collect it, and offload the GC to Charon.

Runs in a few seconds:

    python examples/quickstart.py
"""

from repro import (JavaHeap, MinorGC, MajorGC, TraceReplayer,
                   build_platform, default_config)


def main() -> None:
    config = default_config().with_heap_bytes(16 * 1024 * 1024)
    heap = JavaHeap(config.heap)

    # Build a little object graph: a linked list of records, each
    # holding a 4 KB payload array.
    node_klass = heap.klasses.define_instance("ListNode", ref_fields=2)
    previous = 0
    for _ in range(800):
        node = heap.new_object("ListNode")
        payload = heap.new_object("typeArray", length=4096)
        # Re-resolve the node: allocation never moves anything without
        # a GC here, but this is the pattern real mutators must use.
        heap.set_field(heap.object_at(node.addr), 0, previous)
        heap.set_field(heap.object_at(node.addr), 1, payload.addr)
        previous = node.addr
    heap.roots.append(previous)
    print(f"heap after allocation: {heap.describe()}")

    # Run real collections; each returns the primitive trace Charon
    # consumes.
    traces = [MinorGC(heap).collect() for _ in range(4)]
    traces.append(MajorGC(heap).collect())
    print(f"heap after 4 minor + 1 major GC: {heap.describe()}")
    minor = traces[0]
    print(f"first MinorGC: {minor.objects_copied} objects copied, "
          f"{minor.bytes_copied} bytes, {len(minor.events)} primitive "
          "invocations")

    # Replay the same GC work on the paper's platforms.
    print("\nGC time by platform (identical logical work):")
    baseline = None
    for name in ("cpu-ddr4", "cpu-hmc", "charon", "ideal"):
        platform_heap = JavaHeap(config.heap)
        platform_heap.klasses.define_instance("ListNode", ref_fields=2)
        platform = build_platform(name, config, platform_heap)
        result = TraceReplayer(platform).replay_all(traces)
        if baseline is None:
            baseline = result.wall_seconds
        print(f"  {name:15s} {result.wall_seconds * 1e6:9.1f} us  "
              f"({baseline / result.wall_seconds:5.2f}x)  "
              f"energy {result.energy.total_j * 1e3:7.3f} mJ")

    # Verify the list survived everything intact.
    count = 0
    cursor = heap.roots[-1]
    while cursor:
        view = heap.object_at(cursor)
        cursor = heap.get_field(view, 0)
        count += 1
    print(f"\nlinked list intact after all collections: {count} nodes")


if __name__ == "__main__":
    main()
