"""Heap-sizing study: how GC overhead explodes as the heap shrinks
(the Fig. 2 methodology on one workload).

    python examples/heap_sizing.py [workload]
"""

import sys

from repro.errors import OutOfMemoryError
from repro.experiments.runner import (collect_run, find_min_heap,
                                      replay_platform)


def main(name: str) -> None:
    print(f"bisecting the minimum viable heap for {name} "
          "(each probe is a full run; OOM means too small)...")
    minimum = find_min_heap(name)
    print(f"minimum heap: {minimum / 2**20:.1f} MB\n")

    print(f"{'heap':>10s} {'GCs':>5s} {'GC time':>9s} "
          f"{'mutator':>9s} {'overhead':>9s}")
    for factor in (1.0, 1.25, 1.5, 2.0, 3.0):
        heap_bytes = ((int(minimum * factor) + (1 << 20) - 1)
                      >> 20) << 20
        run = collect_run(name, heap_bytes=heap_bytes)
        timing = replay_platform("cpu-ddr4", name,
                                 heap_bytes=heap_bytes)
        overhead = timing.wall_seconds / run.mutator_seconds
        print(f"{heap_bytes / 2**20:8.0f}MB {run.gc_count:5d} "
              f"{timing.wall_seconds * 1e3:7.2f}ms "
              f"{run.mutator_seconds * 1e3:7.1f}ms "
              f"{overhead * 100:8.1f}%")

    # Demonstrate the OOM boundary itself.
    too_small = (minimum // 2 >> 20) << 20 or 1 << 20
    try:
        collect_run(name, heap_bytes=too_small)
        print(f"\nunexpectedly survived {too_small / 2**20:.0f} MB")
    except OutOfMemoryError as error:
        print(f"\nat {too_small / 2**20:.0f} MB the run dies as "
              f"expected: {error}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "graphchi-cc")
