"""The G1 story: a regional collector driving all four primitives.

Table 1 of the paper claims Charon's primitives carry over to
Garbage-First with at most a "minor fix" (Bitmap Count scanning the
bitmap for whole-heap state).  This example runs the simplified G1
collector, shows the region lifecycle, and replays a G1 evacuation
pause on the host and on Charon.

    python examples/g1_regional_gc.py
"""

from repro import (G1Collector, JavaHeap, Primitive, TraceReplayer,
                   build_platform, default_config)
from repro.gcalgo.g1 import RegionType
from repro.workloads.base import workload_klasses


def main() -> None:
    config = default_config().with_heap_bytes(16 * 1024 * 1024)
    heap = JavaHeap(config.heap, klasses=workload_klasses())
    g1 = G1Collector(heap, region_bytes=64 * 1024)
    print(f"{len(g1.regions)} regions of {g1.region_bytes // 1024} KB")

    # Mutate: long chains (live) interleaved with garbage arrays, plus
    # one humongous object.
    previous = 0
    for index in range(6000):
        view = g1.allocate("Record")
        heap.set_field(view, 0, previous)
        previous = view.addr
        if index % 500 == 0:
            heap.roots.append(previous)
            previous = 0
        if index % 2 == 0:
            g1.allocate("typeArray", 320)  # dies immediately
    matrix = g1.allocate("typeArray", 200 * 1024)
    heap.roots.append(matrix.addr)
    print(f"after mutation: {g1.occupancy_summary()}")

    trace = g1.collect()
    print(f"after the pause: {g1.occupancy_summary()}")
    print(f"evacuated {trace.objects_copied} objects "
          f"({trace.bytes_copied} B), freed {trace.bytes_freed} B")
    print("primitive mix of the G1 pause:")
    for primitive in Primitive:
        print(f"  {primitive.value:13s} {trace.count(primitive):6d} "
              "invocations")
    humongous = g1.region_of(heap.roots[-1])
    print(f"humongous object stayed put in region {humongous.index} "
          f"({humongous.region_type.value})")

    print("\nreplaying the pause:")
    for name in ("cpu-ddr4", "charon"):
        fresh = JavaHeap(config.heap, klasses=workload_klasses())
        platform = build_platform(name, config, fresh)
        result = TraceReplayer(platform).replay(trace)
        print(f"  {name:10s} {result.wall_seconds * 1e6:8.1f} us")


if __name__ == "__main__":
    main()
