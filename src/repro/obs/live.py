"""Live run observability: a Prometheus-text exposition endpoint.

When armed (``REPRO_METRICS_PORT=<port>``, or an explicit
:meth:`LiveServer.start`), a stdlib :class:`http.server` thread serves
three read-only views of the running process:

``/metrics``
    Every :class:`~repro.obs.metrics.MetricsRegistry` counter, gauge
    and histogram in Prometheus text exposition format (version
    0.0.4).  Histograms render full ``_bucket{le=...}`` cumulative
    series plus ``_sum``/``_count`` and conservative
    ``_quantile{quantile=...}`` summary gauges from
    :meth:`~repro.obs.metrics.Histogram.percentile`.

``/progress``
    A JSON document describing sweep progress — whatever provider was
    attached with :meth:`LiveServer.set_progress_provider` (the
    journaled sweep path attaches
    :func:`repro.experiments.progress.progress_snapshot`).  Without a
    provider it answers ``{"available": false}``.

``/healthz``
    ``ok`` — liveness for scrapers and the bench harness.

The endpoint is **off by default** and deliberately boring: a daemon
``ThreadingHTTPServer`` bound to ``127.0.0.1`` (this is an instrument
panel, not a public service), whose handlers only ever read
lock-protected *snapshots* — scraping never blocks the simulation, and
the simulation never blocks a scrape.  Port ``0`` asks the OS for an
ephemeral port (tests); :attr:`LiveServer.port` reports the bound one.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional

from repro.config import METRICS_PORT_ENV, ConfigError
from repro.obs.metrics import MetricsRegistry, global_metrics

#: The quantiles /metrics summarises each histogram at.
QUANTILES = (0.5, 0.9, 0.99)

#: Prometheus exposition content type (text format 0.0.4).
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _prom_name(name: str) -> str:
    """A repro metric name as a legal Prometheus metric name.

    Dotted namespaces become underscores under a ``repro_`` prefix
    (``replay.kernel_fast`` -> ``repro_replay_kernel_fast``); any
    residual illegal character is folded to ``_`` too.
    """
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_"
                   for ch in name.replace(".", "_"))
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return f"repro_{safe}"


def _prom_labels(labels: Dict[str, str], **extra: str) -> str:
    merged = dict(labels)
    merged.update(extra)
    if not merged:
        return ""
    parts = []
    for key, value in sorted(merged.items()):
        escaped = (str(value).replace("\\", r"\\")
                   .replace("\n", r"\n").replace('"', r'\"'))
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def _prom_number(value: object) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == float("inf"):
        return "+Inf"
    if number == float("-inf"):
        return "-Inf"
    return repr(number) if number != int(number) else str(int(number))


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The whole registry as Prometheus text exposition format.

    Works from :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    rows, so the render itself touches no live metric state.
    """
    registry = global_metrics() if registry is None else registry
    rows = registry.snapshot()
    # Group label variants of one metric under a single TYPE header.
    grouped: "Dict[str, List[dict]]" = {}
    order: List[str] = []
    for row in rows:
        name = _prom_name(row["metric"])
        if name not in grouped:
            grouped[name] = []
            order.append(name)
        grouped[name].append(row)
    lines: List[str] = []
    for name in order:
        variants = grouped[name]
        kind = variants[0]["kind"]
        prom_type = {"counter": "counter", "gauge": "gauge",
                     "histogram": "histogram"}[kind]
        lines.append(f"# HELP {name} repro metric "
                     f"{variants[0]['metric']}")
        lines.append(f"# TYPE {name} {prom_type}")
        for row in variants:
            labels = {str(k): str(v) for k, v in row["labels"].items()}
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_prom_labels(labels)} "
                             f"{_prom_number(row['value'])}")
                continue
            bounds = row.get("bounds", [])
            counts = row.get("bucket_counts", [])
            cumulative = 0
            for bound, count in zip(bounds, counts):
                cumulative += count
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels(labels, le=_prom_number(bound))} "
                    f"{cumulative}")
            lines.append(f"{name}_bucket{_prom_labels(labels, le='+Inf')}"
                         f" {row['count']}")
            lines.append(f"{name}_sum{_prom_labels(labels)} "
                         f"{_prom_number(row['sum'])}")
            lines.append(f"{name}_count{_prom_labels(labels)} "
                         f"{row['count']}")
        if kind == "histogram":
            # Conservative bucket-bound quantiles as companion gauges
            # (Prometheus summaries are a distinct type; a second
            # metric name keeps the exposition well-formed).
            lines.append(f"# TYPE {name}_quantile gauge")
            for row in variants:
                labels = {str(k): str(v)
                          for k, v in row["labels"].items()}
                for quantile in QUANTILES:
                    key = f"p{int(quantile * 100)}"
                    lines.append(
                        f"{name}_quantile"
                        f"{_prom_labels(labels, quantile=str(quantile))}"
                        f" {_prom_number(row[key])}")
    return "\n".join(lines) + "\n" if lines else ""


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-live/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        live: "LiveServer" = self.server.live  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(live.registry)
            self._reply(200, EXPOSITION_CONTENT_TYPE, body)
        elif path == "/progress":
            provider = live.progress_provider
            if provider is None:
                payload = {"available": False}
            else:
                try:
                    payload = dict(provider())
                    payload.setdefault("available", True)
                except Exception as exc:  # never take the server down
                    payload = {"available": False, "error": str(exc)}
            self._reply(200, "application/json",
                        json.dumps(payload, sort_keys=True))
        elif path == "/healthz":
            self._reply(200, "text/plain; charset=utf-8", "ok\n")
        else:
            self._reply(404, "text/plain; charset=utf-8",
                        "not found\n")

    def _reply(self, status: int, content_type: str,
               body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, *args: object) -> None:
        """Silence per-request stderr chatter."""


class LiveServer:
    """The exposition endpoint's lifecycle owner."""

    def __init__(self,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry or global_metrics()
        self.progress_provider: Optional[Callable[[], dict]] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> Optional[int]:
        """The bound port (resolves ``0`` to the ephemeral choice)."""
        if self._server is None:
            return None
        return self._server.server_address[1]

    def start(self, port: int, host: str = "127.0.0.1") -> int:
        """Serve on ``host:port`` from a daemon thread; returns the
        bound port."""
        if self._server is not None:
            return self.port
        server = ThreadingHTTPServer((host, port), _Handler)
        server.daemon_threads = True
        server.live = self  # type: ignore[attr-defined]
        thread = threading.Thread(target=server.serve_forever,
                                  name="repro-live-metrics",
                                  daemon=True)
        thread.start()
        self._server = server
        self._thread = thread
        return self.port

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._server = None
        self._thread = None

    def set_progress_provider(
            self, provider: Optional[Callable[[], dict]]) -> None:
        """Attach the callable /progress serves (None detaches)."""
        self.progress_provider = provider


#: The process-wide server the env installer and sweeps share.
_LIVE = LiveServer()


def get_live_server() -> LiveServer:
    return _LIVE


_INSTALLED = False


def install_env_live_server(environ=None) -> Optional[int]:
    """Start the global server from ``REPRO_METRICS_PORT``.

    Returns the bound port, or ``None`` when the variable is unset
    (the default — no thread, no socket, zero overhead).  Installs at
    most once per process; forked sweep workers inherit the variable
    but *not* the socket — only the parent should serve, so workers
    detect the inherited installation flag and stay quiet.
    """
    global _INSTALLED
    environ = os.environ if environ is None else environ
    raw = environ.get(METRICS_PORT_ENV)
    if not raw or _INSTALLED:
        return None
    try:
        port = int(raw)
    except ValueError:
        raise ConfigError(
            f"{METRICS_PORT_ENV} must be an integer port, got {raw!r}")
    if not 0 <= port <= 65535:
        raise ConfigError(
            f"{METRICS_PORT_ENV} must be in [0, 65535], got {port}")
    _INSTALLED = True
    return _LIVE.start(port)


def reset_installed_for_tests() -> None:
    global _INSTALLED
    _INSTALLED = False
    _LIVE.stop()
    _LIVE.set_progress_provider(None)
