"""Exporters: Chrome trace-event JSON and metric snapshots.

* :func:`write_chrome_trace` — the span timeline as a Chrome
  trace-event **JSON array** of complete (``ph: "X"``) events with
  ``pid``/``tid``/``ts``, loadable in Perfetto or ``chrome://tracing``;
* :func:`metrics_snapshot` / :func:`write_metrics_json` — the registry
  as a versioned JSON document;
* :func:`metrics_csv` / :func:`write_metrics_csv` — the same samples
  as CSV for spreadsheets and plotting scripts.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

#: Bump when the snapshot document layout changes.
METRICS_SCHEMA_VERSION = 1

_CSV_COLUMNS = ("metric", "kind", "labels", "value", "count", "sum",
                "mean", "p50", "p90", "p99")


def _ensure_parent(path: Path) -> None:
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)


# -- Chrome trace ----------------------------------------------------------

def chrome_trace_events(tracer: Tracer) -> List[Dict[str, object]]:
    """The tracer's events in Chrome trace-event form."""
    return tracer.chrome_events()


def write_chrome_trace(path: Union[str, Path], tracer: Tracer) -> Path:
    """Write ``tracer``'s timeline as a Chrome trace JSON array."""
    path = Path(path)
    _ensure_parent(path)
    path.write_text(json.dumps(chrome_trace_events(tracer)))
    return path


# -- metric snapshots ------------------------------------------------------

def metrics_snapshot(registry: MetricsRegistry) -> Dict[str, object]:
    """The registry as a plain versioned document."""
    return {
        "schema": METRICS_SCHEMA_VERSION,
        "metrics": registry.samples(),
    }


def write_metrics_json(path: Union[str, Path],
                       registry: MetricsRegistry) -> Path:
    path = Path(path)
    _ensure_parent(path)
    path.write_text(json.dumps(metrics_snapshot(registry), indent=2,
                               sort_keys=True))
    return path


def metrics_csv(registry: MetricsRegistry) -> str:
    """The registry's samples as CSV text (one row per sample)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_CSV_COLUMNS,
                            lineterminator="\n")
    writer.writeheader()
    for row in registry.samples():
        rendered = dict(row)
        rendered["labels"] = ";".join(
            f"{key}={value}"
            for key, value in sorted(row["labels"].items()))
        writer.writerow({column: rendered.get(column, "")
                         for column in _CSV_COLUMNS})
    return buffer.getvalue()


def write_metrics_csv(path: Union[str, Path],
                      registry: MetricsRegistry) -> Path:
    path = Path(path)
    _ensure_parent(path)
    path.write_text(metrics_csv(registry))
    return path
