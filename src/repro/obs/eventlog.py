"""Structured JSONL run-event log: one greppable timeline per run.

Spans answer "how long", metrics answer "how much"; the event log
answers "what happened, in order".  When armed (``REPRO_EVENTLOG=path``
or an explicit :meth:`EventLog.open`), the pipeline appends one JSON
object per line for every notable occurrence:

==================  =====================================================
record type         emitted by
==================  =====================================================
``run_start``       :func:`install_env_eventlog` when a process arms
``gc_pause``        both replayers, once per simulated collection
``shard_claimed``   :mod:`repro.experiments.shard_journal` on a claim win
``shard_done``      the shard journal after a shard's result persists
``cache_hit``       :mod:`repro.experiments.trace_cache` on a served run
``cache_miss``      the trace cache before (re)generating a run
``stage1_hit``      :mod:`repro.experiments.stage1_cache` on a served
                    stage-1 product
``stage1_miss``     the stage-1 cache before recomputing a product
``shm_publish``     :mod:`repro.experiments.shm_store` when a trace set
                    lands in shared memory
``pool_start``      :mod:`repro.experiments.workers` noting the chosen
                    sweep start method (once per process)
``pool_reuse``      the warm pool serving a repeat sweep invocation
``fallback``        :func:`repro.platform.fast_replay.make_replayer` on
                    an auto-mode demotion to event-by-event replay
``coverage_check``  ``scripts/check_fast_path_coverage.py`` verdicts
``run_end``         an ``atexit`` hook per armed process
==================  =====================================================

Every record carries ``event`` (the type), ``ts`` (Unix seconds) and
``pid``; the per-type payload fields are documented in
``docs/OBSERVABILITY.md``.  The file **rotates by size**: once an
append would push it past ``max_bytes`` (default
:data:`~repro.config.DEFAULT_EVENTLOG_MAX_BYTES`, override with
``REPRO_EVENTLOG_MAX_BYTES``), the current file is renamed to
``<path>.1`` (replacing any previous rotation) and a fresh file
starts — a long sweep keeps at most two files.

The log is **off by default** and engineered like the tracer: the
disabled path is a single :attr:`EventLog.enabled` attribute check, so
default runs stay byte-identical.  Appends are ``O_APPEND`` writes of
one line under a thread lock, and the writer re-opens after a fork
(``replay_grid`` pool workers inherit the armed log and interleave
safely — each line is a self-contained record with its writer's pid).
"""

from __future__ import annotations

import atexit
import io
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.config import (EVENTLOG_ENV, default_eventlog_max_bytes)

#: Bump when a record type's payload fields change incompatibly.
EVENTLOG_SCHEMA_VERSION = 1

#: The record types the pipeline emits (a reference for consumers; the
#: log accepts any type so downstream layers can extend it).
EVENT_TYPES = ("run_start", "gc_pause", "shard_claimed", "shard_done",
               "cache_hit", "cache_miss", "stage1_hit", "stage1_miss",
               "shm_publish", "pool_start", "pool_reuse", "fallback",
               "coverage_check", "run_end")

#: Rotated-file suffix appended to the log path.
ROTATED_SUFFIX = ".1"

#: GC trace kind -> the collector class that produces it; fills the
#: ``gc_pause`` record's ``collector`` field in both replayers.
COLLECTOR_FOR_KIND = {
    "minor": "MinorGC",
    "major": "MajorGC",
    "sweep": "MarkSweepGC",
    "g1": "G1Collector",
    "concurrent": "ConcurrentMarkGC",
}


class EventLog:
    """An append-only, size-rotated JSONL event sink.

    Disabled until :meth:`open` is called; the disabled :meth:`emit`
    guard is one attribute check so instrumented hot paths stay free.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._path: Optional[Path] = None
        self._max_bytes = 0
        self._lock = threading.Lock()
        self._handle: Optional[io.TextIOWrapper] = None
        self._pid = 0
        self._size = 0

    @property
    def path(self) -> Optional[Path]:
        return self._path

    @property
    def rotated_path(self) -> Optional[Path]:
        if self._path is None:
            return None
        return self._path.with_name(self._path.name + ROTATED_SUFFIX)

    # -- control -----------------------------------------------------------

    def open(self, path: Union[str, Path],
             max_bytes: Optional[int] = None) -> None:
        """Arm the log to append at ``path``, rotating past
        ``max_bytes`` (default from the environment)."""
        with self._lock:
            self._close_handle()
            self._path = Path(path)
            self._max_bytes = (default_eventlog_max_bytes()
                               if max_bytes is None else int(max_bytes))
            self._open_handle()
            self.enabled = True

    def close(self) -> None:
        """Disarm the log (tests; an armed process normally keeps it
        open until exit)."""
        with self._lock:
            self._close_handle()
            self.enabled = False
            self._path = None

    # -- recording ---------------------------------------------------------

    def emit(self, event: str, **fields: Any) -> None:
        """Append one typed record.  No-op when disabled."""
        if not self.enabled:
            return
        record: Dict[str, Any] = {"event": event,
                                  "ts": round(time.time(), 6),
                                  "pid": os.getpid()}
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"),
                          sort_keys=True) + "\n"
        with self._lock:
            if self._handle is None or self._pid != os.getpid():
                # A forked worker inherits the armed log but needs its
                # own O_APPEND handle (and its own size view).
                self._open_handle()
            if self._size and self._size + len(line) > self._max_bytes:
                self._rotate()
            self._handle.write(line)
            self._handle.flush()
            self._size += len(line)

    # -- internals ---------------------------------------------------------

    def _open_handle(self) -> None:
        self._close_handle()
        if self._path.parent != Path(""):
            self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self._path, "a", encoding="utf-8")
        self._pid = os.getpid()
        try:
            self._size = self._path.stat().st_size
        except OSError:
            self._size = 0

    def _close_handle(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - best-effort close
                pass
            self._handle = None

    def _rotate(self) -> None:
        """Move the full file aside and start fresh.

        Concurrent writers (forked workers) may race the rename; the
        filesystem keeps it safe — ``replace`` is atomic and a loser
        simply reopens the fresh file on its next emit.
        """
        self._close_handle()
        try:
            self._path.replace(self.rotated_path)
        except OSError:  # pragma: no cover - raced by a sibling worker
            pass
        self._open_handle()


#: The process-wide event log every instrumented component reports to.
_EVENTLOG = EventLog()


def get_eventlog() -> EventLog:
    return _EVENTLOG


_INSTALLED = False


def install_env_eventlog(environ=None) -> Optional[str]:
    """Arm the global log from ``REPRO_EVENTLOG``; returns the path
    installed (once per process) or ``None``.

    Emits the process's ``run_start`` record immediately and registers
    an ``atexit`` ``run_end`` — forked workers inherit both the armed
    log and the exit hook, so each process in a sweep brackets its own
    lifetime in the shared timeline (records carry the writer's pid).
    """
    global _INSTALLED
    environ = os.environ if environ is None else environ
    path = environ.get(EVENTLOG_ENV)
    if not path or _INSTALLED:
        return None
    _EVENTLOG.open(path)
    _INSTALLED = True
    _EVENTLOG.emit("run_start", schema=EVENTLOG_SCHEMA_VERSION,
                   argv=list(sys.argv))
    atexit.register(_EVENTLOG.emit, "run_end")
    return path


def reset_installed_for_tests() -> None:
    """Allow a test to re-arm the env installer in one process."""
    global _INSTALLED
    _INSTALLED = False
    _EVENTLOG.close()


def read_events(path: Union[str, Path],
                include_rotated: bool = True) -> List[Dict[str, Any]]:
    """Parse a log (and its rotation, oldest first) back into records.

    A torn final line — a writer killed mid-append — is skipped, never
    misparsed.
    """
    path = Path(path)
    files = []
    rotated = path.with_name(path.name + ROTATED_SUFFIX)
    if include_rotated and rotated.exists():
        files.append(rotated)
    if path.exists():
        files.append(path)
    records: List[Dict[str, Any]] = []
    for file in files:
        for line in file.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records
