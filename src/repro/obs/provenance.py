"""Run provenance manifests: what produced an output, exactly.

Every runner/figure/benchmark output directory gets a
``*.manifest.json`` (or ``manifest.json``) describing the session that
wrote it: which workload runs it consumed, each run's **config hash**
(the very key the content-addressed trace cache stores it under, so an
output can be traced back to its cached trace set byte for byte),
whether the traces came from the cache or a fresh collector execution,
the trace schema / generator versions, and host wall time.

The experiment runner reports every :func:`record_run` as it captures
or fetches a workload; :func:`write_manifest` snapshots the session
into a file.  "Distilling the Real Cost of Production Garbage
Collectors" (Cai et al., 2021) is the motivation: a reported number
without its exact provenance is not evidence.
"""

from __future__ import annotations

import json
import platform as _platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Bump when the manifest document layout changes.
MANIFEST_SCHEMA_VERSION = 1

#: Default manifest file name inside an output directory.
MANIFEST_NAME = "manifest.json"

_RUNS: List[Dict[str, Any]] = []
_EPOCH = time.perf_counter()


def record_run(workload: str, heap_bytes: int, config_hash: str,
               cache: str, host_seconds: float,
               seed: Optional[int] = None) -> Dict[str, Any]:
    """Register one workload capture/fetch with the session.

    ``cache`` is ``"hit"`` (served by the content-addressed trace
    cache) or ``"generated"`` (collectors executed).  ``config_hash``
    must be the trace-cache key of the run so manifests and cache
    entries cross-reference exactly.
    """
    if cache not in ("hit", "generated"):
        raise ValueError(f"cache must be 'hit' or 'generated', "
                         f"got {cache!r}")
    record = {
        "workload": workload,
        "heap_bytes": heap_bytes,
        "config_hash": config_hash,
        "cache": cache,
        "host_seconds": round(host_seconds, 6),
    }
    if seed is not None:
        record["seed"] = seed
    _RUNS.append(record)
    return record


def session_runs() -> List[Dict[str, Any]]:
    """The runs recorded so far in this process (copies)."""
    return [dict(record) for record in _RUNS]


def reset_session() -> None:
    """Forget the recorded runs (tests and fresh sessions)."""
    _RUNS.clear()


def build_manifest(command: Optional[str] = None,
                   outputs: Optional[List[str]] = None,
                   extra: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """Assemble the manifest document for the current session."""
    # Function-level imports: provenance sits below the experiments
    # layer, so the version constants are pulled lazily rather than
    # creating an import cycle at module load.
    from repro.experiments.trace_cache import GENERATOR_VERSION, STATS
    from repro.gcalgo.columnar import TRACE_SCHEMA_VERSION

    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "trace_schema_version": TRACE_SCHEMA_VERSION,
        "generator_version": GENERATOR_VERSION,
        "python": sys.version.split()[0],
        "platform": _platform.platform(),
        "host_wall_seconds": round(time.perf_counter() - _EPOCH, 6),
        "trace_cache": dict(STATS.snapshot()),
        "runs": session_runs(),
    }
    if command is not None:
        manifest["command"] = command
    if outputs is not None:
        manifest["outputs"] = list(outputs)
    if extra:
        manifest.update(extra)
    return manifest


def manifest_path(directory: Union[str, Path],
                  name: str = MANIFEST_NAME) -> Path:
    return Path(directory) / name


def write_manifest(directory: Union[str, Path],
                   name: str = MANIFEST_NAME,
                   command: Optional[str] = None,
                   outputs: Optional[List[str]] = None,
                   extra: Optional[Dict[str, Any]] = None) -> Path:
    """Write the session manifest into ``directory``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = manifest_path(directory, name)
    document = build_manifest(command=command, outputs=outputs,
                              extra=extra)
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())


def round_trips(path: Union[str, Path]) -> bool:
    """True when the manifest file survives a load -> dump -> load."""
    first = load_manifest(path)
    second = json.loads(json.dumps(first, sort_keys=True))
    return first == second
