"""Adapters: pull existing counter sources into the metrics registry.

Each adapter mirrors an externally-owned statistics source —
the trace-cache tally, :class:`~repro.core.device.CharonDevice`
structures, :class:`~repro.mem.hmc.HMCSystem` traffic, and replay
:class:`~repro.platform.timing.GCTimingResult`\\ s — into labeled
gauges/counters of a :class:`~repro.obs.metrics.MetricsRegistry`, so
one snapshot carries everything a run measured.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.device import CharonDevice
    from repro.mem.hmc import HMCSystem
    from repro.platform.timing import GCTimingResult


def trace_cache_metrics(registry: MetricsRegistry) -> None:
    """Mirror the trace-cache tally (hits/misses/stale/stores/
    generated) into ``trace_cache.*`` gauges."""
    from repro.experiments.trace_cache import STATS

    scope = registry.scope("trace_cache")
    for name, value in STATS.snapshot().items():
        scope.gauge(name, "content-addressed trace cache "
                          "tally").set(value)


def stage1_cache_metrics(registry: MetricsRegistry) -> None:
    """Mirror the stage-1 product cache tally (hits/misses/stale/
    stores) into ``stage1_cache.*`` gauges."""
    from repro.experiments.stage1_cache import STATS

    scope = registry.scope("stage1_cache")
    for name, value in STATS.snapshot().items():
        scope.gauge(name, "content-addressed stage-1 product cache "
                          "tally").set(value)


def warm_sweep_metrics(registry: MetricsRegistry) -> None:
    """Mirror the warm-pool and shared-memory-store tallies into
    ``pool.*`` / ``shm.*`` gauges."""
    from repro.experiments import shm_store, workers

    scope = registry.scope("pool")
    for name, value in workers.pool_stats().items():
        scope.gauge(name, "warm worker pool tally").set(value)
    scope = registry.scope("shm")
    for name, value in shm_store.STATS.snapshot().items():
        scope.gauge(name, "shared-memory trace store tally").set(value)


def device_metrics(registry: MetricsRegistry,
                   device: "CharonDevice") -> None:
    """Mirror a Charon device's unit/TLB/bitmap-cache counters."""
    from repro.core.report import device_summary, unit_rows

    scope = registry.scope("charon")
    for name, value in device_summary(device).items():
        scope.gauge(name, "aggregate Charon device counter").set(
            float(value))
    for row in unit_rows(device):
        scope.gauge("unit_commands", "per-unit offload commands",
                    unit=row["unit"], cube=row["cube"]).set(
            float(row["commands"]))
        scope.gauge("unit_busy_us", "per-unit busy microseconds",
                    unit=row["unit"], cube=row["cube"]).set(
            float(row["busy_us"]))


def hmc_metrics(registry: MetricsRegistry, hmc: "HMCSystem") -> None:
    """Mirror HMC traffic/locality counters (Fig. 13's raw inputs)."""
    from repro.core.report import traffic_summary

    scope = registry.scope("hmc")
    for name, value in traffic_summary(hmc).items():
        scope.gauge(name, "HMC traffic counter").set(float(value))


def replay_kernel_metrics(registry: MetricsRegistry) -> None:
    """Mirror the process-wide ``replay.kernel*`` rows into ``registry``.

    The replayers record which kernel ran (event, closed-form, or a
    batched kernel), its throughput, and any auto-mode fallbacks into
    the *global* registry; this copies those rows into a per-command
    snapshot so ``repro stats`` always shows which replay path
    produced its numbers.
    """
    from repro.obs.metrics import global_metrics

    for sample in global_metrics().samples():
        name = sample["metric"]
        if not name.startswith("replay.kernel"):
            continue
        labels = sample["labels"]
        if sample["kind"] == "counter":
            registry.counter(name, "mirrored replay-kernel counter",
                             **labels).add(sample["value"])
        elif sample["kind"] == "gauge":
            registry.gauge(name, "mirrored replay-kernel gauge",
                           **labels).set(sample["value"])


def heap_kernel_metrics(registry: MetricsRegistry) -> None:
    """Mirror the process-wide ``heap.kernel*`` rows into ``registry``.

    The functional-layer fast kernels count their calls, batch sizes,
    and scalar fallbacks in the *global* registry (see
    :mod:`repro.heap.fast_kernels`); this copies those rows into a
    per-command snapshot so ``repro stats`` shows which heap kernels
    produced the traces, mirroring ``replay.kernel_*``.
    """
    from repro.obs.metrics import global_metrics

    for sample in global_metrics().samples():
        name = sample["metric"]
        if not name.startswith("heap.kernel"):
            continue
        labels = sample["labels"]
        if sample["kind"] == "counter":
            registry.counter(name, "mirrored heap-kernel counter",
                             **labels).add(sample["value"])
        elif sample["kind"] == "gauge":
            registry.gauge(name, "mirrored heap-kernel gauge",
                           **labels).set(sample["value"])


def timing_metrics(registry: MetricsRegistry, result: "GCTimingResult",
                   workload: str) -> None:
    """Record one replay result as labeled ``replay.*`` metrics."""
    scope = registry.scope("replay")
    labels = {"platform": result.platform, "workload": workload}
    scope.counter("wall_seconds", "simulated GC pause seconds",
                  **labels).add(result.wall_seconds)
    scope.counter("residual_seconds", "non-offloadable host work",
                  **labels).add(result.residual_seconds)
    scope.counter("dram_bytes", "bytes moved during GC",
                  **labels).add(result.dram_bytes)
    scope.counter("energy_joules", "package energy of the replay",
                  **labels).add(result.energy.total_j)
    for primitive, seconds in result.primitive_seconds.items():
        scope.counter("primitive_seconds", "per-primitive work time",
                      primitive=primitive.value, **labels).add(seconds)
