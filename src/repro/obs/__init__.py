"""Unified telemetry: spans, metrics, exporters, and provenance.

The experiment pipeline produces numbers in four historically separate
places — :mod:`repro.sim.stats` counters, the
:mod:`repro.core.report` device dumps, the trace-cache tally, and the
``gclog`` lines.  This package composes them into one picture of a
run:

* :mod:`repro.obs.tracer` — a span tracer with two clock domains:
  *simulated* seconds (what the replayers compute) and *host* wall
  time (what the functional collectors and the experiment driver
  actually spend);
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labeled
  counters, gauges and histograms (with percentile queries) that
  absorbs the old ``sim.stats`` primitives;
* :mod:`repro.obs.adapters` — bridges pulling the trace-cache tally,
  :class:`~repro.core.device.CharonDevice` counters, HMC traffic and
  :class:`~repro.platform.timing.GCTimingResult`\\ s into the registry;
* :mod:`repro.obs.export` — Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``) plus JSON/CSV metric snapshots;
* :mod:`repro.obs.provenance` — per-run manifests (config hash,
  workload, platform, schema/generator versions, cache behaviour, host
  wall time) written next to every runner/figure/benchmark output;
* :mod:`repro.obs.eventlog` — a structured JSONL run-event log
  (``REPRO_EVENTLOG``) with size-based rotation: one greppable
  timeline of run/GC/shard/cache events per run;
* :mod:`repro.obs.live` — a live Prometheus-text exposition endpoint
  (``REPRO_METRICS_PORT``) serving ``/metrics``, ``/progress`` and
  ``/healthz`` from a stdlib http.server thread.

Everything is off by default and adds only a guard check when
disabled; set ``REPRO_TRACE_OUT`` (or pass ``--trace-out``) to record
and export a timeline.
"""

from repro.obs.eventlog import EventLog, get_eventlog, read_events
from repro.obs.live import (LiveServer, get_live_server,
                            render_prometheus)
from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry, global_metrics)
from repro.obs.tracer import (CLOCK_HOST, CLOCK_SIM, Tracer,
                              get_tracer, install_env_exporters)

__all__ = [
    "CLOCK_HOST",
    "CLOCK_SIM",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "LiveServer",
    "MetricsRegistry",
    "Tracer",
    "get_eventlog",
    "get_live_server",
    "get_tracer",
    "global_metrics",
    "install_env_exporters",
    "read_events",
    "render_prometheus",
]
