"""Span tracing with simulated and host clock domains.

A *span* is a named interval with a category and optional arguments.
Spans live in one of two clock domains, exported as two separate
Chrome-trace processes so a timeline never mixes them up:

* ``sim`` (pid 0) — simulated seconds, the time axis the replayers
  compute.  The replayers report these spans explicitly via
  :meth:`Tracer.add_span` because simulated time is a number they
  already hold, not something a wall clock could observe.
* ``host`` (pid 1) — real wall time measured with
  :func:`time.perf_counter`, used by the functional collectors and the
  experiment driver through the :meth:`Tracer.span` context manager.

The tracer is **disabled by default** and designed so the disabled
path costs one attribute check: :meth:`span` returns a shared no-op
context manager and the replayers guard their span emission on
:attr:`Tracer.enabled`.  The ``REPRO_TRACE_OUT`` environment variable
enables the global tracer and writes the Chrome trace file at process
exit (see :func:`install_env_exporters`).
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.config import (EVENTLOG_ENV, METRICS_OUT_ENV,
                          METRICS_PORT_ENV, TRACE_OUT_ENV)

CLOCK_SIM = "sim"
CLOCK_HOST = "host"

#: Chrome-trace process ids per clock domain (one "process" per clock
#: so Perfetto draws two clearly labeled tracks).
_CLOCK_PIDS = {CLOCK_SIM: 0, CLOCK_HOST: 1}


class _NullSpan:
    """The disabled-tracer span: a reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _HostSpan:
    """An open host-clock span; closes (and records) on ``__exit__``."""

    __slots__ = ("_tracer", "name", "cat", "tid", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: int,
                 args: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.tid = tid
        self.args = args

    def __enter__(self) -> "_HostSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        tracer = self._tracer
        tracer._append({
            "name": self.name,
            "cat": self.cat,
            "ph": "X",
            "pid": _CLOCK_PIDS[CLOCK_HOST],
            "tid": self.tid,
            "ts": (self._start - tracer._host_epoch) * 1e6,
            "dur": (end - self._start) * 1e6,
            **({"args": self.args} if self.args else {}),
        })


class Tracer:
    """Collects Chrome trace events from both clock domains."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._host_epoch = time.perf_counter()

    # -- control -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._events = []

    def __len__(self) -> int:
        return len(self._events)

    # -- recording ---------------------------------------------------------

    def span(self, name: str, cat: str = "host", tid: int = 0,
             **args: Any):
        """A host-clock span context manager (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _HostSpan(self, name, cat, tid, args or None)

    def add_span(self, name: str, start_s: float, dur_s: float,
                 cat: str = "gc", clock: str = CLOCK_SIM, tid: int = 0,
                 args: Optional[Dict[str, Any]] = None) -> None:
        """Record a complete span with explicit timestamps.

        ``start_s``/``dur_s`` are seconds on the given clock; the
        replayers use this with their simulated timeline.  Callers are
        expected to guard on :attr:`enabled` themselves (the replayers
        do, to keep the disabled fast path to one check)."""
        if not self.enabled:
            return
        self._append({
            "name": name,
            "cat": cat,
            "ph": "X",
            "pid": _CLOCK_PIDS[clock],
            "tid": tid,
            "ts": start_s * 1e6,
            "dur": dur_s * 1e6,
            **({"args": args} if args else {}),
        })

    def instant(self, name: str, cat: str = "marker",
                clock: str = CLOCK_HOST, tid: int = 0,
                args: Optional[Dict[str, Any]] = None) -> None:
        """A zero-duration marker event."""
        if not self.enabled:
            return
        if clock == CLOCK_HOST:
            ts = (time.perf_counter() - self._host_epoch) * 1e6
        else:
            ts = 0.0
        self._append({
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "g",
            "pid": _CLOCK_PIDS[clock],
            "tid": tid,
            "ts": ts,
            **({"args": args} if args else {}),
        })

    def _append(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)

    # -- export ------------------------------------------------------------

    def chrome_events(self) -> List[Dict[str, Any]]:
        """The recorded events plus process-name metadata, as the
        Chrome trace-event "JSON array" format."""
        meta = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": f"{clock} clock"}}
            for clock, pid in sorted(_CLOCK_PIDS.items(),
                                     key=lambda item: item[1])
        ]
        with self._lock:
            return meta + list(self._events)

    def write_chrome(self, path: Union[str, Path]) -> Path:
        """Write the Chrome trace-event JSON file; returns the path."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_events()))
        return path

    def span_seconds(self, cat: str, clock: str = CLOCK_SIM) -> float:
        """Total duration of the recorded spans of one category."""
        pid = _CLOCK_PIDS[clock]
        with self._lock:
            return sum(event.get("dur", 0.0) for event in self._events
                       if event.get("pid") == pid
                       and event.get("cat") == cat) / 1e6


#: The process-wide tracer every instrumented component reports to.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def install_env_exporters(environ=None) -> Dict[str, str]:
    """Arm the opt-in environment knobs; returns what was installed.

    ``REPRO_TRACE_OUT=<path>`` enables the global tracer and writes the
    Chrome trace there at process exit; ``REPRO_METRICS_OUT=<path>``
    writes the global metrics registry's JSON snapshot (with the
    trace-cache tally adapted in) at process exit.  Live observability
    arms here too: ``REPRO_EVENTLOG=<path>`` opens the JSONL run-event
    log and ``REPRO_METRICS_PORT=<port>`` starts the ``/metrics``
    exposition endpoint.  Safe to call more than once — each exporter
    installs a single time per process.
    """
    environ = os.environ if environ is None else environ
    installed: Dict[str, str] = {}
    trace_out = environ.get(TRACE_OUT_ENV)
    if trace_out and trace_out not in _INSTALLED:
        _TRACER.enable()
        atexit.register(_TRACER.write_chrome, trace_out)
        _INSTALLED.add(trace_out)
        installed[TRACE_OUT_ENV] = trace_out
    metrics_out = environ.get(METRICS_OUT_ENV)
    if metrics_out and metrics_out not in _INSTALLED:
        atexit.register(_write_metrics_snapshot, metrics_out)
        _INSTALLED.add(metrics_out)
        installed[METRICS_OUT_ENV] = metrics_out
    # Lazy imports: the live modules cost nothing unless their
    # environment knobs are actually set.
    from repro.obs.eventlog import install_env_eventlog
    eventlog_path = install_env_eventlog(environ)
    if eventlog_path is not None:
        installed[EVENTLOG_ENV] = eventlog_path
    from repro.obs.live import install_env_live_server
    live_port = install_env_live_server(environ)
    if live_port is not None:
        installed[METRICS_PORT_ENV] = str(live_port)
    return installed


_INSTALLED: set = set()


def _write_metrics_snapshot(path: str) -> None:
    from repro.obs.adapters import trace_cache_metrics
    from repro.obs.export import write_metrics_json
    from repro.obs.metrics import global_metrics

    registry = global_metrics()
    trace_cache_metrics(registry)
    write_metrics_json(path, registry)
