"""The unified metrics registry: labeled counters, gauges, histograms.

This module absorbs the old ``repro.sim.stats`` primitives (which now
re-export from here, unchanged in behaviour) and extends them into one
registry the whole pipeline reports through:

* metrics may carry **labels** (``registry.counter("replay_wall",
  platform="charon", workload="spark-bs")``), each label combination
  being its own child metric;
* **gauges** hold last-written values (adapters use them to mirror
  externally-owned counters like the trace-cache tally);
* **histograms** answer :meth:`Histogram.percentile` queries;
* hierarchical ``scope()`` views keep the zsim-style dotted namespaces
  the simulation components already use.

Snapshots (:meth:`MetricsRegistry.samples`) feed the JSON/CSV
exporters in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((key, str(value))
                        for key, value in labels.items()))


def _render(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing scalar statistic."""

    kind = "counter"

    def __init__(self, name: str, description: str = "",
                 labels: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.description = description
        self.labels: Dict[str, str] = {
            key: value for key, value in _label_key(labels or {})}
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value:g})"


class Gauge:
    """A last-value-wins scalar (mirrors externally-owned counters)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "",
                 labels: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.description = description
        self.labels: Dict[str, str] = {
            key: value for key, value in _label_key(labels or {})}
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value:g})"


class Histogram:
    """A fixed-bucket histogram for latency/size distributions."""

    kind = "histogram"

    def __init__(self, name: str, bucket_bounds: List[float],
                 description: str = "",
                 labels: Optional[Dict[str, object]] = None) -> None:
        if sorted(bucket_bounds) != list(bucket_bounds):
            raise ValueError("bucket bounds must be sorted ascending")
        self.name = name
        self.description = description
        self.labels: Dict[str, str] = {
            key: value for key, value in _label_key(labels or {})}
        self.bounds = list(bucket_bounds)
        self.counts = [0] * (len(bucket_bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def record(self, value: float, count: int = 1) -> None:
        index = 0
        while index < len(self.bounds) and value > self.bounds[index]:
            index += 1
        self.counts[index] += count
        self.total += count
        self.sum += value * count

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def percentile(self, p: float) -> Optional[float]:
        """Upper bucket bound covering the ``p``-th percentile.

        ``p`` is in ``[0, 100]``.  The answer is conservative: the
        smallest bucket bound below which at least ``p`` percent of the
        recorded values fall.  Values recorded beyond the last bound
        (the overflow bucket) clamp to the last bound — a fixed-bucket
        histogram cannot resolve them further.  An **empty histogram
        answers ``None``** — the sentinel distinguishes "no samples"
        from a genuine 0.0 percentile (every exporter renders it as
        JSON null / an empty CSV cell).  A single-sample histogram
        answers that sample's bucket bound for every ``p``.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.total == 0:
            return None
        need = p / 100.0 * self.total
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= need and cumulative > 0:
                return self.bounds[min(index, len(self.bounds) - 1)]
        return self.bounds[-1]

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0


class MetricsRegistry:
    """A hierarchical, label-aware namespace of metrics.

    Metrics are keyed by full dotted name *and* label set; asking for
    the same (name, labels) pair always returns the same object.
    ``scope(name)`` returns a child view sharing storage but prefixing
    names — the zsim idiom the simulation components use.
    """

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._counters: "OrderedDict[str, Counter]" = OrderedDict()
        self._gauges: "OrderedDict[str, Gauge]" = OrderedDict()
        self._histograms: "OrderedDict[str, Histogram]" = OrderedDict()
        # Guards registration and snapshot iteration (the live /metrics
        # scraper reads from its own thread).  Counter.add / Gauge.set
        # on already-registered metrics stay lock-free — a snapshot is
        # point-in-time consistent per metric, which is all a scrape
        # needs — so the simulation hot path pays nothing.
        self._lock = threading.RLock()

    # -- registration ------------------------------------------------------

    def counter(self, name: str, description: str = "",
                **labels: object) -> Counter:
        """Get or create the counter ``name`` (with optional labels)."""
        full = self._full(name)
        key = _render(full, _label_key(labels))
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter(full, description, labels)
            return self._counters[key]

    def gauge(self, name: str, description: str = "",
              **labels: object) -> Gauge:
        """Get or create the gauge ``name`` (with optional labels)."""
        full = self._full(name)
        key = _render(full, _label_key(labels))
        with self._lock:
            if key not in self._gauges:
                self._gauges[key] = Gauge(full, description, labels)
            return self._gauges[key]

    def histogram(self, name: str, bounds: List[float],
                  description: str = "",
                  **labels: object) -> Histogram:
        """Get or create the histogram ``name`` (with optional labels)."""
        full = self._full(name)
        key = _render(full, _label_key(labels))
        with self._lock:
            if key not in self._histograms:
                self._histograms[key] = Histogram(full, bounds,
                                                  description, labels)
            return self._histograms[key]

    def scope(self, name: str) -> "MetricsRegistry":
        """A child view sharing storage but prefixing names with ``name``."""
        child = MetricsRegistry(prefix=self._full(name))
        child._counters = self._counters
        child._gauges = self._gauges
        child._histograms = self._histograms
        child._lock = self._lock
        return child

    def _full(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    # -- introspection -----------------------------------------------------

    def counters(self) -> Iterator[Tuple[str, float]]:
        for key, counter in self._counters.items():
            yield key, counter.value

    def gauges(self) -> Iterator[Tuple[str, float]]:
        for key, gauge in self._gauges.items():
            yield key, gauge.value

    def histograms(self) -> Iterator[Tuple[str, Histogram]]:
        yield from self._histograms.items()

    def as_dict(self) -> Dict[str, float]:
        return {key: counter.value
                for key, counter in self._counters.items()}

    def samples(self) -> List[Dict[str, object]]:
        """Flat sample rows for exporters and reports.

        Counters and gauges yield one row each; histograms yield their
        count/sum/mean plus p50/p90/p99 summaries.
        """
        rows: List[Dict[str, object]] = []
        with self._lock:
            scalars = list(self._counters.values()) \
                + list(self._gauges.values())
            histograms = list(self._histograms.values())
        for metric in scalars:
            rows.append({
                "metric": metric.name,
                "kind": metric.kind,
                "labels": dict(metric.labels),
                "value": metric.value,
            })
        for histogram in histograms:
            rows.append({
                "metric": histogram.name,
                "kind": histogram.kind,
                "labels": dict(histogram.labels),
                "count": histogram.total,
                "sum": histogram.sum,
                "mean": histogram.mean,
                "p50": histogram.percentile(50),
                "p90": histogram.percentile(90),
                "p99": histogram.percentile(99),
            })
        return rows

    def snapshot(self) -> List[Dict[str, object]]:
        """Deep-copied sample rows for the live exposition endpoint.

        Like :meth:`samples` but histogram rows additionally carry the
        bucket ``bounds`` and per-bucket ``bucket_counts`` (the final
        entry being the overflow bucket) so a renderer can emit
        Prometheus ``_bucket{le=...}`` series.  Every row is detached
        from the live metric objects, so the caller can serialize at
        leisure while the simulation keeps recording.
        """
        rows = self.samples()
        with self._lock:
            histograms = list(self._histograms.values())
        extras = {(histogram.name, tuple(sorted(histogram.labels.items()))):
                  (list(histogram.bounds), list(histogram.counts))
                  for histogram in histograms}
        for row in rows:
            key = (row["metric"], tuple(sorted(row["labels"].items())))
            if row["kind"] == "histogram" and key in extras:
                bounds, counts = extras[key]
                row["bounds"] = bounds
                row["bucket_counts"] = counts
        return rows

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for histogram in self._histograms.values():
            histogram.reset()


#: The process-wide registry the runner and adapters report into.
_METRICS = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    return _METRICS


def reset_global_metrics() -> None:
    """Drop every metric from the global registry (tests)."""
    _METRICS._counters.clear()
    _METRICS._gauges.clear()
    _METRICS._histograms.clear()
