"""Vectorized functional-layer heap kernels (the fast path).

The collectors in :mod:`repro.gcalgo` walk the heap object by object in
pure Python — bit-at-a-time bitmap walks, per-object header decode,
card-by-card Search.  This module gives them batched numpy equivalents
in the spirit of the paper's wide popcount/subtract hardware (Sec. 3.2):

* :class:`CoverageIndex` — a popcount-prefix-sum index over the
  begin/end mark bitmaps answering ``live_words_in_range`` queries in
  O(1) with partial-word masking;
* :func:`mark_objects_bulk` — OR whole uint64 bitmap words for batches
  of objects (with :meth:`~repro.heap.mark_bitmap.MarkBitmaps.clear_range`
  as its AND-masked counterpart);
* :func:`search_blocks_fast` — the dirty-card Search in one
  ``np.nonzero``-style pass;
* :func:`parse_space` / :func:`gather_ref_slots` — batched header
  decode and reference-slot gathering over a parseable space;
* :class:`HeapOps` — cheap header decode for the inherently sequential
  stack-drain loops.

**Bit-exactness contract**: every kernel is a drop-in replacement for
the scalar path it shadows — same GCTrace event streams, same residual
totals, byte-identical post-GC heap buffers.  The differential fuzzer
(``repro fuzz --kernels``) runs every collector under both modes and
asserts exactly that.  The ``REPRO_HEAP_KERNELS`` environment variable
(or :func:`set_kernel_mode` / :func:`use_kernel_mode`) selects the
path; ``fast`` is the default and ``scalar`` stays as the oracle.
"""

from __future__ import annotations

import os
import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.config import HEAP_KERNEL_MODES, HEAP_KERNELS_ENV
from repro.errors import ConfigError, InvalidObjectError
from repro.heap.klass import (ARRAY_ELEMENTS_OFFSET, KlassKind,
                              KlassTable)
from repro.heap.mark_bitmap import MarkBitmaps
from repro.units import WORD

_U64_ONE = np.uint64(1)
_MASK64 = (1 << 64) - 1

#: Kind codes used by the layout tables (``-1`` marks unused ids).
KIND_INSTANCE = 0
KIND_OBJ_ARRAY = 1
KIND_TYPE_ARRAY = 2


class FastKernelFallback(Exception):
    """The fast kernels cannot serve this heap (pre-flight check)."""


# ---------------------------------------------------------------------------
# Mode switch
# ---------------------------------------------------------------------------

_MODE_OVERRIDE: Optional[str] = None


def kernel_mode() -> str:
    """The selected heap-kernel mode: ``fast`` (default) or ``scalar``."""
    if _MODE_OVERRIDE is not None:
        return _MODE_OVERRIDE
    mode = os.environ.get(HEAP_KERNELS_ENV) or "fast"
    if mode not in HEAP_KERNEL_MODES:
        raise ConfigError(
            f"{HEAP_KERNELS_ENV} must be one of {HEAP_KERNEL_MODES}, "
            f"got {mode!r}")
    return mode


def set_kernel_mode(mode: Optional[str]) -> None:
    """Override the kernel mode process-wide (``None`` re-reads the
    environment)."""
    global _MODE_OVERRIDE
    if mode is not None and mode not in HEAP_KERNEL_MODES:
        raise ConfigError(f"kernel mode must be one of "
                          f"{HEAP_KERNEL_MODES}, got {mode!r}")
    _MODE_OVERRIDE = mode


@contextmanager
def use_kernel_mode(mode: str) -> Iterator[None]:
    """Scoped kernel-mode override (the differential fuzzer's lever)."""
    global _MODE_OVERRIDE
    previous = _MODE_OVERRIDE
    set_kernel_mode(mode)
    try:
        yield
    finally:
        _MODE_OVERRIDE = previous


def fast_enabled(heap=None) -> bool:
    """True when collectors should take the fast path.

    With a ``heap``, also pre-flights the layout tables; an unsupported
    klass table records a ``heap.kernel_fallbacks`` metric and demotes
    the run to the scalar path *before* any mutation happens (the
    kernels never fall back mid-collection — by then the scalar and
    fast paths must already agree).
    """
    if kernel_mode() != "fast":
        return False
    if heap is not None:
        try:
            layouts_for(heap.klasses)
        except FastKernelFallback as error:
            record_fallback("layouts", str(error))
            return False
    return True


# ---------------------------------------------------------------------------
# Metrics (heap.kernel_* — mirrored into `repro stats` by repro.obs)
# ---------------------------------------------------------------------------

def record_call(op: str, kernel: str = "fast",
                items: Optional[int] = None) -> None:
    """Count one kernel invocation (and its batch size, for batches)."""
    from repro.obs.metrics import global_metrics

    registry = global_metrics()
    registry.counter("heap.kernel_calls",
                     "heap-kernel invocations by op and path",
                     op=op, kernel=kernel).add(1)
    if items is not None:
        registry.counter("heap.kernel_batch_items",
                         "items processed by batched heap kernels",
                         op=op).add(float(items))


def record_scalar(op: str) -> None:
    """Count one scalar-path collector run (the oracle path)."""
    record_call(op, kernel="scalar")


def record_fallback(op: str, why: str) -> None:
    """Count a silent demotion from fast to scalar kernels."""
    from repro.obs.metrics import global_metrics

    global_metrics().counter(
        "heap.kernel_fallbacks",
        "collector runs demoted to scalar heap kernels",
        op=op).add(1)


# ---------------------------------------------------------------------------
# Klass layout tables (cached per KlassTable + version)
# ---------------------------------------------------------------------------

@dataclass
class KlassLayouts:
    """Dense per-klass-id layout tables for batched decode."""

    version: int
    #: numpy tables indexed by klass id (0 and unused ids are -1/0)
    kind_code: np.ndarray
    fixed_size: np.ndarray
    ref_count: np.ndarray
    off_start: np.ndarray
    flat_offsets: np.ndarray
    #: python-list twins for the sequential parse/drain loops
    kind_list: List[int]
    size_list: List[int]
    offsets_list: List[Tuple[int, ...]]


_LAYOUT_CACHE: "weakref.WeakKeyDictionary[KlassTable, KlassLayouts]" = \
    weakref.WeakKeyDictionary()


def layouts_for(table: KlassTable) -> KlassLayouts:
    """The (cached) layout tables for ``table``.

    Raises :class:`FastKernelFallback` if any descriptor falls outside
    the three GC-relevant layout families — the pre-flight check
    :func:`fast_enabled` uses to demote to the scalar path.
    """
    cached = _LAYOUT_CACHE.get(table)
    if cached is not None and cached.version == table.version:
        return cached
    max_id = max((k.klass_id for k in table), default=0)
    kind_code = np.full(max_id + 1, -1, dtype=np.int64)
    fixed_size = np.zeros(max_id + 1, dtype=np.int64)
    ref_count = np.zeros(max_id + 1, dtype=np.int64)
    off_start = np.zeros(max_id + 1, dtype=np.int64)
    offsets_list: List[Tuple[int, ...]] = [()] * (max_id + 1)
    flat: List[int] = []
    for klass in table:
        kid = klass.klass_id
        if klass.kind is KlassKind.OBJ_ARRAY:
            kind_code[kid] = KIND_OBJ_ARRAY
        elif klass.kind is KlassKind.TYPE_ARRAY:
            kind_code[kid] = KIND_TYPE_ARRAY
        else:
            kind_code[kid] = KIND_INSTANCE
            size = klass.instance_bytes()
            if size % WORD:
                raise FastKernelFallback(
                    f"klass {klass.name!r} has unaligned size {size}")
            fixed_size[kid] = size
            offsets = tuple(klass.reference_offsets())
            ref_count[kid] = len(offsets)
            off_start[kid] = len(flat)
            offsets_list[kid] = offsets
            flat.extend(offsets)
    layouts = KlassLayouts(
        version=table.version, kind_code=kind_code,
        fixed_size=fixed_size, ref_count=ref_count, off_start=off_start,
        flat_offsets=np.asarray(flat, dtype=np.int64),
        kind_list=kind_code.tolist(), size_list=fixed_size.tolist(),
        offsets_list=offsets_list)
    _LAYOUT_CACHE[table] = layouts
    return layouts


# ---------------------------------------------------------------------------
# Popcount over uint64 arrays
# ---------------------------------------------------------------------------

if hasattr(np, "bitwise_count"):
    def popcount_u64(words: np.ndarray) -> np.ndarray:
        """Per-word popcount of a uint64 array (native instruction)."""
        return np.bitwise_count(words).astype(np.int64)
else:  # pragma: no cover - exercised only on older numpy
    _SWAR = tuple(np.uint64(c) for c in
                  (0x5555555555555555, 0x3333333333333333,
                   0x0F0F0F0F0F0F0F0F, 0x0101010101010101))

    def popcount_u64(words: np.ndarray) -> np.ndarray:
        """Per-word popcount via the SWAR reduction (numpy < 2)."""
        m1, m2, m4, h01 = _SWAR
        v = words.copy()
        v -= (v >> _U64_ONE) & m1
        v = (v & m2) + ((v >> np.uint64(2)) & m2)
        v = (v + (v >> np.uint64(4))) & m4
        return ((v * h01) >> np.uint64(56)).astype(np.int64)


# ---------------------------------------------------------------------------
# Space parsing and reference gathering
# ---------------------------------------------------------------------------

@dataclass
class ParsedSpace:
    """Columnar decode of every object in a parseable range."""

    addrs: np.ndarray      #: object start addresses (int64)
    kids: np.ndarray       #: klass ids (int64)
    lengths: np.ndarray    #: array lengths (0 for instances)
    sizes: np.ndarray      #: aligned object sizes in bytes

    def __len__(self) -> int:
        return int(self.addrs.shape[0])

    @property
    def end_addrs(self) -> np.ndarray:
        return self.addrs + self.sizes


def parse_space(heap, start: int, top: int) -> ParsedSpace:
    """Decode every object header in ``[start, top)`` in one pass.

    One bulk u64→int conversion of the range plus a tight int loop —
    the batched replacement for ``iterate_space``'s per-object
    ``object_at`` decode.  Raises :class:`InvalidObjectError` exactly
    where the scalar walk would (a zero or unknown klass id).
    """
    layouts = layouts_for(heap.klasses)
    kind_list = layouts.kind_list
    size_list = layouts.size_list
    n_kinds = len(kind_list)
    lo = heap.word_index(start)
    words = heap.words[lo:lo + (top - start) // WORD].tolist()
    n_words = len(words)
    addrs: List[int] = []
    kids: List[int] = []
    lengths: List[int] = []
    sizes: List[int] = []
    cursor = 0
    while cursor < n_words:
        kid = words[cursor + 1]
        kind = kind_list[kid] if 0 < kid < n_kinds else -1
        if kind < 0:
            addr = start + cursor * WORD
            if kid == 0:
                raise InvalidObjectError(f"no object at {addr:#x}")
            raise InvalidObjectError(
                f"garbage klass id {kid:#x} at {addr:#x}")
        if kind == KIND_INSTANCE:
            length = 0
            size = size_list[kid]
        else:
            length = words[cursor + 2]
            if kind == KIND_OBJ_ARRAY:
                size = ARRAY_ELEMENTS_OFFSET + length * WORD
            else:
                size = (ARRAY_ELEMENTS_OFFSET
                        + (length + WORD - 1) // WORD * WORD)
        addrs.append(start + cursor * WORD)
        kids.append(kid)
        lengths.append(length)
        sizes.append(size)
        cursor += size // WORD
    record_call("parse", items=len(addrs))
    return ParsedSpace(addrs=np.asarray(addrs, dtype=np.int64),
                       kids=np.asarray(kids, dtype=np.int64),
                       lengths=np.asarray(lengths, dtype=np.int64),
                       sizes=np.asarray(sizes, dtype=np.int64))


@dataclass
class RefBatch:
    """Flattened reference slots of a batch of objects."""

    counts: np.ndarray     #: reference slots per object
    slots: np.ndarray      #: absolute slot addresses, object-major
    targets: np.ndarray    #: current slot values (0 = null)
    obj_index: np.ndarray  #: owning object index per slot

    def __len__(self) -> int:
        return int(self.slots.shape[0])

    def per_object(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(object_index, slots, targets)`` per object with
        at least one reference slot, in object order."""
        boundaries = np.concatenate(
            ([0], np.cumsum(self.counts))).astype(np.int64)
        for index in np.flatnonzero(self.counts):
            lo, hi = boundaries[index], boundaries[index + 1]
            yield int(index), self.slots[lo:hi], self.targets[lo:hi]


def gather_ref_slots(heap, addrs: np.ndarray, kids: np.ndarray,
                     lengths: np.ndarray) -> RefBatch:
    """Compute and load every reference slot of a batch of objects.

    Slot order within an object and object order across the batch match
    the scalar ``reference_slots()`` walk exactly, so flattened
    young/old masks replay the scalar push order.
    """
    layouts = layouts_for(heap.klasses)
    kinds = layouts.kind_code[kids]
    counts = np.where(kinds == KIND_OBJ_ARRAY, lengths,
                      layouts.ref_count[kids])
    total = int(counts.sum())
    record_call("scan", items=total)
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return RefBatch(counts=counts, slots=empty, targets=empty,
                        obj_index=empty)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    obj_index = np.repeat(np.arange(len(addrs), dtype=np.int64),
                          counts)
    within = np.arange(total, dtype=np.int64) - starts[obj_index]
    is_array = kinds[obj_index] == KIND_OBJ_ARRAY
    flat_index = np.where(
        is_array, 0, layouts.off_start[kids[obj_index]] + within)
    instance_off = (layouts.flat_offsets[flat_index]
                    if layouts.flat_offsets.shape[0] else flat_index)
    offsets = np.where(is_array,
                       ARRAY_ELEMENTS_OFFSET + within * WORD,
                       instance_off)
    slots = addrs[obj_index] + offsets
    targets = heap.words[(slots - heap.base) // WORD].astype(np.int64)
    return RefBatch(counts=counts, slots=slots, targets=targets,
                    obj_index=obj_index)


# ---------------------------------------------------------------------------
# Bulk bitmap marking
# ---------------------------------------------------------------------------

def mark_objects_bulk(bitmaps: MarkBitmaps, addrs: np.ndarray,
                      sizes: np.ndarray) -> None:
    """Set begin/end bits for a batch of objects at once.

    OR-accumulates whole uint64 bitmap words (``np.bitwise_or.at``
    handles colliding words), equivalent to per-object
    :meth:`~repro.heap.mark_bitmap.MarkBitmaps.mark_object` calls.
    """
    if len(addrs) == 0:
        return
    record_call("mark_bitmap", items=len(addrs))
    first = (addrs - bitmaps.covered_start) // WORD
    last = (addrs + sizes - WORD - bitmaps.covered_start) // WORD
    for array, indices in ((bitmaps.beg, first), (bitmaps.end, last)):
        masks = np.left_shift(_U64_ONE,
                              (indices & 63).astype(np.uint64))
        np.bitwise_or.at(array, indices >> 6, masks)


def set_words_bulk(heap, addrs: np.ndarray, value: int) -> None:
    """Store one u64 ``value`` at a batch of word addresses."""
    heap.words[(addrs - heap.base) // WORD] = np.uint64(value)


def and_words_bulk(heap, addrs: np.ndarray, mask: int) -> None:
    """AND a batch of u64 words with ``mask`` (bulk mark-bit clears)."""
    indices = (addrs - heap.base) // WORD
    heap.words[indices] &= np.uint64(mask & _MASK64)


def or_words_bulk(heap, addrs: np.ndarray, bits: int) -> None:
    """OR ``bits`` into a batch of u64 words (bulk mark-bit sets)."""
    indices = (addrs - heap.base) // WORD
    heap.words[indices] |= np.uint64(bits & _MASK64)


# ---------------------------------------------------------------------------
# Coverage index: popcount-prefix-sum live_words_in_range
# ---------------------------------------------------------------------------

class CoverageIndex:
    """O(1) ``live_words_in_range`` over frozen begin/end bitmaps.

    Materialises the *coverage* map — bit ``k`` set iff heap word ``k``
    lies inside a live object — as ``(end << 1) - beg`` evaluated
    word-streamed (each begin/end pair ``(i, j)`` contributes
    ``2^(j+1) - 2^i``, i.e. exactly bits ``i..j``; pairs are disjoint
    and ordered so no carries cross pairs).  The per-word borrow chain
    is recovered without a sequential scan: the borrow into word ``w``
    is 1 exactly when a pair straddles the word boundary, which equals
    the prefix-sum difference of begin-bit and shifted-end-bit
    popcounts.  Per-word popcounts of the coverage map plus an
    exclusive prefix sum then answer any range query with two masked
    lookups — the same arithmetic the paper's Bitmap Count unit wires
    into hardware, applied functionally.
    """

    def __init__(self, bitmaps: MarkBitmaps) -> None:
        record_call("coverage_index", items=int(bitmaps.beg.shape[0]))
        self.covered_start = bitmaps.covered_start
        self.covered_end = bitmaps.covered_end
        self.num_bits = bitmaps.num_bits
        beg = bitmaps.beg
        end = bitmaps.end
        shifted = np.left_shift(end, _U64_ONE)
        if shifted.shape[0] > 1:
            shifted[1:] |= end[:-1] >> np.uint64(63)
        borrow_balance = np.cumsum(popcount_u64(beg)
                                   - popcount_u64(shifted))
        if borrow_balance.shape[0]:
            low, high = int(borrow_balance.min()), \
                int(borrow_balance[:-1].max()) if \
                borrow_balance.shape[0] > 1 else 0
            if low < 0 or high > 1:
                raise ConfigError("inconsistent begin/end bitmaps")
        borrow_in = np.concatenate(
            ([0], borrow_balance[:-1])).astype(np.uint64)
        coverage = shifted - beg - borrow_in
        word_live = popcount_u64(coverage)
        # One sentinel word so queries at covered_end stay in bounds.
        self._coverage = np.concatenate(
            (coverage, np.zeros(1, dtype=np.uint64)))
        self._prefix = np.concatenate(
            ([0], np.cumsum(word_live))).astype(np.int64)

    def _bit(self, addr: int) -> int:
        if not self.covered_start <= addr <= self.covered_end:
            raise ConfigError(f"address {addr:#x} outside bitmap "
                              "coverage")
        return (addr - self.covered_start) // WORD

    def live_upto(self, addr: int) -> int:
        """Live words in ``[covered_start, addr)``."""
        bit = self._bit(addr)
        word, rem = bit >> 6, bit & 63
        partial = int(self._coverage[word]) & ((1 << rem) - 1)
        return int(self._prefix[word]) + _popcount_word(partial)

    def live_words(self, start_addr: int, end_addr: int) -> int:
        """Drop-in for ``live_words_in_range_fast`` on frozen maps."""
        if end_addr <= start_addr:
            return 0
        return self.live_upto(min(end_addr, self.covered_end)) \
            - self.live_upto(start_addr)

    def live_upto_batch(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`live_upto` over an address batch."""
        record_call("bitmap_count", items=len(addrs))
        bits = (addrs - self.covered_start) // WORD
        words = bits >> 6
        rems = (bits & 63).astype(np.uint64)
        masks = np.left_shift(_U64_ONE, rems) - _U64_ONE
        partial = popcount_u64(self._coverage[words] & masks)
        return self._prefix[words] + partial


def _popcount_word(value: int) -> int:
    from repro.core.bitmap_math import popcount_int
    return popcount_int(value)


# ---------------------------------------------------------------------------
# Dirty-card Search
# ---------------------------------------------------------------------------

def search_blocks_fast(card_table,
                       block_cards: int = 64
                       ) -> List[Tuple[int, int, bool]]:
    """The Search primitive's block scan in one vectorized pass.

    Returns tuples identical to ``CardTable.search_blocks``.
    """
    from repro.heap.card_table import CLEAN

    n_cards = card_table.num_cards
    n_blocks = -(-n_cards // block_cards)
    record_call("search", items=n_blocks)
    dirty = card_table.bytes != CLEAN
    padded = np.zeros(n_blocks * block_cards, dtype=bool)
    padded[:n_cards] = dirty
    found = padded.reshape(n_blocks, block_cards).any(axis=1).tolist()
    base = card_table.table_base
    return [(base + index * block_cards,
             min(block_cards, n_cards - index * block_cards),
             found[index])
            for index in range(n_blocks)]


# ---------------------------------------------------------------------------
# Cheap sequential decode (for the stack-drain loops)
# ---------------------------------------------------------------------------

class HeapOps:
    """Raw-word object decode for the inherently sequential loops.

    Stack drains (scavenge, marking, G1 evacuation) are graph
    traversals whose order defines the trace, so they cannot batch —
    but they can skip ``object_at``'s ObjectView construction and read
    headers straight out of the u64 buffer via the layout tables.
    """

    __slots__ = ("words", "base", "kind", "size", "offsets",
                 "n_kinds")

    def __init__(self, heap) -> None:
        layouts = layouts_for(heap.klasses)
        self.words = heap.words
        self.base = heap.base
        self.kind = layouts.kind_list
        self.size = layouts.size_list
        self.offsets = layouts.offsets_list
        self.n_kinds = len(layouts.kind_list)

    def read_word(self, addr: int) -> int:
        return int(self.words[(addr - self.base) // WORD])

    def write_word(self, addr: int, value: int) -> None:
        self.words[(addr - self.base) // WORD] = np.uint64(
            value & _MASK64)

    def decode(self, addr: int) -> Tuple[int, int, int]:
        """``(klass_id, length, size_bytes)`` of the object at ``addr``."""
        base_word = (addr - self.base) // WORD
        kid = int(self.words[base_word + 1])
        kind = self.kind[kid] if 0 < kid < self.n_kinds else -1
        if kind < 0:
            if kid == 0:
                raise InvalidObjectError(f"no object at {addr:#x}")
            raise InvalidObjectError(
                f"garbage klass id {kid:#x} at {addr:#x}")
        if kind == KIND_INSTANCE:
            return kid, 0, self.size[kid]
        length = int(self.words[base_word + 2])
        if kind == KIND_OBJ_ARRAY:
            return kid, length, ARRAY_ELEMENTS_OFFSET + length * WORD
        return kid, length, (ARRAY_ELEMENTS_OFFSET
                             + (length + WORD - 1) // WORD * WORD)

    def ref_slots(self, addr: int, kid: int, length: int) -> List[int]:
        """Absolute reference-slot addresses, in scalar walk order."""
        if self.kind[kid] == KIND_OBJ_ARRAY:
            first = addr + ARRAY_ELEMENTS_OFFSET
            return list(range(first, first + length * WORD, WORD))
        return [addr + off for off in self.offsets[kid]]
