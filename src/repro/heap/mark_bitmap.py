"""Begin/end mark bitmaps (Sec. 3.2, Fig. 9).

One bit per 64-bit heap word.  A set bit in ``beg`` marks the first word
of a live object; the matching set bit in ``end`` marks its *last* word.
The compacting phase of MajorGC computes destination addresses by
summing live words in ranges over these bitmaps
(``live_words_in_range``); the naive software algorithm (Fig. 8 — a
bit-at-a-time walk) lives here, while Charon's optimized
subtract-and-popcount algorithm lives in :mod:`repro.core.bitmap_math`
next to the processing unit that executes it.

Semantics of ``live_words_in_range(start, end)``: the number of live
words inside ``[start, end)``, counting *partial* contributions of
objects that straddle either boundary.  Both implementations follow
this definition and are property-tested for equality.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.core.bitmap_math import popcount_int
from repro.errors import ConfigError
from repro.heap.backing import allocate
from repro.units import WORD


def _popcount(value: int) -> int:
    """Set-bit count of a non-negative int (shared 16-bit LUT)."""
    return popcount_int(value)


class MarkBitmaps:
    """Paired begin/end bitmaps covering ``[covered_start, covered_end)``."""

    def __init__(self, covered_start: int, covered_end: int,
                 bitmap_base: int = 0) -> None:
        if covered_end <= covered_start:
            raise ConfigError("bitmap covers an empty range")
        if covered_start % WORD or covered_end % WORD:
            raise ConfigError("bitmap bounds must be word aligned")
        self.covered_start = covered_start
        self.covered_end = covered_end
        #: virtual address of the begin bitmap itself; the end bitmap
        #: lives at ``bitmap_base + OFFSET`` (Fig. 8 line 3).
        self.bitmap_base = bitmap_base
        self.num_bits = (covered_end - covered_start) // WORD
        n_words = -(-self.num_bits // 64)
        self.beg = allocate(n_words, dtype=np.uint64)
        self.end = allocate(n_words, dtype=np.uint64)

    @property
    def bitmap_bytes(self) -> int:
        """Size of one bitmap in bytes (the OFFSET between beg and end)."""
        return self.beg.nbytes

    # -- bit addressing ------------------------------------------------------

    def bit_index(self, addr: int) -> int:
        if not self.covered_start <= addr < self.covered_end:
            raise ConfigError(f"address {addr:#x} outside bitmap coverage")
        if addr % WORD:
            raise ConfigError(f"address {addr:#x} not word aligned")
        return (addr - self.covered_start) // WORD

    def addr_of_bit(self, index: int) -> int:
        return self.covered_start + index * WORD

    def _get(self, array: np.ndarray, index: int) -> bool:
        return bool((int(array[index >> 6]) >> (index & 63)) & 1)

    def _set(self, array: np.ndarray, index: int) -> None:
        array[index >> 6] |= np.uint64(1 << (index & 63))

    def _clear_bit(self, array: np.ndarray, index: int) -> None:
        array[index >> 6] &= np.uint64(~(1 << (index & 63)) & (2**64 - 1))

    # -- marking ---------------------------------------------------------------

    def mark_object(self, addr: int, size_bytes: int) -> None:
        """Set the begin bit of ``addr`` and the end bit of its last word."""
        if size_bytes < WORD or size_bytes % WORD:
            raise ConfigError(f"object size {size_bytes} invalid")
        first = self.bit_index(addr)
        last = self.bit_index(addr + size_bytes - WORD)
        self._set(self.beg, first)
        self._set(self.end, last)

    def is_begin(self, addr: int) -> bool:
        return self._get(self.beg, self.bit_index(addr))

    def is_end(self, addr: int) -> bool:
        return self._get(self.end, self.bit_index(addr))

    def clear(self) -> None:
        self.beg[:] = 0
        self.end[:] = 0

    def clear_range(self, start_addr: int, end_addr: int) -> None:
        """Clear both bitmaps over ``[start_addr, end_addr)``.

        Whole 64-bit words are zeroed with one slice store; the partial
        words at the boundaries are AND-masked — the bulk analogue of
        clearing the bits one at a time.
        """
        if end_addr <= start_addr:
            return
        first = self.bit_index(start_addr)
        last = (min(end_addr, self.covered_end)
                - self.covered_start) // WORD
        lo_word, lo_bit = first >> 6, first & 63
        hi_word, hi_bit = last >> 6, last & 63
        for array in (self.beg, self.end):
            if lo_word == hi_word:
                keep = ~(((1 << (hi_bit - lo_bit)) - 1) << lo_bit)
                array[lo_word] &= np.uint64(keep & (2**64 - 1))
                continue
            if lo_bit:
                array[lo_word] &= np.uint64((1 << lo_bit) - 1)
            else:
                array[lo_word] = 0
            array[lo_word + 1:hi_word] = 0
            if hi_bit:
                array[hi_word] &= np.uint64(
                    (~((1 << hi_bit) - 1)) & (2**64 - 1))

    # -- queries ---------------------------------------------------------------

    def inside_object(self, addr: int) -> bool:
        """True when ``addr``'s word lies strictly inside a live object
        whose begin bit precedes ``addr`` (used for range corner cases)."""
        index = self.bit_index(addr)
        if self._get(self.beg, index):
            return False
        probe = index - 1
        # Scan backwards word-at-a-time for the nearest set bit.
        while probe >= 0:
            word_idx = probe >> 6
            beg_word = int(self.beg[word_idx])
            end_word = int(self.end[word_idx])
            if beg_word == 0 and end_word == 0:
                probe = (word_idx << 6) - 1
                continue
            mask = (1 << ((probe & 63) + 1)) - 1
            beg_word &= mask
            end_word &= mask
            if beg_word == 0 and end_word == 0:
                probe = (word_idx << 6) - 1
                continue
            last_beg = beg_word.bit_length() - 1
            last_end = end_word.bit_length() - 1
            # An end bit at or after the last begin bit closes the object.
            return last_beg > last_end
        return False

    def naive_live_words_in_range(self, start_addr: int,
                                  end_addr: int) -> int:
        """The software algorithm of Fig. 8: walk bits one at a time."""
        if end_addr <= start_addr:
            return 0
        first = self.bit_index(start_addr)
        # end_addr may equal covered_end; clamp the exclusive bound.
        last = (min(end_addr, self.covered_end)
                - self.covered_start) // WORD
        count = 0
        inside = self.inside_object(start_addr)
        for index in range(first, last):
            if self._get(self.beg, index):
                inside = True
            if inside:
                count += 1
            if self._get(self.end, index):
                inside = False
        return count

    def live_words_in_range_fast(self, start_addr: int,
                                 end_addr: int) -> int:
        """Word-parallel count, equivalent to the naive walk.

        This is the same arithmetic Charon's Bitmap Count unit performs
        (subtract the range's end map from its begin map as little-endian
        integers, popcount, and add the begin-bit count — Fig. 9b); the
        collector uses it functionally because HotSpot's software path
        computes the identical value.  The streaming per-word datapath
        model lives in :mod:`repro.core.bitmap_math` and is
        property-tested against both implementations.
        """
        if end_addr <= start_addr:
            return 0
        beg_int, end_int, num_bits = self.range_bits(start_addr, end_addr)
        if num_bits == 0:
            return 0
        # Corner case 1: the range starts inside an object — virtually
        # begin it at bit 0.
        if self.inside_object(start_addr):
            beg_int |= 1
        # Corner case 2: the last object extends past the range — close
        # it virtually at the final bit so the partial words count.
        n_beg = _popcount(beg_int)
        n_end = _popcount(end_int)
        if n_beg > n_end:
            end_int |= 1 << (num_bits - 1)
        diff = end_int - beg_int
        if diff < 0:
            raise ConfigError(
                "inconsistent begin/end bitmaps in range "
                f"[{start_addr:#x}, {end_addr:#x})")
        return _popcount(diff) + _popcount(beg_int)

    def live_objects_in(self, start_addr: int, end_addr: int
                        ) -> Iterator[Tuple[int, int]]:
        """Yield ``(addr, size_bytes)`` of objects *beginning* in the range."""
        first = self.bit_index(start_addr)
        last = (min(end_addr, self.covered_end)
                - self.covered_start) // WORD
        begin_indices = self._set_bits_between(self.beg, first, last)
        for begin in (int(i) for i in begin_indices):
            end_index = self._next_set_bit(self.end, begin)
            if end_index is None:
                raise ConfigError(
                    f"begin bit at {self.addr_of_bit(begin):#x} has no end")
            size = (end_index - begin + 1) * WORD
            yield self.addr_of_bit(begin), size

    def _set_bits_between(self, array: np.ndarray, first: int,
                          last: int) -> np.ndarray:
        """Indices of set bits in ``[first, last)``, ascending."""
        if last <= first:
            return np.empty(0, dtype=np.int64)
        word_lo, word_hi = first >> 6, (last + 63) >> 6
        window = array[word_lo:word_hi]
        bits = np.unpackbits(window.view(np.uint8), bitorder="little")
        positions = np.flatnonzero(bits) + (word_lo << 6)
        return positions[(positions >= first) & (positions < last)]

    def _next_set_bit(self, array: np.ndarray, start: int):
        index = start
        while index < self.num_bits:
            word_idx = index >> 6
            word = int(array[word_idx]) >> (index & 63)
            if word:
                return index + ((word & -word).bit_length() - 1)
            index = (word_idx + 1) << 6
        return None

    # -- raw range extraction (for the optimized unit) --------------------------

    def range_bits(self, start_addr: int, end_addr: int
                   ) -> Tuple[int, int, int]:
        """Return ``(beg_int, end_int, num_bits)`` for a range.

        The bitmaps are materialised as little-endian integers whose bit
        0 corresponds to ``start_addr``'s word — the representation the
        Bitmap Count unit's subtract-and-popcount datapath consumes.
        """
        first = self.bit_index(start_addr)
        last = (min(end_addr, self.covered_end)
                - self.covered_start) // WORD
        num_bits = max(0, last - first)
        if num_bits == 0:
            return 0, 0, 0
        beg_int = self._extract_int(self.beg, first, last)
        end_int = self._extract_int(self.end, first, last)
        return beg_int, end_int, num_bits

    def _extract_int(self, array: np.ndarray, first: int, last: int) -> int:
        word_lo, word_hi = first >> 6, (last + 63) >> 6
        window = int.from_bytes(
            array[word_lo:word_hi].tobytes(), "little")
        window >>= first - (word_lo << 6)
        window &= (1 << (last - first)) - 1
        return window
