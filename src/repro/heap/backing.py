"""Backing store for heap-sized numpy buffers: RAM or lazy memory maps.

The heap buffer and the mark bitmaps are the only allocations that
scale with the simulated heap, and at paper scale
(``PAPER_HEAP_SCALE``-sized runs) eagerly zeroing them dominates both
peak RSS and startup time.  :func:`allocate` hides the choice behind
the ``REPRO_HEAP_BACKEND`` environment variable:

* ``ram`` (the default) — ``np.zeros``, exactly the pre-existing
  behaviour; every page is committed up front.
* ``mmap`` — an ``np.memmap`` over an anonymous (already-unlinked)
  sparse temp file.  Pages materialize on first touch and read as
  zeros, so a 10–100x-scaled heap whose collectors only ever walk the
  populated prefix costs RSS proportional to the bytes actually
  touched, not the configured capacity.

Both backends hand back an ndarray (``np.memmap`` subclasses it) that
supports ``.view(np.uint64)``, in-place vector ops, and everything the
heap kernels do; collectors cannot tell them apart.  The temp file is
unlinked before the mapping is created, so the kernel reclaims the
blocks as soon as the array is garbage collected — nothing to clean up
even on a crash.
"""

from __future__ import annotations

import tempfile
from typing import Optional

import numpy as np

from repro.config import HEAP_BACKENDS, default_heap_backend
from repro.errors import ConfigError


def allocate(count: int, dtype=np.uint8,
             backend: Optional[str] = None) -> np.ndarray:
    """A zero-filled 1-D array of ``count`` items of ``dtype``.

    ``backend`` overrides the ``REPRO_HEAP_BACKEND`` environment
    variable (``ram`` or ``mmap``).  Raises :class:`ConfigError` on an
    unknown backend name.
    """
    if backend is None:
        backend = default_heap_backend()
    if backend not in HEAP_BACKENDS:
        raise ConfigError(
            f"unknown heap backend {backend!r}; expected one of "
            f"{', '.join(HEAP_BACKENDS)}")
    if backend == "ram" or count == 0:
        array = np.zeros(count, dtype=dtype)
    else:
        # TemporaryFile is unlinked at creation on POSIX; truncate
        # extends it sparsely, so untouched pages are never committed
        # and read back as zeros.  np.memmap dups the descriptor, so
        # the handle can close as soon as the mapping exists.
        n_bytes = count * np.dtype(dtype).itemsize
        with tempfile.TemporaryFile(prefix="repro-heap-") as handle:
            handle.truncate(n_bytes)
            array = np.memmap(handle, dtype=dtype, mode="r+",
                              shape=(count,))
    _record(backend, array.nbytes)
    return array


def _record(backend: str, nbytes: int) -> None:
    from repro.obs.metrics import global_metrics

    registry = global_metrics()
    registry.counter("heap.backing_allocations",
                     "heap-scale buffer allocations by backend",
                     backend=backend).add(1)
    registry.counter("heap.backing_bytes",
                     "bytes of heap-scale buffer capacity by backend",
                     backend=backend).add(float(nbytes))
