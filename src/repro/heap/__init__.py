"""A byte-addressed, HotSpot-like managed heap.

This is the functional substrate under the collectors: a real numpy
buffer holding real object headers, a generational layout (Eden, two
Survivor semispaces, Old), a card table remembering old-to-young
references, and begin/end mark bitmaps over the old generation.  The
collectors in :mod:`repro.gcalgo` mutate this heap for real — objects
are genuinely copied, promoted and compacted — while emitting the
primitive traces that the timing layer replays.
"""

from repro.heap.klass import KlassDescriptor, KlassKind, KlassTable
from repro.heap.object_model import MarkWord, ObjectView
from repro.heap.spaces import HeapLayout, Space
from repro.heap.card_table import CardTable
from repro.heap.mark_bitmap import MarkBitmaps
from repro.heap.heap import JavaHeap
from repro.heap.verifier import verify_heap, verify_space

__all__ = [
    "KlassDescriptor",
    "KlassKind",
    "KlassTable",
    "MarkWord",
    "ObjectView",
    "HeapLayout",
    "Space",
    "CardTable",
    "MarkBitmaps",
    "JavaHeap",
    "verify_heap",
    "verify_space",
]
