"""Class metadata (HotSpot "klass") descriptors.

HotSpot has 15 klass metadata kinds, each with its own object-iteration
strategy (Sec. 4.4).  Like Charon, we implement full iteration for the
dominant data kinds — ``instanceKlass``, ``objArrayKlass``,
``typeArrayKlass`` — and give the remaining metadata kinds an
instance-like layout, which is how they behave for GC purposes (a fixed
set of reference slots at known offsets).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.units import WORD

#: Object header: 8-byte mark word + 8-byte klass pointer.
HEADER_BYTES = 16
#: Arrays carry an extra 8-byte length slot after the header.
ARRAY_LENGTH_OFFSET = 16
ARRAY_ELEMENTS_OFFSET = 24


class KlassKind(enum.Enum):
    """The 15 klass metadata kinds of OpenJDK 7 HotSpot."""

    INSTANCE = "instanceKlass"
    INSTANCE_REF = "instanceRefKlass"
    INSTANCE_CLASS_LOADER = "instanceClassLoaderKlass"
    INSTANCE_MIRROR = "instanceMirrorKlass"
    OBJ_ARRAY = "objArrayKlass"
    TYPE_ARRAY = "typeArrayKlass"
    METHOD = "methodKlass"
    CONST_METHOD = "constMethodKlass"
    METHOD_DATA = "methodDataKlass"
    CONSTANT_POOL = "constantPoolKlass"
    CONSTANT_POOL_CACHE = "constantPoolCacheKlass"
    KLASS = "klassKlass"
    INSTANCE_KLASS_KLASS = "instanceKlassKlass"
    OBJ_ARRAY_KLASS_KLASS = "objArrayKlassKlass"
    TYPE_ARRAY_KLASS_KLASS = "typeArrayKlassKlass"

    @property
    def is_array(self) -> bool:
        return self in (KlassKind.OBJ_ARRAY, KlassKind.TYPE_ARRAY)

    @property
    def dominant(self) -> bool:
        """The "data class types" Charon's Scan&Push unit handles natively."""
        return self in (KlassKind.INSTANCE, KlassKind.OBJ_ARRAY,
                        KlassKind.TYPE_ARRAY)


@dataclass(frozen=True)
class KlassDescriptor:
    """Layout description for one class.

    For instance-like kinds, ``field_words`` is the number of 8-byte
    field slots after the header and ``ref_offsets`` lists the byte
    offsets (from the object start) of the reference-typed slots.  For
    arrays the element layout is implied by the kind.
    """

    klass_id: int
    name: str
    kind: KlassKind
    field_words: int = 0
    ref_offsets: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.klass_id <= 0:
            raise ConfigError("klass ids start at 1 (0 means free space)")
        if self.kind.is_array and self.field_words:
            raise ConfigError("array klasses have no fixed fields")
        for offset in self.ref_offsets:
            if offset < HEADER_BYTES or offset % WORD:
                raise ConfigError(
                    f"ref offset {offset} invalid for {self.name}")
            if offset >= HEADER_BYTES + self.field_words * WORD:
                raise ConfigError(
                    f"ref offset {offset} beyond fields of {self.name}")

    def instance_bytes(self, length: Optional[int] = None) -> int:
        """Total allocation size for an object of this klass.

        ``length`` is the element count (obj arrays) or payload byte
        count (type arrays); instance kinds ignore it.
        """
        if self.kind is KlassKind.OBJ_ARRAY:
            if length is None:
                raise ConfigError("obj array needs a length")
            return ARRAY_ELEMENTS_OFFSET + length * WORD
        if self.kind is KlassKind.TYPE_ARRAY:
            if length is None:
                raise ConfigError("type array needs a payload size")
            payload = (length + WORD - 1) // WORD * WORD
            return ARRAY_ELEMENTS_OFFSET + payload
        return HEADER_BYTES + self.field_words * WORD

    def reference_offsets(self, length: Optional[int] = None
                          ) -> Sequence[int]:
        """Byte offsets of every reference slot in an object."""
        if self.kind is KlassKind.OBJ_ARRAY:
            if length is None:
                raise ConfigError("obj array needs a length")
            return range(ARRAY_ELEMENTS_OFFSET,
                         ARRAY_ELEMENTS_OFFSET + length * WORD, WORD)
        if self.kind is KlassKind.TYPE_ARRAY:
            return ()
        return self.ref_offsets


class KlassTable:
    """Registry mapping klass ids to descriptors (the "metadata region")."""

    def __init__(self) -> None:
        self._by_id: Dict[int, KlassDescriptor] = {}
        self._by_name: Dict[str, KlassDescriptor] = {}
        self._next_id = 1
        #: bumped on every :meth:`define`; layout-table caches (the fast
        #: heap kernels) key on ``(table, version)`` to stay coherent.
        self.version = 0

    def define(self, name: str, kind: KlassKind, field_words: int = 0,
               ref_offsets: Sequence[int] = ()) -> KlassDescriptor:
        """Register a new klass and return its descriptor."""
        if name in self._by_name:
            raise ConfigError(f"klass {name!r} already defined")
        descriptor = KlassDescriptor(
            klass_id=self._next_id, name=name, kind=kind,
            field_words=field_words, ref_offsets=tuple(ref_offsets))
        self._by_id[descriptor.klass_id] = descriptor
        self._by_name[name] = descriptor
        self._next_id += 1
        self.version += 1
        return descriptor

    def define_instance(self, name: str, ref_fields: int,
                        prim_fields: int = 0) -> KlassDescriptor:
        """Convenience: an instance klass with refs first, then prims."""
        offsets = [HEADER_BYTES + i * WORD for i in range(ref_fields)]
        return self.define(name, KlassKind.INSTANCE,
                           field_words=ref_fields + prim_fields,
                           ref_offsets=offsets)

    def by_id(self, klass_id: int) -> KlassDescriptor:
        try:
            return self._by_id[klass_id]
        except KeyError:
            raise ConfigError(f"unknown klass id {klass_id}") from None

    def by_name(self, name: str) -> KlassDescriptor:
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigError(f"unknown klass {name!r}") from None

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self):
        return iter(self._by_id.values())


def standard_klass_table() -> KlassTable:
    """A table pre-populated with one klass per HotSpot kind.

    Workload generators add their own application klasses on top.
    """
    table = KlassTable()
    table.define("java/lang/Object", KlassKind.INSTANCE)
    table.define("objArray", KlassKind.OBJ_ARRAY)
    table.define("typeArray", KlassKind.TYPE_ARRAY)
    # Metadata kinds, given small instance-like layouts: a couple of
    # reference slots plus some payload, mirroring their GC footprint.
    for kind in KlassKind:
        if kind in (KlassKind.INSTANCE, KlassKind.OBJ_ARRAY,
                    KlassKind.TYPE_ARRAY):
            continue
        table.define(kind.value, kind, field_words=4,
                     ref_offsets=(HEADER_BYTES, HEADER_BYTES + WORD))
    return table
