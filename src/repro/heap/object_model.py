"""Object headers: mark word encoding and a decoded object view.

Layout (all offsets from the object's start address, which is 8-byte
aligned):

===========  =====================================================
offset 0     mark word (64-bit, encoding below)
offset 8     klass id (64-bit)
offset 16    instance fields / array length
offset 24    array elements (arrays only)
===========  =====================================================

Mark-word encoding (modelled on HotSpot's):

* bits [0:2] — state: ``0b01`` normal, ``0b11`` forwarded;
* bits [2:6] — GC age (survived MinorGC count);
* bit 6 — mark bit (live, set during MajorGC marking);
* bits [8:64) — when forwarded, the forwarding address shifted right
  by 3 (objects are 8-byte aligned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import InvalidObjectError
from repro.heap.klass import (ARRAY_LENGTH_OFFSET, KlassDescriptor, KlassKind,
                              KlassTable)
from repro.units import WORD

_STATE_MASK = 0b11
_STATE_NORMAL = 0b01
_STATE_FORWARDED = 0b11
_AGE_SHIFT = 2
_AGE_MASK = 0b1111 << _AGE_SHIFT
_MARK_BIT = 1 << 6
_FORWARD_SHIFT = 8
MAX_AGE = 15


@dataclass(frozen=True)
class MarkWord:
    """Immutable decoded mark word."""

    raw: int

    @staticmethod
    def fresh() -> "MarkWord":
        return MarkWord(_STATE_NORMAL)

    @property
    def is_forwarded(self) -> bool:
        return (self.raw & _STATE_MASK) == _STATE_FORWARDED

    @property
    def forwarding_address(self) -> int:
        if not self.is_forwarded:
            raise InvalidObjectError("mark word is not forwarded")
        return (self.raw >> _FORWARD_SHIFT) << 3

    @property
    def age(self) -> int:
        return (self.raw & _AGE_MASK) >> _AGE_SHIFT

    @property
    def is_marked(self) -> bool:
        return bool(self.raw & _MARK_BIT)

    def forwarded_to(self, addr: int) -> "MarkWord":
        if addr % 8:
            raise InvalidObjectError("forwarding target must be 8-aligned")
        return MarkWord(_STATE_FORWARDED | ((addr >> 3) << _FORWARD_SHIFT))

    def with_age(self, age: int) -> "MarkWord":
        if not 0 <= age <= MAX_AGE:
            raise InvalidObjectError(f"age {age} out of range")
        return MarkWord((self.raw & ~_AGE_MASK) | (age << _AGE_SHIFT))

    def aged(self) -> "MarkWord":
        return self.with_age(min(MAX_AGE, self.age + 1))

    def marked(self) -> "MarkWord":
        return MarkWord(self.raw | _MARK_BIT)

    def unmarked(self) -> "MarkWord":
        return MarkWord(self.raw & ~_MARK_BIT)


@dataclass
class ObjectView:
    """A decoded object: address, klass, and layout helpers.

    The view holds no field data — reads and writes go through the heap
    buffer — it just caches the decoded header so collectors don't
    re-parse it on every touch.
    """

    addr: int
    klass: KlassDescriptor
    length: Optional[int] = None  #: element/byte count for arrays

    @property
    def size_bytes(self) -> int:
        return self.klass.instance_bytes(self.length)

    @property
    def size_words(self) -> int:
        return self.size_bytes // WORD

    @property
    def end_addr(self) -> int:
        return self.addr + self.size_bytes

    def reference_slots(self) -> Sequence[int]:
        """Absolute addresses of this object's reference slots."""
        return [self.addr + off
                for off in self.klass.reference_offsets(self.length)]

    @property
    def is_array(self) -> bool:
        return self.klass.kind.is_array

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f", len={self.length}" if self.length is not None else ""
        return f"ObjectView({self.klass.name}@{self.addr:#x}{extra})"


def decode_object(read_u64, addr: int, klasses: KlassTable) -> ObjectView:
    """Decode the object at ``addr`` using a 64-bit read callback."""
    klass_id = read_u64(addr + 8)
    klass = klasses.by_id(klass_id)
    length: Optional[int] = None
    if klass.kind.is_array:
        length = read_u64(addr + ARRAY_LENGTH_OFFSET)
    return ObjectView(addr=addr, klass=klass, length=length)
