"""The managed heap facade.

:class:`JavaHeap` owns the backing numpy buffer, the generational
layout, the klass table, the card table and the mark bitmaps, and
provides the object-level operations collectors and mutators use:
allocation, header formatting, reference loads/stores (with the
old-to-young write barrier), and parseable-space iteration.

Everything is *real*: object headers are encoded in the buffer, copies
move actual bytes, and tests verify object contents survive collection
byte-for-byte.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

import numpy as np

from repro.config import HeapConfig
from repro.errors import ConfigError, InvalidObjectError, OutOfMemoryError
from repro.heap.backing import allocate
from repro.heap.card_table import CardTable
from repro.heap.klass import (ARRAY_LENGTH_OFFSET, HEADER_BYTES,
                              KlassDescriptor, KlassKind, KlassTable,
                              standard_klass_table)
from repro.heap.mark_bitmap import MarkBitmaps
from repro.heap.object_model import MarkWord, ObjectView
from repro.heap.spaces import HeapLayout, Space
from repro.units import WORD, align_up


class JavaHeap:
    """A generational heap with real object storage."""

    def __init__(self, config: Optional[HeapConfig] = None,
                 klasses: Optional[KlassTable] = None) -> None:
        self.config = config or HeapConfig()
        self.layout = HeapLayout(self.config)
        self.klasses = klasses or standard_klass_table()
        self.base = self.layout.heap_start
        size = self.layout.heap_end - self.layout.heap_start
        self.buffer = allocate(size, dtype=np.uint8)
        self._u64 = self.buffer.view(np.uint64)
        # Metadata regions sit above the heap in the virtual address
        # space (their *contents* live in dedicated structures; the
        # addresses are what the traffic models see).  The base is
        # huge-page aligned so the heap's huge-page mapping and the
        # metadata's finer pinned mapping never overlap.
        metadata_base = align_up(self.layout.heap_end, 1 << 20)
        old = self.layout.old
        self.card_table = CardTable(old.start, old.end,
                                    card_bytes=self.config.card_bytes,
                                    table_base=metadata_base)
        bitmap_base = align_up(metadata_base + self.card_table.num_cards,
                               4096)
        self.bitmaps = MarkBitmaps(self.layout.heap_start,
                                   self.layout.heap_end,
                                   bitmap_base=bitmap_base)
        #: the root set: object addresses reachable from outside the heap
        #: (stack slots, globals).  Collectors update entries in place.
        self.roots: List[int] = []
        #: pre-write barrier observers: each mutator reference store
        #: calls ``hook(slot_addr, old_value, new_value)`` *before* the
        #: store lands.  The concurrent-marking collector installs its
        #: SATB logging barrier here; the list is empty otherwise and
        #: the old value is only read while a hook is installed.
        self.ref_write_hooks: List[Callable[[int, int, int], None]] = []
        # Filler klasses keep swept/compacted spaces parseable (dead
        # ranges are overwritten with pseudo arrays/objects, as HotSpot
        # does).  The 16-byte header-only instance covers gaps too small
        # for an array filler.
        self.filler_klass = self.klasses.define(
            "fillerArray", KlassKind.TYPE_ARRAY)
        self.filler_object_klass = self.klasses.define(
            "fillerObject", KlassKind.INSTANCE)
        self.allocated_objects = 0
        self.allocated_bytes = 0

    # -- raw memory -------------------------------------------------------

    def _index(self, addr: int) -> int:
        offset = addr - self.base
        if not 0 <= offset < self.buffer.shape[0]:
            raise InvalidObjectError(f"address {addr:#x} outside heap")
        return offset

    def word_index(self, addr: int) -> int:
        """Index of ``addr`` into :attr:`words` (the u64 heap view)."""
        if addr % WORD:
            raise InvalidObjectError(f"unaligned word index at {addr:#x}")
        return self._index(addr) // WORD

    @property
    def words(self) -> np.ndarray:
        """The heap buffer as a u64 array (for the batched kernels)."""
        return self._u64

    def read_u64(self, addr: int) -> int:
        if addr % WORD:
            raise InvalidObjectError(f"unaligned u64 read at {addr:#x}")
        return int(self._u64[self._index(addr) // WORD])

    def write_u64(self, addr: int, value: int) -> None:
        if addr % WORD:
            raise InvalidObjectError(f"unaligned u64 write at {addr:#x}")
        self._u64[self._index(addr) // WORD] = np.uint64(value & (2**64 - 1))

    def read_bytes(self, addr: int, size: int) -> bytes:
        start = self._index(addr)
        return self.buffer[start:start + size].tobytes()

    def copy_bytes(self, src: int, dst: int, size: int) -> None:
        """The Copy primitive's functional effect (Fig. 7 lines 1-3)."""
        s, d = self._index(src), self._index(dst)
        self.buffer[d:d + size] = self.buffer[s:s + size]

    def move_bytes(self, src: int, dst: int, size: int) -> None:
        """Overlap-safe copy (compaction slides objects left)."""
        s, d = self._index(src), self._index(dst)
        self.buffer[d:d + size] = self.buffer[s:s + size].copy()

    def fill_bytes(self, addr: int, size: int, value: int = 0) -> None:
        start = self._index(addr)
        self.buffer[start:start + size] = value

    # -- object allocation --------------------------------------------------

    def allocate_raw(self, space: Space, size: int) -> int:
        """Bump-allocate ``size`` (rounded to 8) bytes in ``space``."""
        return space.allocate(align_up(size, WORD))

    def format_object(self, addr: int, klass: KlassDescriptor,
                      length: Optional[int] = None) -> ObjectView:
        """Write a fresh header (and zeroed body) at ``addr``."""
        view = ObjectView(addr=addr, klass=klass, length=length)
        self.fill_bytes(addr, view.size_bytes, 0)
        self.write_u64(addr, MarkWord.fresh().raw)
        self.write_u64(addr + 8, klass.klass_id)
        if klass.kind.is_array:
            self.write_u64(addr + ARRAY_LENGTH_OFFSET, length or 0)
        return view

    def format_object_run(self, start: int, count: int,
                          klass: KlassDescriptor,
                          length: Optional[int] = None) -> int:
        """Format ``count`` back-to-back objects of one shape at once.

        The run's bytes are zeroed with one slice store and the headers
        written with three strided stores — byte-identical to calling
        :meth:`format_object` ``count`` times over the same addresses.
        Returns the per-object size in bytes.
        """
        size = align_up(klass.instance_bytes(length), WORD)
        begin = self._index(start)
        self.buffer[begin:begin + size * count] = 0
        stride = size // WORD
        first = begin // WORD
        self._u64[first:first + stride * count:stride] = \
            np.uint64(MarkWord.fresh().raw)
        self._u64[first + 1:first + 1 + stride * count:stride] = \
            np.uint64(klass.klass_id)
        if klass.kind.is_array:
            self._u64[first + 2:first + 2 + stride * count:stride] = \
                np.uint64(length or 0)
        return size

    def new_object(self, klass_name: str, length: Optional[int] = None,
                   space: Optional[Space] = None) -> ObjectView:
        """Allocate and format a new object (in Eden by default).

        Raises :class:`OutOfMemoryError` when the space is full — the
        mutator is expected to trigger a MinorGC and retry.
        """
        klass = self.klasses.by_name(klass_name)
        target = space if space is not None else self.layout.eden
        size = align_up(klass.instance_bytes(length), WORD)
        addr = target.allocate(size)
        view = self.format_object(addr, klass, length)
        self.allocated_objects += 1
        self.allocated_bytes += size
        return view

    # -- header access ---------------------------------------------------------

    def mark_word(self, addr: int) -> MarkWord:
        return MarkWord(self.read_u64(addr))

    def set_mark_word(self, addr: int, mark: MarkWord) -> None:
        self.write_u64(addr, mark.raw)

    def object_at(self, addr: int) -> ObjectView:
        """Decode the object header at ``addr``.

        Follows no forwarding — callers resolve forwarding themselves.
        """
        klass_id = self.read_u64(addr + 8)
        if klass_id == 0:
            raise InvalidObjectError(f"no object at {addr:#x}")
        try:
            klass = self.klasses.by_id(klass_id)
        except ConfigError:
            raise InvalidObjectError(
                f"garbage klass id {klass_id:#x} at {addr:#x}") from None
        length: Optional[int] = None
        if klass.kind.is_array:
            length = self.read_u64(addr + ARRAY_LENGTH_OFFSET)
        return ObjectView(addr=addr, klass=klass, length=length)

    def object_size(self, addr: int) -> int:
        return self.object_at(addr).size_bytes

    # -- references --------------------------------------------------------------

    def load_ref(self, slot_addr: int) -> int:
        """Read a reference slot; 0 is null."""
        return self.read_u64(slot_addr)

    def store_ref(self, slot_addr: int, target: int) -> None:
        """Mutator reference store, with the generational write barrier.

        Storing a young-generation reference into an old-generation slot
        dirties the card holding the slot (Sec. 3.2).  Any installed
        :attr:`ref_write_hooks` (the SATB pre-write barrier) observe the
        overwritten value first.
        """
        if self.ref_write_hooks:
            old = self.read_u64(slot_addr)
            for hook in self.ref_write_hooks:
                hook(slot_addr, old, target)
        self.write_u64(slot_addr, target)
        if target and self.layout.in_old(slot_addr) \
                and self.layout.in_young(target):
            self.card_table.dirty(slot_addr)

    def set_field(self, view: ObjectView, ref_index: int,
                  target: int) -> None:
        """Store into the ``ref_index``-th reference slot of ``view``."""
        slots = view.reference_slots()
        if not 0 <= ref_index < len(slots):
            raise ConfigError(f"ref index {ref_index} out of range for "
                              f"{view.klass.name}")
        self.store_ref(slots[ref_index], target)

    def get_field(self, view: ObjectView, ref_index: int) -> int:
        slots = view.reference_slots()
        return self.load_ref(slots[ref_index])

    def array_store(self, array_addr: int, index: int,
                    target: int) -> None:
        """Store a reference into an objArray element (fast path)."""
        view = self.object_at(array_addr)
        if view.klass.kind is not KlassKind.OBJ_ARRAY:
            raise ConfigError("array_store targets objArrays")
        if not 0 <= index < (view.length or 0):
            raise ConfigError(f"array index {index} out of bounds")
        self.store_ref(array_addr + ARRAY_LENGTH_OFFSET + WORD
                       + index * WORD, target)

    def array_load(self, array_addr: int, index: int) -> int:
        """Load a reference from an objArray element (fast path)."""
        view = self.object_at(array_addr)
        if view.klass.kind is not KlassKind.OBJ_ARRAY:
            raise ConfigError("array_load targets objArrays")
        if not 0 <= index < (view.length or 0):
            raise ConfigError(f"array index {index} out of bounds")
        return self.load_ref(array_addr + ARRAY_LENGTH_OFFSET + WORD
                             + index * WORD)

    def references_of(self, view: ObjectView) -> List[int]:
        """Non-null reference targets of ``view``."""
        return [ref for slot in view.reference_slots()
                if (ref := self.load_ref(slot))]

    # -- payload (for content-preservation tests) ----------------------------------

    def write_payload(self, view: ObjectView, data: bytes) -> None:
        """Fill a type-array's payload with ``data``."""
        if view.klass.kind is not KlassKind.TYPE_ARRAY:
            raise ConfigError("payload writes target type arrays")
        if len(data) > (view.length or 0):
            raise ConfigError("payload larger than array")
        start = self._index(view.addr + ARRAY_LENGTH_OFFSET + WORD)
        self.buffer[start:start + len(data)] = np.frombuffer(
            bytes(data), dtype=np.uint8)

    def read_payload(self, view: ObjectView) -> bytes:
        if view.klass.kind is not KlassKind.TYPE_ARRAY:
            raise ConfigError("payload reads target type arrays")
        return self.read_bytes(view.addr + ARRAY_LENGTH_OFFSET + WORD,
                               view.length or 0)

    # -- space iteration --------------------------------------------------------------

    def iterate_space(self, space: Space) -> Iterator[ObjectView]:
        """Walk a parseable space from bottom to its allocation top."""
        cursor = space.start
        while cursor < space.top:
            view = self.object_at(cursor)
            yield view
            cursor = view.end_addr

    def fill_dead_range(self, start: int, end: int) -> None:
        """Overwrite ``[start, end)`` with filler objects.

        Dead ranges are always multiples of 8 and at least 16 bytes
        (the minimum object size); a 16-byte gap gets a header-only
        filler instance, anything larger a filler array.
        """
        size = end - start
        if size == 0:
            return
        if size % WORD or size < HEADER_BYTES:
            raise ConfigError(f"dead range {size} cannot be filled")
        self.fill_bytes(start, size, 0)
        if size == HEADER_BYTES:
            self.write_u64(start, MarkWord.fresh().raw)
            self.write_u64(start + 8, self.filler_object_klass.klass_id)
            return
        payload = size - (HEADER_BYTES + WORD)
        self.write_u64(start, MarkWord.fresh().raw)
        self.write_u64(start + 8, self.filler_klass.klass_id)
        self.write_u64(start + ARRAY_LENGTH_OFFSET, payload)

    def is_filler(self, view: ObjectView) -> bool:
        return view.klass.klass_id in (self.filler_klass.klass_id,
                                       self.filler_object_klass.klass_id)

    # -- summaries ----------------------------------------------------------------------

    def used_bytes(self) -> int:
        return sum(space.used for space in self.layout.spaces)

    def describe(self) -> str:
        parts = [f"{s.name}: {s.used}/{s.capacity}"
                 for s in self.layout.spaces]
        return ", ".join(parts)
