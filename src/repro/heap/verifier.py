"""Heap verification (HotSpot's ``-XX:+VerifyBeforeGC`` analogue).

:func:`verify_heap` walks every space and checks the structural
invariants the collectors rely on; it raises
:class:`~repro.errors.HeapError` with a precise description on the
first violation.  Collectors are fast because they *assume* these
invariants — the verifier exists so a corruption is caught at its
source rather than three collections later.

Checks:

* every space is parseable: decoded object sizes tile exactly
  ``[start, top)``;
* headers are well-formed: known klass ids, no forwarded mark words
  outside a collection, plausible array lengths;
* every reference slot holds null or the address of a decodable object
  head;
* the remembered-set invariant: an old-generation slot referencing a
  young object lies on a dirty card;
* the survivor semispaces are disjoint and the To space is *empty*
  outside a collection (the scavenger evacuates into To and swaps, so
  a populated To between collections means a swap was missed or an
  evacuation leaked);
* roots are null or valid object addresses;
* optionally (``strict_cards``) the *converse* card invariant: every
  dirty card covers at least one old-to-young reference.  This only
  holds right after a collection — a mutator that stores a young
  reference and later overwrites it legitimately leaves a stale dirty
  card — so it is opt-in for post-GC verification.
"""

from __future__ import annotations


from repro.errors import HeapError, InvalidObjectError
from repro.heap.heap import JavaHeap
from repro.heap.spaces import Space


def _check_object_head(heap: JavaHeap, addr: int, context: str) -> None:
    try:
        heap.object_at(addr)
    except (InvalidObjectError, Exception) as error:
        raise HeapError(
            f"{context}: {addr:#x} is not an object head "
            f"({error})") from error


def verify_space(heap: JavaHeap, space: Space,
                 allow_forwarded: bool = False,
                 check_refs: bool = True) -> int:
    """Verify one space; returns the number of objects walked.

    ``check_refs=False`` restricts the walk to parseability and header
    checks.  Reference targets are only meaningful for spaces that hold
    no dead objects: after a mark-compact or a sweep, *dead* young
    objects legitimately keep unadjusted references to old objects that
    moved (MajorGC pointer-adjusts only the live set, and the sweeper
    never touches the young generation at all), so their slots must not
    be dereferenced.
    """
    cursor = space.start
    count = 0
    while cursor < space.top:
        try:
            view = heap.object_at(cursor)
        except InvalidObjectError as error:
            raise HeapError(
                f"space {space.name!r} unparseable at {cursor:#x}: "
                f"{error}") from error
        if view.size_bytes <= 0 or view.size_bytes % 8:
            raise HeapError(
                f"object at {cursor:#x} has invalid size "
                f"{view.size_bytes}")
        if view.end_addr > space.top:
            raise HeapError(
                f"object at {cursor:#x} overruns {space.name!r} "
                f"(ends {view.end_addr:#x}, top {space.top:#x})")
        mark = heap.mark_word(cursor)
        if mark.is_forwarded and not allow_forwarded:
            raise HeapError(
                f"object at {cursor:#x} is forwarded outside a "
                "collection")
        for slot in (view.reference_slots() if check_refs else ()):
            target = heap.load_ref(slot)
            if target == 0:
                continue
            if heap.layout.space_of(target) is None:
                raise HeapError(
                    f"slot {slot:#x} of {cursor:#x} references "
                    f"{target:#x}, outside every space")
            _check_object_head(heap, target,
                               f"slot {slot:#x} of {cursor:#x}")
            if heap.layout.in_old(slot) \
                    and heap.layout.in_young(target) \
                    and not heap.card_table.is_dirty(slot):
                raise HeapError(
                    f"old slot {slot:#x} -> young {target:#x} "
                    "without a dirty card")
        cursor = view.end_addr
        count += 1
    if cursor != space.top:
        raise HeapError(
            f"space {space.name!r} walk ended at {cursor:#x}, "
            f"top is {space.top:#x}")
    return count


def verify_survivors(heap: JavaHeap) -> None:
    """Check survivor From/To disjointness and To-space emptiness.

    The semispaces are distinct address ranges by construction, but a
    collector bug (a missed swap, an evacuation that left objects
    behind) manifests as a non-empty To space between collections —
    exactly the state in which From and To would stop being disjoint
    at the *next* scavenge.
    """
    from_space = heap.layout.survivor_from
    to_space = heap.layout.survivor_to
    if from_space is to_space:
        raise HeapError("survivor From and To are the same space")
    if max(from_space.start, to_space.start) \
            < min(from_space.end, to_space.end):
        raise HeapError(
            f"survivor spaces overlap: {from_space!r} vs {to_space!r}")
    if to_space.used:
        raise HeapError(
            f"survivor To space {to_space.name!r} holds "
            f"{to_space.used} bytes outside a collection")


def verify_card_table_strict(heap: JavaHeap) -> None:
    """Check the converse remembered-set invariant: dirty => needed.

    Valid immediately after a collection, when the card table has been
    cleared and precisely re-dirtied (the scavenger re-dirties through
    the write barrier while updating promoted slots; mark-compact
    rebuilds the table from scratch after moving objects).
    """
    needed = set()
    for view in heap.iterate_space(heap.layout.old):
        if heap.is_filler(view):
            continue
        for slot in view.reference_slots():
            target = heap.load_ref(slot)
            if target and heap.layout.in_young(target):
                needed.add(heap.card_table.card_index(slot))
    dirty = set(int(i) for i in heap.card_table.dirty_card_indices())
    stale = sorted(dirty - needed)
    if stale:
        first = heap.card_table.card_range(stale[0])
        raise HeapError(
            f"{len(stale)} dirty card(s) cover no old->young "
            f"reference (first: card {stale[0]}, range "
            f"[{first[0]:#x}, {first[1]:#x}))")


def verify_heap(heap: JavaHeap, allow_forwarded: bool = False,
                strict_cards: bool = False,
                young_refs: bool = True) -> int:
    """Verify every space and the roots; returns total objects walked.

    ``allow_forwarded`` permits forwarding pointers (useful when
    verifying mid-collection states in tests) and skips the survivor
    To-emptiness check, which only holds between collections.
    ``strict_cards`` additionally requires every dirty card to cover an
    old-to-young reference (valid right after a collection).
    ``young_refs=False`` skips reference-target checks in the young
    spaces — required after a mark-compact or sweep, which leave dead
    young objects behind with stale references (see
    :func:`verify_space`); a scavenge empties the young generation of
    dead objects, so the full check is valid only after a MinorGC.
    """
    total = 0
    for space in heap.layout.spaces:
        total += verify_space(
            heap, space, allow_forwarded=allow_forwarded,
            check_refs=young_refs or not heap.layout.in_young(
                space.start))
    if not allow_forwarded:
        verify_survivors(heap)
    for index, root in enumerate(heap.roots):
        if root == 0:
            continue
        if heap.layout.space_of(root) is None:
            raise HeapError(
                f"root[{index}] = {root:#x} points outside the heap")
        _check_object_head(heap, root, f"root[{index}]")
    if strict_cards:
        verify_card_table_strict(heap)
    return total
