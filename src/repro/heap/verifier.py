"""Heap verification (HotSpot's ``-XX:+VerifyBeforeGC`` analogue).

:func:`verify_heap` walks every space and checks the structural
invariants the collectors rely on; it raises
:class:`~repro.errors.HeapError` with a precise description on the
first violation.  Collectors are fast because they *assume* these
invariants — the verifier exists so a corruption is caught at its
source rather than three collections later.

Checks:

* every space is parseable: decoded object sizes tile exactly
  ``[start, top)``;
* headers are well-formed: known klass ids, no forwarded mark words
  outside a collection, plausible array lengths;
* every reference slot holds null or the address of a decodable object
  head;
* the remembered-set invariant: an old-generation slot referencing a
  young object lies on a dirty card;
* roots are null or valid object addresses.
"""

from __future__ import annotations


from repro.errors import HeapError, InvalidObjectError
from repro.heap.heap import JavaHeap
from repro.heap.spaces import Space


def _check_object_head(heap: JavaHeap, addr: int, context: str) -> None:
    try:
        heap.object_at(addr)
    except (InvalidObjectError, Exception) as error:
        raise HeapError(
            f"{context}: {addr:#x} is not an object head "
            f"({error})") from error


def verify_space(heap: JavaHeap, space: Space,
                 allow_forwarded: bool = False) -> int:
    """Verify one space; returns the number of objects walked."""
    cursor = space.start
    count = 0
    while cursor < space.top:
        try:
            view = heap.object_at(cursor)
        except InvalidObjectError as error:
            raise HeapError(
                f"space {space.name!r} unparseable at {cursor:#x}: "
                f"{error}") from error
        if view.size_bytes <= 0 or view.size_bytes % 8:
            raise HeapError(
                f"object at {cursor:#x} has invalid size "
                f"{view.size_bytes}")
        if view.end_addr > space.top:
            raise HeapError(
                f"object at {cursor:#x} overruns {space.name!r} "
                f"(ends {view.end_addr:#x}, top {space.top:#x})")
        mark = heap.mark_word(cursor)
        if mark.is_forwarded and not allow_forwarded:
            raise HeapError(
                f"object at {cursor:#x} is forwarded outside a "
                "collection")
        for slot in view.reference_slots():
            target = heap.load_ref(slot)
            if target == 0:
                continue
            if heap.layout.space_of(target) is None:
                raise HeapError(
                    f"slot {slot:#x} of {cursor:#x} references "
                    f"{target:#x}, outside every space")
            _check_object_head(heap, target,
                               f"slot {slot:#x} of {cursor:#x}")
            if heap.layout.in_old(slot) \
                    and heap.layout.in_young(target) \
                    and not heap.card_table.is_dirty(slot):
                raise HeapError(
                    f"old slot {slot:#x} -> young {target:#x} "
                    "without a dirty card")
        cursor = view.end_addr
        count += 1
    if cursor != space.top:
        raise HeapError(
            f"space {space.name!r} walk ended at {cursor:#x}, "
            f"top is {space.top:#x}")
    return count


def verify_heap(heap: JavaHeap, allow_forwarded: bool = False) -> int:
    """Verify every space and the roots; returns total objects walked.

    ``allow_forwarded`` permits forwarding pointers (useful when
    verifying mid-collection states in tests).
    """
    total = 0
    for space in heap.layout.spaces:
        total += verify_space(heap, space,
                              allow_forwarded=allow_forwarded)
    for index, root in enumerate(heap.roots):
        if root == 0:
            continue
        if heap.layout.space_of(root) is None:
            raise HeapError(
                f"root[{index}] = {root:#x} points outside the heap")
        _check_object_head(heap, root, f"root[{index}]")
    return total
