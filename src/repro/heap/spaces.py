"""Heap spaces and the generational layout (Fig. 1).

The heap splits into a Young generation — Eden plus two Survivor
semispaces (From/To) — and an Old generation, at the HotSpot default
ratios (Young:Old = 1:2, Eden:Survivor = 8:1:1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import HeapConfig
from repro.errors import ConfigError, OutOfMemoryError
from repro.units import align_down


class Space:
    """A contiguous region with bump-pointer allocation."""

    def __init__(self, name: str, start: int, end: int) -> None:
        if end <= start:
            raise ConfigError(f"space {name!r} is empty")
        if start % 8 or end % 8:
            raise ConfigError(f"space {name!r} must be 8-byte aligned")
        self.name = name
        self.start = start
        self.end = end
        self.top = start

    @property
    def capacity(self) -> int:
        return self.end - self.start

    @property
    def used(self) -> int:
        return self.top - self.start

    @property
    def free(self) -> int:
        return self.end - self.top

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def can_allocate(self, size: int) -> bool:
        return self.top + size <= self.end

    def allocate(self, size: int) -> int:
        """Bump-allocate ``size`` bytes; raises OutOfMemoryError when full."""
        if size <= 0 or size % 8:
            raise ConfigError(f"allocation size {size} must be a positive "
                              "multiple of 8")
        if not self.can_allocate(size):
            raise OutOfMemoryError(
                f"space {self.name!r} cannot fit {size} bytes "
                f"({self.free} free)")
        addr = self.top
        self.top += size
        return addr

    def allocate_many(self, size: int, count: int) -> int:
        """Reserve ``count`` back-to-back objects of ``size`` bytes.

        One bump covers the whole run — the addresses are exactly what
        ``count`` successive :meth:`allocate` calls would have returned.
        """
        if count <= 0:
            raise ConfigError(f"allocation count {count} must be positive")
        return self.allocate(size * count)

    def fits_count(self, size: int) -> int:
        """How many ``size``-byte objects the free tail can hold."""
        return self.free // size if size > 0 else 0

    def reset(self) -> None:
        """Empty the space (MinorGC clears Eden and From)."""
        self.top = self.start

    def occupancy(self) -> float:
        return self.used / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Space({self.name!r}, [{self.start:#x}, {self.end:#x}), "
                f"used={self.used})")


@dataclass
class HeapLayout:
    """Eden / Survivor(From) / Survivor(To) / Old carved from one range."""

    config: HeapConfig
    eden: Space = field(init=False)
    survivor_a: Space = field(init=False)
    survivor_b: Space = field(init=False)
    old: Space = field(init=False)

    def __post_init__(self) -> None:
        cfg = self.config
        base = cfg.base_address
        young = align_down(cfg.young_bytes, 1024)
        survivor = align_down(young // (cfg.survivor_ratio + 2), 1024)
        eden = young - 2 * survivor
        if survivor < 1024 or eden < 1024:
            raise ConfigError("heap too small for the generational split")
        cursor = base
        self.eden = Space("eden", cursor, cursor + eden)
        cursor += eden
        self.survivor_a = Space("survivor-a", cursor, cursor + survivor)
        cursor += survivor
        self.survivor_b = Space("survivor-b", cursor, cursor + survivor)
        cursor += survivor
        old_end = base + align_down(cfg.heap_bytes, 1024)
        self.old = Space("old", cursor, old_end)
        # From/To designation flips at every MinorGC (Fig. 1 step 2).
        self._from_is_a = True

    # -- survivor semispace roles ------------------------------------------

    @property
    def survivor_from(self) -> Space:
        return self.survivor_a if self._from_is_a else self.survivor_b

    @property
    def survivor_to(self) -> Space:
        return self.survivor_b if self._from_is_a else self.survivor_a

    def swap_survivors(self) -> None:
        """Designate the current From space as To and vice versa."""
        self._from_is_a = not self._from_is_a

    # -- classification -----------------------------------------------------

    @property
    def spaces(self) -> List[Space]:
        return [self.eden, self.survivor_a, self.survivor_b, self.old]

    @property
    def heap_start(self) -> int:
        return self.eden.start

    @property
    def heap_end(self) -> int:
        return self.old.end

    def in_young(self, addr: int) -> bool:
        return self.eden.start <= addr < self.survivor_b.end

    def in_old(self, addr: int) -> bool:
        return self.old.contains(addr)

    def space_of(self, addr: int) -> Optional[Space]:
        for space in self.spaces:
            if space.contains(addr):
                return space
        return None
