"""Card table: the old-to-young remembered set.

HotSpot divides the old generation into 512-byte *cards*, each summarised
by one byte.  A mutator store of a young-generation reference into an old
object dirties the card holding the updated slot.  At MinorGC start the
collector *Search*es the card table for dirty cards (Fig. 3a) and scans
the objects on them, so young objects reachable only from the old
generation still get traced.

``CLEAN`` is 0xFF in HotSpot (hence the ``*i != -1`` comparison in the
paper's Fig. 7 Search pseudocode); we keep the same convention so the
Search primitive's early-exit comparison is byte-identical.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import ConfigError

CLEAN = 0xFF
DIRTY = 0x00


class CardTable:
    """One byte per ``card_bytes`` of the covered range."""

    def __init__(self, covered_start: int, covered_end: int,
                 card_bytes: int = 512, table_base: int = 0) -> None:
        if covered_end <= covered_start:
            raise ConfigError("card table covers an empty range")
        if card_bytes <= 0 or card_bytes & (card_bytes - 1):
            raise ConfigError("card size must be a power of two")
        self.covered_start = covered_start
        self.covered_end = covered_end
        self.card_bytes = card_bytes
        #: virtual address where the table itself lives (for traffic
        #: modelling of the Search primitive).
        self.table_base = table_base
        n_cards = -(-(covered_end - covered_start) // card_bytes)
        self.bytes = np.full(n_cards, CLEAN, dtype=np.uint8)

    @property
    def num_cards(self) -> int:
        return int(self.bytes.shape[0])

    def card_index(self, addr: int) -> int:
        if not self.covered_start <= addr < self.covered_end:
            raise ConfigError(f"address {addr:#x} outside covered range")
        return (addr - self.covered_start) // self.card_bytes

    def card_range(self, index: int) -> Tuple[int, int]:
        """Covered [start, end) addresses of card ``index``."""
        start = self.covered_start + index * self.card_bytes
        return start, min(start + self.card_bytes, self.covered_end)

    def dirty(self, addr: int) -> None:
        """Mark the card containing ``addr`` dirty (mutator write barrier)."""
        self.bytes[self.card_index(addr)] = DIRTY

    def is_dirty(self, addr: int) -> bool:
        return self.bytes[self.card_index(addr)] == DIRTY

    def clear(self) -> None:
        self.bytes[:] = CLEAN

    def clear_card(self, index: int) -> None:
        self.bytes[index] = CLEAN

    def dirty_slots(self, slot_addrs: np.ndarray) -> None:
        """Dirty the cards of a batch of slot addresses at once.

        Equivalent to calling :meth:`dirty` per address (duplicates are
        fine — the store is idempotent); used by the vectorized
        card-rebuild kernels.
        """
        if len(slot_addrs) == 0:
            return
        indices = (slot_addrs - self.covered_start) // self.card_bytes
        self.bytes[indices] = DIRTY

    def dirty_card_indices(self) -> np.ndarray:
        return np.flatnonzero(self.bytes != CLEAN)

    def dirty_runs(self) -> Iterator[Tuple[int, int]]:
        """Maximal runs of consecutive dirty cards as (first, last+1)."""
        indices = self.dirty_card_indices()
        if indices.size == 0:
            return iter(())
        breaks = np.flatnonzero(np.diff(indices) > 1)
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [indices.size - 1]))
        return iter([(int(indices[s]), int(indices[e]) + 1)
                     for s, e in zip(starts, ends)])

    def search_blocks(self, block_cards: int = 64
                      ) -> List[Tuple[int, int, bool]]:
        """The Search primitive's scan pattern over the table.

        The table is examined in fixed blocks (the paper's Fig. 7 scans
        ``block_size`` strides looking for any non-clean byte).  Returns
        ``(table_addr, n_cards, found_dirty)`` per block, which the trace
        records as Search events.
        """
        blocks = []
        for start in range(0, self.num_cards, block_cards):
            end = min(start + block_cards, self.num_cards)
            found = bool(np.any(self.bytes[start:end] != CLEAN))
            blocks.append((self.table_base + start, end - start, found))
        return blocks
