"""Charon reproduction: a near-memory GC accelerator and its world.

This package reproduces *Charon: Specialized Near-Memory Processing
Architecture for Clearing Dead Objects in Memory* (Jang et al.,
MICRO-52, 2019) as a self-contained Python system:

* :mod:`repro.heap` + :mod:`repro.gcalgo` - a functional HotSpot-like
  managed heap with ParallelScavenge-style Minor/Major collectors that
  emit primitive traces;
* :mod:`repro.core` - the Charon device: Copy/Search, Bitmap Count and
  Scan&Push units in the HMC logic layer, with MAI, accelerator TLB
  and bitmap cache;
* :mod:`repro.mem`, :mod:`repro.cpu`, :mod:`repro.sim` - the
  cycle-approximate platform models (DDR4, HMC, OoO host);
* :mod:`repro.platform` - trace replay across the five evaluation
  platforms;
* :mod:`repro.workloads` - the six Table 3 applications, scaled;
* :mod:`repro.experiments` - one generator per results table/figure.

Quickstart::

    from repro import (JavaHeap, MinorGC, build_platform, TraceReplayer,
                       default_config)

    config = default_config()
    heap = JavaHeap(config.heap)
    obj = heap.new_object("typeArray", length=1024)
    heap.roots.append(obj.addr)
    trace = MinorGC(heap).collect()
    platform = build_platform("charon", config, heap)
    result = TraceReplayer(platform).replay(trace)
    print(result.wall_seconds)
"""

from repro.config import SystemConfig, default_config, scaled_heap_bytes
from repro.core import CharonDevice, CharonRuntime
from repro.errors import (ConfigError, OutOfMemoryError, ProtectionFault,
                          ReproError)
from repro.gcalgo import (G1Collector, GCTrace, MajorGC, MarkSweepGC,
                          MinorGC, Primitive)
from repro.heap import JavaHeap
from repro.platform import (GCTimingResult, PLATFORM_NAMES,
                            TraceReplayer, build_platform)
from repro.workloads import WORKLOAD_NAMES, run_workload

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "default_config",
    "scaled_heap_bytes",
    "CharonDevice",
    "CharonRuntime",
    "ReproError",
    "ConfigError",
    "OutOfMemoryError",
    "ProtectionFault",
    "GCTrace",
    "Primitive",
    "MinorGC",
    "MajorGC",
    "MarkSweepGC",
    "G1Collector",
    "JavaHeap",
    "GCTimingResult",
    "PLATFORM_NAMES",
    "TraceReplayer",
    "build_platform",
    "WORKLOAD_NAMES",
    "run_workload",
]
