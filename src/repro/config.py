"""System configuration (the paper's Table 2, plus model constants).

Every architectural parameter the paper reports is encoded here as a
dataclass field with its provenance.  Model-only constants (anything the
paper does not state directly, such as per-primitive instruction costs on
the host) are grouped in :class:`CostModelConfig` and documented with the
reasoning used to choose them.
"""

from __future__ import annotations

import os

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.units import GB, KB, MB, NS, gb_per_s


@dataclass(frozen=True)
class HostCoreConfig:
    """8 x 2.67 GHz Westmere-class OoO cores (Table 2)."""

    num_cores: int = 8
    freq_hz: float = 2.67e9
    issue_width: int = 4
    instruction_window: int = 36  # 36-entry IW (Table 2)
    rob_entries: int = 128
    # Table 2 lists L1 "64-entry per core" and shared L2 "1024-entry" MSHR
    # style entries for zsim; what bounds memory-level parallelism on a
    # real core is the number of outstanding L1 misses (MSHRs).  Westmere
    # supports 10 line-fill buffers per core.
    mshrs_per_core: int = 10
    # Average IPC of GC code on a modern Xeon observed in the paper
    # (Sec. 1: "average IPC ... below 0.5").  Used to cost the
    # non-memory-bound instruction stream of each primitive.
    gc_ipc: float = 0.5


@dataclass(frozen=True)
class CacheLevelConfig:
    """One cache level of the host hierarchy."""

    size_bytes: int
    ways: int
    latency_cycles: int
    line_bytes: int = 64


@dataclass(frozen=True)
class HostCacheConfig:
    """L1I/D 32KB, L2 256KB, shared L3 8MB (Table 2)."""

    l1d: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(32 * KB, 8, 4))
    l1i: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(32 * KB, 4, 3))
    l2: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(256 * KB, 8, 12))
    l3: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(8 * MB, 16, 28))


@dataclass(frozen=True)
class DDR4Config:
    """32GB, 2 channels, 34 GB/s aggregate, 35 pJ/bit (Table 2)."""

    capacity_bytes: int = 32 * GB
    channels: int = 2
    ranks_per_channel: int = 4
    banks_per_rank: int = 8
    bandwidth_per_channel: float = gb_per_s(17.0)
    tck_s: float = 0.937 * NS
    tras_s: float = 35.0 * NS
    trcd_s: float = 13.50 * NS
    tcas_s: float = 13.50 * NS
    twr_s: float = 15.0 * NS
    trp_s: float = 13.50 * NS
    energy_pj_per_bit: float = 35.0
    # Queueing/controller overhead on top of the device access time
    # (loaded round-trip latency of a Westmere-class system is in the
    # 70-100 ns range; tRCD+tCAS alone understate it).
    controller_latency_s: float = 40.0 * NS

    @property
    def total_bandwidth(self) -> float:
        return self.bandwidth_per_channel * self.channels

    @property
    def access_latency_s(self) -> float:
        """Row-activate + CAS + controller (closed-page approximation)."""
        return self.trcd_s + self.tcas_s + self.controller_latency_s


@dataclass(frozen=True)
class HMCConfig:
    """32GB, 4 cubes, 32 vaults/cube, 320 GB/s internal per cube,
    80 GB/s per external link with 3 ns latency (Table 2)."""

    capacity_bytes: int = 32 * GB
    cubes: int = 4
    vaults_per_cube: int = 32
    internal_bandwidth_per_cube: float = gb_per_s(320.0)
    link_bandwidth: float = gb_per_s(80.0)
    link_latency_s: float = 3.0 * NS
    tck_s: float = 1.6 * NS
    tras_s: float = 22.4 * NS
    trcd_s: float = 11.2 * NS
    tcas_s: float = 11.2 * NS
    twr_s: float = 14.4 * NS
    trp_s: float = 11.2 * NS
    energy_pj_per_bit: float = 21.0
    # Vault-controller + TSV overhead.  Kept tight (total vault round
    # trip ~34 ns): the 32-entry MAI holds 8 KB in flight, which covers
    # latency x bandwidth (34 ns x 320 GB/s ~ 11 KB) closely enough for
    # the streaming units to approach the internal bandwidth, as the
    # paper's design intends.
    controller_latency_s: float = 12.0 * NS
    central_cube: int = 0  # the cube wired to the host (Fig. 5a)
    # Inter-cube topology.  The paper evaluates a star around the
    # central cube and cites bandwidth-scalable alternatives ([71],
    # Sec. 4.6/5.2) as future work; "fully-connected" gives every cube
    # pair a direct link so spoke-to-spoke traffic takes one hop and
    # stops contending at the centre.
    topology: str = "star"  # "star" | "fully-connected"

    @property
    def capacity_per_cube(self) -> int:
        return self.capacity_bytes // self.cubes

    @property
    def vault_bandwidth(self) -> float:
        return self.internal_bandwidth_per_cube / self.vaults_per_cube

    @property
    def access_latency_s(self) -> float:
        return self.trcd_s + self.tcas_s + self.controller_latency_s


@dataclass(frozen=True)
class CharonConfig:
    """Charon device configuration (Table 2, 'Charon Configuration')."""

    copy_search_units: int = 8  # 2 per cube
    bitmap_count_units: int = 8  # 2 per cube
    scan_push_units: int = 8  # 8 on the central cube
    unit_freq_hz: float = 1.0e9  # logic-layer clock; one request per cycle
    request_granularity: int = 256  # max HMC access granularity (Sec. 4.2)
    bitmap_cache_bytes: int = 8 * KB
    bitmap_cache_ways: int = 8
    bitmap_cache_line: int = 32
    mai_entries_per_cube: int = 32  # request buffer, Table 2
    tlb_entries_per_cube: int = 32
    command_queue_depth: int = 16
    request_packet_bytes: int = 48  # Sec. 4.1
    response_packet_bytes: int = 32  # with a return value
    response_packet_bytes_noval: int = 16
    # 'distributed' slices the bitmap cache and TLB per cube (Sec. 4.6,
    # Fig. 15); 'unified' keeps single shared structures on the central
    # cube.
    distributed: bool = False
    # Ablation knobs (not part of the paper's proposed design):
    # disable the Sec. 4.5 bitmap cache so every bitmap access pays the
    # vault round trip...
    bitmap_cache_enabled: bool = True
    # ...or schedule Scan&Push to the scanned object's cube instead of
    # the central cube (the placement the paper argues *against* in
    # Sec. 4.4 because referee loads scatter anyway).
    scan_push_local: bool = False


@dataclass(frozen=True)
class HeapConfig:
    """Managed-heap geometry (HotSpot defaults used in the paper)."""

    heap_bytes: int = 16 * MB
    # Default HotSpot sizing policy: Young:Old = 1:2 (Sec. 5.1).
    young_fraction: float = 1.0 / 3.0
    # Default SurvivorRatio=8 -> Eden:Survivor:Survivor = 8:1:1.
    survivor_ratio: int = 8
    # Objects are promoted after surviving this many MinorGCs
    # (MaxTenuringThreshold; HotSpot adapts it, we keep a fixed value).
    tenuring_threshold: int = 4
    base_address: int = 0x1000_0000
    card_bytes: int = 512  # HotSpot card size
    alignment: int = 8

    @property
    def young_bytes(self) -> int:
        return int(self.heap_bytes * self.young_fraction) // 8 * 8

    @property
    def old_bytes(self) -> int:
        return self.heap_bytes - self.young_bytes


@dataclass(frozen=True)
class VMConfig:
    """Virtual-memory configuration (Sec. 4.6).

    The paper pins 1 GB huge pages over a multi-GB heap; we keep the
    same page:heap ratio at our scaled heap sizes.
    """

    huge_page_bytes: int = 1 * MB
    small_page_bytes: int = 4 * KB
    # GC metadata (card table, mark bitmaps) pins on finer pages: at
    # paper scale the metadata alone spans many 1 GB pages and thus
    # interleaves over cubes, so the scaled system stripes it too.
    metadata_page_bytes: int = 16 * KB


@dataclass(frozen=True)
class CostModelConfig:
    """Constants the paper implies but does not tabulate.

    These govern host-side primitive costs.  Each is chosen so the
    published per-primitive speedups (Fig. 14) and platform ordering
    (Fig. 12) emerge from the model rather than being hard-coded.
    """

    # Instructions retired per reference slot scanned by the software
    # Scan&Push loop (load, null/mark check, push or card update).
    scan_push_instructions_per_ref: float = 28.0
    # Instructions per byte for the software copy loop (word-at-a-time
    # rep-movs style copy, amortized).
    copy_instructions_per_byte: float = 0.25
    # Fixed per-object copy bookkeeping in the scavenger: claim the
    # object (CAS on the mark word), bump-allocate the destination,
    # install the forwarding pointer, re-derive the copy's header.
    copy_object_overhead_instructions: float = 40.0
    # Instructions per card inspected by the software Search loop.
    # The Fig. 7 inner comparison is ~4 instructions, but HotSpot's
    # card scanning also maintains the block-offset cursor and stripe
    # bounds per card examined.
    search_instructions_per_card: float = 10.0
    # The naive live_words_in_range iterates *bits* (Fig. 8): several
    # instructions per bitmap bit examined.
    bitmap_instructions_per_bit: float = 4.0
    # Residual (non-offloaded) GC work: pop, allocate, check-mark,
    # linked-list traversal... per trace-reported residual instruction.
    residual_cpi: float = 2.0
    # Host cache hit fractions per primitive stream.  Copy streams large
    # regions with no reuse; Search touches the compact card table with
    # decent locality; Scan&Push is pointer chasing over a huge heap;
    # the software bitmap loop enjoys the LLC for the (small) bitmap.
    copy_hit_fraction: float = 0.05
    search_hit_fraction: float = 0.60
    # Scan&Push locality is phase-dependent: in MinorGC the scanned
    # object was *just copied* by this thread (hot in its L1/L2), so
    # only the referee probes miss; in the MajorGC marking phase the
    # popped object is cold too.
    scan_push_hit_minor: float = 0.50
    scan_push_hit_major: float = 0.10
    bitmap_hit_fraction: float = 0.85
    residual_hit_fraction: float = 0.70
    # Average L2/L3 hit service latency (seconds) charged to cache hits.
    cache_hit_latency_s: float = 10.0e-9
    # Charon-side constants.
    charon_dispatch_overhead_s: float = 20.0e-9  # intrinsic call + queue
    scan_push_dependent_ops: int = 2  # mark/push accesses per reference
    # Host power proxy (McPAT stand-in): Westmere-class 8-core package.
    host_active_power_w: float = 95.0
    host_idle_power_w: float = 25.0  # host blocked while Charon runs
    charon_avg_power_w: float = 2.98  # Sec. 5.3 measured average
    # Per-unit active power and device static floor, chosen so the
    # workload-average device power lands near the paper's 2.98 W.
    charon_unit_active_power_w: float = 1.2
    charon_static_power_w: float = 0.5
    # Dirty LLC footprint drained at GC start before offloading
    # (Sec. 4.6).  The paper flushes a 24 MB LLC against multi-GB heaps
    # (~0.1% of a GC); our heaps are scaled by ~256x, so the flushed
    # footprint scales identically to preserve the flush:GC ratio.
    llc_flush_bytes: int = 32 * KB


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for the differential GC fuzzer (:mod:`repro.fuzz`).

    The defaults are sized so a schedule exercises every interesting
    heap mechanism — survivor aging, promotion, humongous allocation,
    cross-generational edges, cycles — while staying comfortably inside
    an 8 MB heap under *all four* collector modes (the worst case is
    G1's humongous path, which needs contiguous free regions).
    """

    heap_bytes: int = 8 * MB
    #: root-table slots the schedule mutates (the fuzzer's "locals").
    slots: int = 48
    #: operations per generated schedule.
    ops: int = 160
    #: soft cap on slot-held live bytes; above it the generator skews
    #: towards releases so schedules never exhaust the old generation.
    live_byte_budget: int = 768 * KB
    #: payload size of a "large" type array.  Chosen above Eden/4 at the
    #: default heap so the driver's humongous path (straight-to-Old)
    #: triggers, and below ~10 G1 regions so the humongous region
    #: search still succeeds.
    large_object_bytes: int = 600_000
    #: at most this many large objects live at once.
    max_live_large: int = 1
    #: objArray lengths are drawn from [1, max_array_refs].
    max_array_refs: int = 24
    #: typeArray payloads are drawn from [1, max_payload_bytes].
    max_payload_bytes: int = 256
    #: probability an op is an explicit collection.
    gc_probability: float = 0.05
    #: probability an op is a ``mark_step`` — one bounded increment of
    #: the concurrent collector's marking, interleaved mid-schedule.
    #: Stop-the-world backends treat it as a no-op, so the same
    #: schedule stays valid (and shrinkable) under every collector.
    mark_step_probability: float = 0.08
    #: objects one fuzz ``mark_step`` scans before yielding.  Kept
    #: well below the typical fuzz live set (~30 objects) so marking
    #: stays *incremental*: most of the graph is still unscanned when
    #: the mutation ops between pauses run, which is the window the
    #: hidden-pointer (``move`` + ``unlink``) races need.  At 24 a
    #: single pause swallowed the whole graph and a collector with its
    #: write barrier deleted outright still fuzzed clean.
    mark_step_budget: int = 6
    #: collector modes the differential runner cross-checks.
    collectors: Tuple[str, ...] = ("minor", "major", "sweep", "g1",
                                   "concurrent")
    #: greedy passes of the schedule shrinker after prefix bisection.
    shrink_rounds: int = 4

    def validate(self) -> None:
        if self.slots < 2:
            raise ConfigError("fuzzer needs at least 2 root slots")
        if self.ops < 1:
            raise ConfigError("fuzz schedules need at least one op")
        if self.live_byte_budget >= self.heap_bytes:
            raise ConfigError("live-byte budget must be below the heap "
                              "size")
        if not 0 <= self.gc_probability + self.mark_step_probability \
                <= 0.19:
            raise ConfigError("gc + mark_step probability must leave "
                              "room for the other op classes")
        if self.mark_step_budget < 1:
            raise ConfigError("mark_step budget must be positive")
        for name in self.collectors:
            if name not in ("minor", "major", "sweep", "g1",
                            "concurrent"):
                raise ConfigError(f"unknown fuzz collector {name!r}")

    def with_heap_bytes(self, heap_bytes: int) -> "FuzzConfig":
        return replace(self, heap_bytes=heap_bytes)

    def with_ops(self, ops: int) -> "FuzzConfig":
        return replace(self, ops=ops)


def default_fuzz_config() -> FuzzConfig:
    config = FuzzConfig()
    config.validate()
    return config


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration bundle."""

    host: HostCoreConfig = field(default_factory=HostCoreConfig)
    caches: HostCacheConfig = field(default_factory=HostCacheConfig)
    ddr4: DDR4Config = field(default_factory=DDR4Config)
    hmc: HMCConfig = field(default_factory=HMCConfig)
    charon: CharonConfig = field(default_factory=CharonConfig)
    heap: HeapConfig = field(default_factory=HeapConfig)
    vm: VMConfig = field(default_factory=VMConfig)
    costs: CostModelConfig = field(default_factory=CostModelConfig)
    gc_threads: int = 8

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent parameters."""
        if self.gc_threads < 1:
            raise ConfigError("gc_threads must be >= 1")
        if self.heap.heap_bytes <= 0:
            raise ConfigError("heap size must be positive")
        if self.heap.young_bytes <= 0 or self.heap.old_bytes <= 0:
            raise ConfigError("young/old split leaves an empty generation")
        survivor = self.heap.young_bytes // (self.heap.survivor_ratio + 2)
        if survivor < 4 * KB:
            raise ConfigError(
                f"survivor space too small ({survivor} bytes); "
                "increase heap size")
        if self.hmc.cubes < 1:
            raise ConfigError("need at least one HMC cube")
        if not 0 <= self.hmc.central_cube < self.hmc.cubes:
            raise ConfigError("central cube index out of range")
        if self.charon.copy_search_units % self.hmc.cubes:
            raise ConfigError("copy/search units must divide evenly by cube")
        for name in ("copy_hit_fraction", "search_hit_fraction",
                     "scan_push_hit_minor", "scan_push_hit_major",
                     "bitmap_hit_fraction", "residual_hit_fraction"):
            value = getattr(self.costs, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be within [0, 1]")

    def with_heap_bytes(self, heap_bytes: int) -> "SystemConfig":
        """A copy of this configuration with a different heap size."""
        return replace(self, heap=replace(self.heap, heap_bytes=heap_bytes))

    def with_gc_threads(self, gc_threads: int) -> "SystemConfig":
        """A copy with a different GC thread count (Fig. 15 sweeps)."""
        return replace(self, gc_threads=gc_threads)

    def with_distributed_charon(self, distributed: bool) -> "SystemConfig":
        """A copy toggling the distributed bitmap-cache/TLB design."""
        return replace(self, charon=replace(self.charon,
                                            distributed=distributed))

    def with_bitmap_cache(self, enabled: bool) -> "SystemConfig":
        """A copy toggling the Sec. 4.5 bitmap cache (ablation)."""
        return replace(self, charon=replace(
            self.charon, bitmap_cache_enabled=enabled))

    def with_scan_push_local(self, local: bool) -> "SystemConfig":
        """A copy toggling Scan&Push placement (ablation: object's cube
        instead of the central cube)."""
        return replace(self, charon=replace(self.charon,
                                            scan_push_local=local))

    def with_dispatch_overhead(self, seconds: float) -> "SystemConfig":
        """A copy with a different host-side offload dispatch cost."""
        return replace(self, costs=replace(
            self.costs, charon_dispatch_overhead_s=seconds))

    def with_topology(self, topology: str) -> "SystemConfig":
        """A copy with a different inter-cube topology
        ("star" | "fully-connected")."""
        return replace(self, hmc=replace(self.hmc, topology=topology))

    def scaled_charon_units(self, factor: float) -> "SystemConfig":
        """A copy scaling the number of Charon units (Fig. 15 sweeps)."""
        charon = self.charon
        def scale(count: int) -> int:
            return max(self.hmc.cubes, int(round(count * factor)))
        return replace(self, charon=replace(
            charon,
            copy_search_units=scale(charon.copy_search_units),
            bitmap_count_units=scale(charon.bitmap_count_units),
            scan_push_units=max(1, int(round(charon.scan_push_units * factor))),
        ))


def default_config() -> SystemConfig:
    """The Table 2 configuration with the default scaled heap."""
    config = SystemConfig()
    config.validate()
    return config


#: Paper heap sizes (Table 3) and the 1/256 scale used in this repo.
PAPER_HEAP_SCALE = 256

PAPER_HEAP_BYTES: Dict[str, int] = {
    "spark-bs": 10 * GB,
    "spark-km": 8 * GB,
    "spark-lr": 12 * GB,
    "graphchi-cc": 4 * GB,
    "graphchi-pr": 4 * GB,
    "graphchi-als": 4 * GB,
}


def scaled_heap_bytes(workload: str) -> int:
    """Heap size for ``workload`` scaled down by :data:`PAPER_HEAP_SCALE`."""
    try:
        paper_bytes = PAPER_HEAP_BYTES[workload]
    except KeyError:
        raise ConfigError(f"unknown workload {workload!r}") from None
    return paper_bytes // PAPER_HEAP_SCALE


# ---------------------------------------------------------------------------
# Replay pipeline configuration (the compiled-trace/capture-once layer)
# ---------------------------------------------------------------------------

#: Environment variables steering the experiment replay pipeline.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"          #: cache directory
TRACE_CACHE_REQUIRE_ENV = "REPRO_TRACE_CACHE_REQUIRE"  #: miss = error
REPLAY_JOBS_ENV = "REPRO_JOBS"                 #: replay_grid processes
WORKLOADS_ENV = "REPRO_WORKLOADS"              #: comma-separated subset
TRACE_OUT_ENV = "REPRO_TRACE_OUT"              #: Chrome trace at exit
METRICS_OUT_ENV = "REPRO_METRICS_OUT"          #: metric snapshot at exit
REPLAY_MODE_ENV = "REPRO_REPLAY_MODE"          #: auto | fast | event
HEAP_KERNELS_ENV = "REPRO_HEAP_KERNELS"        #: scalar | fast
HEAP_BACKEND_ENV = "REPRO_HEAP_BACKEND"        #: ram | mmap
TRACE_CHUNK_ENV = "REPRO_TRACE_CHUNK_EVENTS"   #: events per npz chunk
SHARD_JOURNAL_ENV = "REPRO_SHARD_JOURNAL"      #: sweep-shard directory
METRICS_PORT_ENV = "REPRO_METRICS_PORT"        #: live /metrics endpoint
EVENTLOG_ENV = "REPRO_EVENTLOG"                #: JSONL run-event log
EVENTLOG_MAX_BYTES_ENV = "REPRO_EVENTLOG_MAX_BYTES"  #: rotation size
STAGE1_CACHE_ENV = "REPRO_STAGE1_CACHE"        #: stage-1 product cache
STAGE1_CACHE_REQUIRE_ENV = "REPRO_STAGE1_CACHE_REQUIRE"  #: miss = error
WARM_POOL_ENV = "REPRO_WARM_POOL"              #: persistent sweep pool

REPLAY_MODES = ("auto", "fast", "event")

#: Heap-buffer backends (see :mod:`repro.heap.backing`): ``ram``
#: (default) allocates ``np.zeros`` pages up front, ``mmap`` backs the
#: heap and mark bitmaps with sparse memory-mapped temporary files so
#: paper-scale heaps allocate lazily and stay out of RSS until touched.
HEAP_BACKENDS = ("ram", "mmap")

#: Default events per chunk of the chunked binary trace layout.  Small
#: enough that a writer/reader holds only a bounded slab per trace in
#: addition to the trace being assembled, large enough that the zip
#: member overhead stays negligible.
DEFAULT_TRACE_CHUNK_EVENTS = 65536

#: Default size at which the JSONL run-event log rotates (the current
#: file moves to ``<path>.1`` and a fresh one starts).  Generous for a
#: paper-scale sweep (a record is ~150 bytes) while bounding what a
#: runaway run can leave behind.
DEFAULT_EVENTLOG_MAX_BYTES = 16 * MB


def default_eventlog_max_bytes() -> int:
    """The environment-selected event-log rotation threshold."""
    raw = os.environ.get(EVENTLOG_MAX_BYTES_ENV)
    limit = int(raw) if raw else DEFAULT_EVENTLOG_MAX_BYTES
    if limit < 1024:
        raise ConfigError(
            f"{EVENTLOG_MAX_BYTES_ENV} must be at least 1024 bytes, "
            f"got {limit}")
    return limit


def default_heap_backend() -> str:
    """The environment-selected heap-buffer backend."""
    backend = os.environ.get(HEAP_BACKEND_ENV) or "ram"
    if backend not in HEAP_BACKENDS:
        raise ConfigError(
            f"{HEAP_BACKEND_ENV} must be one of {HEAP_BACKENDS}, "
            f"got {backend!r}")
    return backend


def default_trace_chunk_events() -> int:
    """The environment-selected chunk size for binary traces."""
    raw = os.environ.get(TRACE_CHUNK_ENV)
    chunk = int(raw) if raw else DEFAULT_TRACE_CHUNK_EVENTS
    if chunk < 1:
        raise ConfigError(
            f"{TRACE_CHUNK_ENV} must be a positive event count, "
            f"got {chunk}")
    return chunk

#: Functional-layer kernel selection (see
#: :mod:`repro.heap.fast_kernels`): ``fast`` (default) runs the
#: collectors on the vectorized heap primitives, ``scalar`` keeps the
#: reference object-at-a-time paths — the oracle the differential
#: fuzzer compares against.
HEAP_KERNEL_MODES = ("scalar", "fast")


@dataclass(frozen=True)
class ReplayConfig:
    """How the experiment layer turns traces into timing results.

    ``fast_path`` selects the replayer (see
    :func:`repro.platform.fast_replay.make_replayer`): ``auto`` uses
    the vectorized fast path wherever the platform declares it
    equivalent, ``fast`` requires it, ``event`` forces the event-by-
    event replayer.  ``cache_dir`` points the content-addressed trace
    cache at a directory (``None`` disables it) and ``jobs`` bounds the
    :func:`repro.experiments.runner.replay_grid` process fan-out.
    """

    fast_path: str = "auto"
    cache_dir: Optional[str] = None
    jobs: int = 1

    def validate(self) -> None:
        if self.fast_path not in REPLAY_MODES:
            raise ConfigError(
                f"fast_path must be one of {REPLAY_MODES}, "
                f"got {self.fast_path!r}")
        if self.jobs < 1:
            raise ConfigError("jobs must be >= 1")


def default_replay_config() -> ReplayConfig:
    """The environment-driven replay configuration."""
    config = ReplayConfig(
        fast_path=os.environ.get(REPLAY_MODE_ENV) or "auto",
        cache_dir=os.environ.get(TRACE_CACHE_ENV) or None,
        jobs=int(os.environ.get(REPLAY_JOBS_ENV) or 1))
    config.validate()
    return config
