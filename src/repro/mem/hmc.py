"""Hybrid Memory Cube system model (Fig. 5a topology).

Four cubes in a star: the host connects to the central cube over a
serial link; the other cubes hang off the central cube over further
serial links.  Every link is 80 GB/s with 3 ns latency (Table 2); each
cube's stacked DRAM offers 320 GB/s of internal (TSV) bandwidth.

Two kinds of requester use the system:

* the **host** — every access crosses the host link, then possibly one
  cube-to-cube link, then the destination cube's internal path;
* a **Charon unit** on some cube's logic layer — local accesses use only
  that cube's internal path; remote accesses cross cube-to-cube links
  (via the central cube) but never the host link.

The model keeps separate byte counters for TSV traffic, link traffic,
and local vs. remote unit accesses; Figure 13 is read straight off these
counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import HMCConfig
from repro.errors import ConfigError
from repro.sim.resources import FluidResource, ResourcePath
from repro.units import HMC_MAX_REQUEST, pj_per_bit

#: SerDes energy per bit for traffic crossing a serial link.  The paper
#: does not tabulate link energy separately; published HMC link
#: measurements (Schmidt et al., MEMSYS'16 — the paper's own energy
#: source) attribute a few pJ/bit to the SerDes interface.
LINK_PJ_PER_BIT = 3.0


class HMCSystem:
    """The star-connected multi-cube memory system."""

    def __init__(self, config: Optional[HMCConfig] = None) -> None:
        self.config = config or HMCConfig()
        dram_energy = pj_per_bit(self.config.energy_pj_per_bit)
        link_energy = pj_per_bit(LINK_PJ_PER_BIT)
        self.internal: List[FluidResource] = [
            FluidResource(
                name=f"hmc.cube{index}.internal",
                rate=self.config.internal_bandwidth_per_cube,
                latency=self.config.access_latency_s,
                energy_per_byte=dram_energy,
            )
            for index in range(self.config.cubes)
        ]
        self.host_link = FluidResource(
            name="hmc.link.host",
            rate=self.config.link_bandwidth,
            latency=self.config.link_latency_s,
            energy_per_byte=link_energy,
        )
        if self.config.topology not in ("star", "fully-connected"):
            raise ConfigError(
                f"unknown HMC topology {self.config.topology!r}")
        self.cross_links: Dict[object, FluidResource] = {}
        if self.config.topology == "star":
            for index in range(self.config.cubes):
                if index == self.config.central_cube:
                    continue
                self.cross_links[index] = FluidResource(
                    name=f"hmc.link.c{self.config.central_cube}"
                         f"-c{index}",
                    rate=self.config.link_bandwidth,
                    latency=self.config.link_latency_s,
                    energy_per_byte=link_energy,
                )
        else:
            # Fully connected: one direct link per cube pair, keyed by
            # the sorted pair.
            for a in range(self.config.cubes):
                for b in range(a + 1, self.config.cubes):
                    self.cross_links[(a, b)] = FluidResource(
                        name=f"hmc.link.c{a}-c{b}",
                        rate=self.config.link_bandwidth,
                        latency=self.config.link_latency_s,
                        energy_per_byte=link_energy,
                    )
        # Local/remote accounting for Charon units (Fig. 13 right axis).
        self.unit_local_bytes = 0
        self.unit_remote_bytes = 0

    # -- path construction ---------------------------------------------------

    def _link_chain(self, src_cube: int, dst_cube: int) -> List[FluidResource]:
        """Serial links crossed between two cubes.

        Star: spoke-to-spoke traffic hops through the central cube (two
        links).  Fully connected: always one direct link.
        """
        if src_cube == dst_cube:
            return []
        if self.config.topology == "fully-connected":
            key = (min(src_cube, dst_cube), max(src_cube, dst_cube))
            return [self.cross_links[key]]
        central = self.config.central_cube
        chain: List[FluidResource] = []
        if src_cube != central:
            chain.append(self.cross_links[src_cube])
        if dst_cube != central:
            chain.append(self.cross_links[dst_cube])
        return chain

    def host_path(self, cube: int) -> ResourcePath:
        """Host -> (central cube) -> ``cube`` -> DRAM."""
        self._check_cube(cube)
        resources: List[FluidResource] = [self.host_link]
        resources.extend(self._link_chain(self.config.central_cube, cube))
        resources.append(self.internal[cube])
        return ResourcePath(resources)

    def unit_path(self, unit_cube: int, target_cube: int) -> ResourcePath:
        """A Charon unit on ``unit_cube`` reaching ``target_cube``'s DRAM."""
        self._check_cube(unit_cube)
        self._check_cube(target_cube)
        resources = self._link_chain(unit_cube, target_cube)
        resources.append(self.internal[target_cube])
        return ResourcePath(resources)

    def _check_cube(self, cube: int) -> None:
        if not 0 <= cube < self.config.cubes:
            raise ConfigError(f"cube index {cube} out of range")

    # -- convenience requests --------------------------------------------------

    def host_access(self, now: float, cube: int,
                    nbytes: int = HMC_MAX_REQUEST) -> float:
        return self.host_path(cube).access(now, nbytes)

    def host_stream(self, now: float, cube: int, total_bytes: int,
                    chunk_bytes: int = HMC_MAX_REQUEST, mlp: float = 10.0,
                    issue_rate: Optional[float] = None,
                    dependent_batches: int = 1,
                    priority: bool = False) -> float:
        return self.host_path(cube).stream(
            now, total_bytes, chunk_bytes, mlp, issue_rate=issue_rate,
            dependent_batches=dependent_batches, priority=priority)

    def unit_access(self, now: float, unit_cube: int, target_cube: int,
                    nbytes: int = HMC_MAX_REQUEST) -> float:
        self._count_unit_bytes(unit_cube, target_cube, nbytes)
        return self.unit_path(unit_cube, target_cube).access(now, nbytes)

    def unit_stream(self, now: float, unit_cube: int, target_cube: int,
                    total_bytes: int, chunk_bytes: int = HMC_MAX_REQUEST,
                    mlp: float = 64.0, issue_rate: Optional[float] = None,
                    dependent_batches: int = 1,
                    priority: bool = False) -> float:
        self._count_unit_bytes(unit_cube, target_cube, total_bytes)
        return self.unit_path(unit_cube, target_cube).stream(
            now, total_bytes, chunk_bytes, mlp, issue_rate=issue_rate,
            dependent_batches=dependent_batches, priority=priority)

    def _count_unit_bytes(self, unit_cube: int, target_cube: int,
                          nbytes: int) -> None:
        if unit_cube == target_cube:
            self.unit_local_bytes += nbytes
        else:
            self.unit_remote_bytes += nbytes

    # -- accounting -------------------------------------------------------------

    @property
    def tsv_bytes(self) -> int:
        """Bytes served through the cubes' internal (TSV) paths."""
        return sum(res.bytes_served for res in self.internal)

    @property
    def link_bytes(self) -> int:
        """Bytes crossing any serial link (host or cube-to-cube)."""
        total = self.host_link.bytes_served
        total += sum(link.bytes_served for link in self.cross_links.values())
        return total

    @property
    def energy_joules(self) -> float:
        total = sum(res.energy_joules for res in self.internal)
        total += self.host_link.energy_joules
        total += sum(link.energy_joules for link in self.cross_links.values())
        return total

    @property
    def local_fraction(self) -> float:
        """Fraction of Charon-unit bytes served by the unit's own cube."""
        total = self.unit_local_bytes + self.unit_remote_bytes
        if total == 0:
            return 1.0
        return self.unit_local_bytes / total

    def reset_accounting(self) -> None:
        for res in self.internal:
            res.reset_accounting()
        self.host_link.reset_accounting()
        for link in self.cross_links.values():
            link.reset_accounting()
        self.unit_local_bytes = 0
        self.unit_remote_bytes = 0
