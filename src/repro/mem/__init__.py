"""Memory-system substrates: address interleaving, virtual memory,
DDR4 channels and HMC cubes/vaults/serial-links.

These are the platforms the primitive traces replay against.  Both
memory systems expose the same small surface:

* ``access(now, addr, nbytes)`` — a single request, returning its
  completion time;
* ``stream(...)`` — a bulk transfer spread over the parallel resources
  (channels or vault groups);
* byte / energy accounting for the bandwidth and energy figures.
"""

from repro.mem.address import AddressMapping, BitField, ddr4_mapping, hmc_mapping
from repro.mem.ddr4 import DDR4System
from repro.mem.hmc import HMCSystem
from repro.mem.vm import VirtualMemory, PageMapping

__all__ = [
    "AddressMapping",
    "BitField",
    "ddr4_mapping",
    "hmc_mapping",
    "DDR4System",
    "HMCSystem",
    "VirtualMemory",
    "PageMapping",
]
