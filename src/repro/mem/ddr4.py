"""DDR4 main-memory system model (the paper's baseline platform).

Two channels at 17 GB/s each (34 GB/s aggregate), with an access latency
derived from the Table 2 device timings plus a controller allowance, and
35 pJ/bit access energy.  Channels are fluid FIFO servers; bulk streams
split evenly across them, which is what the fine-grained
``[row:col:bank:rank:ch]`` interleaving achieves in hardware.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import DDR4Config
from repro.mem.address import ddr4_mapping
from repro.sim.resources import FluidResource, ResourcePath
from repro.units import CACHE_LINE, pj_per_bit


class DDR4System:
    """A conventional DDR4 memory system behind the host's controller."""

    def __init__(self, config: Optional[DDR4Config] = None) -> None:
        self.config = config or DDR4Config()
        energy = pj_per_bit(self.config.energy_pj_per_bit)
        self.channels: List[FluidResource] = [
            FluidResource(
                name=f"ddr4.ch{index}",
                rate=self.config.bandwidth_per_channel,
                latency=self.config.access_latency_s,
                energy_per_byte=energy,
            )
            for index in range(self.config.channels)
        ]
        self.mapping = ddr4_mapping(channels=self.config.channels,
                                    ranks=self.config.ranks_per_channel,
                                    banks=self.config.banks_per_rank)

    # -- single accesses ---------------------------------------------------

    def channel_of(self, addr: int) -> int:
        """Channel index serving ``addr`` under Table 2 interleaving."""
        return self.mapping.component(addr, "ch")

    def access(self, now: float, addr: int, nbytes: int = CACHE_LINE) -> float:
        """One cache-line-sized request; returns its completion time."""
        channel = self.channels[self.channel_of(addr)]
        return ResourcePath([channel]).access(now, nbytes)

    # -- bulk streams --------------------------------------------------------

    def stream(self, now: float, total_bytes: int,
               chunk_bytes: int = CACHE_LINE, mlp: float = 10.0,
               issue_rate: Optional[float] = None,
               dependent_batches: int = 1,
               priority: bool = False) -> float:
        """Stream ``total_bytes`` across all channels; returns completion.

        Fine-grained channel interleaving spreads a large contiguous
        transfer evenly, so each channel serves ``1/channels`` of the
        bytes; the MLP window is likewise split.
        """
        share = total_bytes / len(self.channels)
        per_channel_mlp = max(1.0, mlp / len(self.channels))
        finish = now
        for channel in self.channels:
            path = ResourcePath([channel])
            finish = max(finish, path.stream(
                now, int(round(share)), chunk_bytes, per_channel_mlp,
                issue_rate=issue_rate / len(self.channels)
                if issue_rate else None,
                dependent_batches=dependent_batches,
                priority=priority))
        return finish

    # -- accounting ----------------------------------------------------------

    @property
    def bytes_served(self) -> int:
        return sum(channel.bytes_served for channel in self.channels)

    @property
    def energy_joules(self) -> float:
        return sum(channel.energy_joules for channel in self.channels)

    @property
    def access_latency(self) -> float:
        return self.config.access_latency_s

    @property
    def total_bandwidth(self) -> float:
        return self.config.total_bandwidth

    def reset_accounting(self) -> None:
        for channel in self.channels:
            channel.reset_accounting()
