"""Physical-address interleaving schemes.

Table 2 of the paper specifies ``[row:col:bank:rank:ch]`` interleaving
for DDR4 and ``[row:cube[31:30]:row:col:bank:rank:vault]`` for HMC (the
cube bits sit at 31:30 so that consecutive 1 GB huge pages land on
different cubes).  This module provides a generic little-endian bit-field
mapping plus the two concrete schemes, scaled so the cube granule equals
the configured huge-page size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ConfigError


def _bits_for(count: int) -> int:
    """Number of address bits needed to index ``count`` entries."""
    if count <= 0:
        raise ConfigError("field needs a positive entry count")
    bits = (count - 1).bit_length()
    if (1 << bits) != count:
        raise ConfigError(f"entry count {count} is not a power of two")
    return bits


@dataclass(frozen=True)
class BitField:
    """A named contiguous bit range within an address, LSB-relative."""

    name: str
    bits: int


class AddressMapping:
    """Decode/encode addresses as a sequence of bit fields.

    ``fields`` are listed from the least-significant end; the remaining
    high bits always form an implicit ``row``-like residue field named
    ``rest``.  The mapping is bijective over the full address space,
    which the test suite verifies by property testing.
    """

    def __init__(self, fields: Sequence[BitField]) -> None:
        self.fields: List[BitField] = list(fields)
        self.total_bits = sum(f.bits for f in self.fields)
        seen = set()
        for bit_field in self.fields:
            if bit_field.name in seen:
                raise ConfigError(f"duplicate field {bit_field.name!r}")
            seen.add(bit_field.name)

    def decode(self, addr: int) -> Dict[str, int]:
        """Split ``addr`` into its named components."""
        if addr < 0:
            raise ConfigError("addresses are non-negative")
        result: Dict[str, int] = {}
        remaining = addr
        for bit_field in self.fields:
            mask = (1 << bit_field.bits) - 1
            result[bit_field.name] = remaining & mask
            remaining >>= bit_field.bits
        result["rest"] = remaining
        return result

    def encode(self, components: Dict[str, int]) -> int:
        """Inverse of :meth:`decode`."""
        addr = components.get("rest", 0)
        for bit_field in reversed(self.fields):
            value = components.get(bit_field.name, 0)
            if value >> bit_field.bits:
                raise ConfigError(
                    f"value {value} does not fit field {bit_field.name!r}")
            addr = (addr << bit_field.bits) | value
        return addr

    def component(self, addr: int, name: str) -> int:
        """Extract a single named component of ``addr``."""
        return self.decode(addr)[name]


def ddr4_mapping(channels: int = 2, ranks: int = 4, banks: int = 8,
                 column_bytes: int = 64) -> AddressMapping:
    """The Table 2 DDR4 scheme ``[row:col:bank:rank:ch]``.

    Channel bits are lowest (above the intra-line offset) so consecutive
    cache lines alternate channels — the standard fine-grained
    interleaving the notation denotes.
    """
    return AddressMapping([
        BitField("offset", _bits_for(column_bytes)),
        BitField("ch", _bits_for(channels)),
        BitField("rank", _bits_for(ranks)),
        BitField("bank", _bits_for(banks)),
        BitField("col", 7),
    ])


def hmc_mapping(cubes: int = 4, vaults: int = 32, cube_granule: int = 1 << 20,
                block_bytes: int = 256) -> AddressMapping:
    """The Table 2 HMC scheme with the cube field at the huge-page granule.

    The paper places cube bits at [31:30] with 1 GB huge pages; our
    scaled heaps use smaller huge pages, so the cube field sits at
    ``log2(cube_granule)`` instead, preserving the page-per-cube
    round-robin behaviour that `numa_alloc_onnode` produces.
    """
    offset_bits = _bits_for(block_bytes)
    vault_bits = _bits_for(vaults)
    granule_bits = _bits_for(cube_granule)
    low_row_bits = granule_bits - offset_bits - vault_bits - 7
    if low_row_bits < 0:
        raise ConfigError("cube granule too small for vault interleaving")
    return AddressMapping([
        BitField("offset", offset_bits),
        BitField("vault", vault_bits),
        BitField("col", 7),
        BitField("row_lo", low_row_bits),
        BitField("cube", _bits_for(cubes)),
    ])


def ddr4_channel(mapping: AddressMapping, addr: int) -> int:
    """Channel index for ``addr`` under a DDR4 mapping."""
    return mapping.component(addr, "ch")


def hmc_cube(mapping: AddressMapping, addr: int) -> int:
    """Cube index for ``addr`` under an HMC mapping."""
    return mapping.component(addr, "cube")


def hmc_vault(mapping: AddressMapping, addr: int) -> int:
    """Vault index for ``addr`` under an HMC mapping."""
    return mapping.component(addr, "vault")
