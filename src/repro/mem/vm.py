"""Virtual-memory support: pinned pages interleaved over cubes.

Section 4.6 of the paper describes the scheme Charon relies on:

* at launch, the JVM allocates the heap from huge pages and pins them
  with ``mlock()``;
* the pages are placed round-robin across HMC cubes with
  ``numa_alloc_onnode()``;
* the accelerator-side TLB holds duplicates of exactly those entries, so
  there are no accelerator TLB misses or page faults during a run;
* multi-process isolation reuses the standard PCID tags.

:class:`VirtualMemory` implements that for the scaled system.  Pinned
mappings come in two granularities: huge pages for the heap proper, and
finer pinned pages for the GC metadata (card table and mark bitmaps) —
at paper scale the metadata alone spans many 1 GB pages and therefore
stripes over cubes, so the scaled system must stripe it too.
Conventional 4 KB demand-paged mappings cover non-heap regions, which
Charon may *not* touch (attempting to raises
:class:`~repro.errors.ProtectionFault`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigError, ProtectionFault
from repro.units import align_down


@dataclass(frozen=True)
class PageMapping:
    """One virtual page's placement."""

    vaddr: int  #: virtual base address of the page
    page_bytes: int
    cube: int  #: HMC cube (NUMA node) holding the page
    pcid: int  #: owning process-context identifier
    pinned: bool  #: mlock()ed (heap pages are always pinned)


class VirtualMemory:
    """Page tables for one or more simulated JVM processes."""

    def __init__(self, huge_page_bytes: int, cubes: int,
                 small_page_bytes: int = 4096) -> None:
        for size in (huge_page_bytes, small_page_bytes):
            if size <= 0 or size & (size - 1):
                raise ConfigError("page sizes must be powers of two")
        if cubes < 1:
            raise ConfigError("need at least one cube")
        self.huge_page_bytes = huge_page_bytes
        self.small_page_bytes = small_page_bytes
        self.cubes = cubes
        # page size -> {(pcid, page base vaddr) -> PageMapping}
        self._tables: Dict[int, Dict[Tuple[int, int], PageMapping]] = {}
        self._next_node = 0

    def _table(self, page_bytes: int) -> Dict[Tuple[int, int], PageMapping]:
        return self._tables.setdefault(page_bytes, {})

    # -- mapping ---------------------------------------------------------

    def map_pinned(self, base: int, size: int, page_bytes: int,
                   pcid: int = 0,
                   first_node: Optional[int] = None) -> List[PageMapping]:
        """Pin ``size`` bytes at ``base`` on cube-interleaved pages.

        Mirrors ``mlock()`` + ``numa_alloc_onnode`` round-robin
        placement.  ``base`` and ``size`` must be page aligned.
        """
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ConfigError("page size must be a power of two")
        if base % page_bytes:
            raise ConfigError("mapping base must be page aligned")
        if size <= 0 or size % page_bytes:
            raise ConfigError("mapping size must be a page multiple")
        table = self._table(page_bytes)
        node = self._next_node if first_node is None else first_node
        mappings = []
        for offset in range(0, size, page_bytes):
            vaddr = base + offset
            key = (pcid, vaddr)
            if key in table:
                raise ConfigError(f"page at {vaddr:#x} already mapped")
            mapping = PageMapping(vaddr=vaddr, page_bytes=page_bytes,
                                  cube=node % self.cubes, pcid=pcid,
                                  pinned=True)
            table[key] = mapping
            mappings.append(mapping)
            node += 1
        self._next_node = node
        return mappings

    def map_heap(self, base: int, size: int, pcid: int = 0,
                 first_node: Optional[int] = None) -> List[PageMapping]:
        """Pin the heap on interleaved huge pages
        (``-XX:+UseLargePages -XX:+AlwaysPretouch``)."""
        return self.map_pinned(base, size, self.huge_page_bytes,
                               pcid=pcid, first_node=first_node)

    def map_small(self, base: int, size: int, pcid: int = 0,
                  cube: int = 0) -> List[PageMapping]:
        """Map a demand-paged 4 KB region (code, off-heap).  Not pinned."""
        if base % self.small_page_bytes or size % self.small_page_bytes:
            raise ConfigError("small mapping must be 4 KB aligned")
        table = self._table(self.small_page_bytes)
        mappings = []
        for offset in range(0, size, self.small_page_bytes):
            vaddr = base + offset
            mapping = PageMapping(vaddr=vaddr,
                                  page_bytes=self.small_page_bytes,
                                  cube=cube, pcid=pcid, pinned=False)
            table[(pcid, vaddr)] = mapping
            mappings.append(mapping)
        return mappings

    def unmap(self, pcid: int) -> int:
        """Tear down all mappings of a process; returns the page count."""
        removed = 0
        for table in self._tables.values():
            stale = [key for key in table if key[0] == pcid]
            for key in stale:
                del table[key]
                removed += 1
        return removed

    # -- translation -----------------------------------------------------

    def lookup(self, vaddr: int, pcid: int = 0) -> PageMapping:
        """Return the mapping covering ``vaddr`` or raise ProtectionFault."""
        for page_bytes, table in self._tables.items():
            base = align_down(vaddr, page_bytes)
            mapping = table.get((pcid, base))
            if mapping is not None:
                return mapping
        raise ProtectionFault(
            f"no mapping for vaddr {vaddr:#x} in pcid {pcid}")

    def cube_of(self, vaddr: int, pcid: int = 0) -> int:
        """Cube (NUMA node) holding ``vaddr``."""
        return self.lookup(vaddr, pcid).cube

    def accelerator_lookup(self, vaddr: int, pcid: int = 0) -> PageMapping:
        """Translation as performed by the Charon-side TLB.

        Only pinned pages are duplicated into the accelerator TLB
        (Sec. 4.6); anything else faults, which models the admission
        control the paper describes.
        """
        mapping = self.lookup(vaddr, pcid)
        if not mapping.pinned:
            raise ProtectionFault(
                f"vaddr {vaddr:#x} is not on a pinned page; "
                "Charon may only access the pinned heap")
        return mapping

    # -- introspection ----------------------------------------------------

    def pinned_pages(self, pcid: int = 0) -> Iterator[PageMapping]:
        """All pinned pages of a process, in address order."""
        pages: List[PageMapping] = []
        for table in self._tables.values():
            pages.extend(m for (p, _), m in table.items()
                         if p == pcid and m.pinned)
        return iter(sorted(pages, key=lambda m: m.vaddr))

    def pinned_page_count(self, pcid: int = 0) -> int:
        return sum(1 for _ in self.pinned_pages(pcid))

    def page_sizes(self) -> List[int]:
        """Registered page-size classes, ascending."""
        return sorted(self._tables)

    def split_range_by_cube(self, start: int, length: int,
                            pcid: int = 0) -> List[Tuple[int, int, int]]:
        """Split ``[start, start+length)`` into per-cube runs.

        Returns ``(run_start, run_length, cube)`` tuples.  The platform
        layer uses this to route each piece of a bulk transfer to the
        cube that owns it, which is what produces the local/remote
        traffic split of Figure 13.
        """
        if length < 0:
            raise ConfigError("negative range length")
        runs: List[Tuple[int, int, int]] = []
        cursor = start
        end = start + length
        while cursor < end:
            mapping = self.lookup(cursor, pcid)
            page_end = (align_down(cursor, mapping.page_bytes)
                        + mapping.page_bytes)
            run_end = min(end, page_end)
            if runs and runs[-1][2] == mapping.cube:
                prev_start, prev_len, cube = runs[-1]
                runs[-1] = (prev_start, prev_len + run_end - cursor, cube)
            else:
                runs.append((cursor, run_end - cursor, mapping.cube))
            cursor = run_end
        return runs
