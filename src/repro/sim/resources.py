"""Fluid-flow bandwidth resources.

Every bandwidth-carrying element of the modelled system — a DDR4 channel,
an HMC vault group, a cube-to-cube serial link, the host's on-chip memory
path — is a :class:`FluidResource`: a FIFO server with a byte rate and a
fixed access latency.  A transfer of ``B`` bytes queues behind earlier
traffic and occupies the server for ``B / rate`` seconds.

:class:`ResourcePath` composes several resources into an end-to-end path
(e.g. host -> serial link -> remote vault) and implements the
*stream-transfer* timing model used for primitive replay:

``finish = max(bandwidth bound, latency/MLP bound, issue bound)``

* bandwidth bound — FIFO reservation of the full byte volume on every
  resource along the path;
* latency/MLP bound — a window of ``mlp`` outstanding requests of size
  ``chunk`` each experiencing the path round-trip latency;
* issue bound — the requester can inject at most ``issue_rate`` requests
  per second (Charon units issue one per cycle, Sec. 4.2).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from repro.errors import SimulationError


class FluidResource:
    """A FIFO fluid server with a service rate and per-access latency."""

    def __init__(self, name: str, rate: float, latency: float = 0.0,
                 energy_per_byte: float = 0.0) -> None:
        if rate <= 0:
            raise SimulationError(f"resource {name!r} needs a positive rate")
        if latency < 0:
            raise SimulationError(f"resource {name!r} has negative latency")
        self.name = name
        self.rate = rate  #: bytes per second
        self.latency = latency  #: seconds per access (added once per request)
        self.energy_per_byte = energy_per_byte  #: joules per byte moved
        self.busy_until = 0.0
        #: separate horizon for the short-request lane (see
        #: :meth:`reserve_small`).
        self.small_busy_until = 0.0
        self.bytes_served = 0
        self.busy_time = 0.0
        self.energy_joules = 0.0
        self.requests = 0

    def reserve(self, now: float, nbytes: int) -> float:
        """Reserve ``nbytes`` of service starting no earlier than ``now``.

        Returns the time at which the last byte leaves the server (not
        including the access latency, which the caller adds once per
        logical request).
        """
        if nbytes < 0:
            raise SimulationError("cannot reserve a negative byte count")
        start = max(now, self.busy_until)
        service = nbytes / self.rate
        self.busy_until = start + service
        self._account(nbytes, service)
        return self.busy_until

    def reserve_small(self, now: float, nbytes: int) -> float:
        """Reserve service on the short-request priority lane.

        Memory controllers (FR-FCFS and successors) interleave short
        demand requests ahead of long streaming bursts, so a random
        64-byte probe does not wait behind a megabyte copy stream.  The
        lane shares the byte accounting but keeps its own FIFO horizon;
        bulk traffic is unaffected because priority traffic is small by
        definition.
        """
        if nbytes < 0:
            raise SimulationError("cannot reserve a negative byte count")
        start = max(now, self.small_busy_until)
        service = nbytes / self.rate
        self.small_busy_until = start + service
        self._account(nbytes, service)
        return self.small_busy_until

    def tally(self, nbytes: int) -> float:
        """Account bytes/energy without occupying a FIFO horizon.

        For sub-100-byte control packets and pipelined probe traffic the
        queueing contribution is negligible, but reserving them on a
        horizon at a *future* completion time would (incorrectly) block
        earlier arrivals in the single-horizon FIFO approximation —
        tally sidesteps that while keeping bandwidth/energy accounting
        exact.  Returns the pure serialisation delay of the bytes.
        """
        service = nbytes / self.rate
        self._account(nbytes, service)
        return service

    def _account(self, nbytes: int, service: float) -> None:
        self.bytes_served += nbytes
        self.busy_time += service
        self.energy_joules += nbytes * self.energy_per_byte
        self.requests += 1

    def account_bulk(self, nbytes: int, requests: int) -> None:
        """Apply the accounting of ``requests`` reservations at once.

        The batched replay kernels precompute, per resource, the total
        byte volume and reservation count of a whole compiled trace and
        apply it in one call instead of per event.  Byte and request
        counters are integers, so the bulk update is *exactly* what the
        per-event path would have accumulated; busy time and energy are
        linear in the bytes, so they agree up to float summation order
        (within the fast path's 1e-9 equivalence contract).  The FIFO
        horizons are untouched — they are order-dependent and stay with
        the caller.
        """
        if nbytes < 0 or requests < 0:
            raise SimulationError("bulk accounting must be non-negative")
        self.bytes_served += nbytes
        self.busy_time += nbytes / self.rate
        self.energy_joules += nbytes * self.energy_per_byte
        self.requests += requests

    def earliest_start(self, now: float) -> float:
        """When a request arriving at ``now`` would begin service."""
        return max(now, self.busy_until)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the server was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def snapshot(self) -> dict:
        """Copy of the accounting counters (for interval deltas)."""
        return {
            "bytes_served": self.bytes_served,
            "busy_time": self.busy_time,
            "energy_joules": self.energy_joules,
            "requests": self.requests,
        }

    def reset_accounting(self) -> None:
        """Zero the statistics counters (the FIFO horizon is kept)."""
        self.bytes_served = 0
        self.busy_time = 0.0
        self.energy_joules = 0.0
        self.requests = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FluidResource({self.name!r}, rate={self.rate:.3g} B/s, "
                f"latency={self.latency:.3g} s)")


class LatencyLink(FluidResource):
    """A link dominated by latency; bandwidth may still be finite.

    Used for HMC serial links (80 GB/s, 3 ns per Table 2).
    """

    def __init__(self, name: str, latency: float,
                 rate: float = float("inf"),
                 energy_per_byte: float = 0.0) -> None:
        # A truly infinite rate breaks the fluid arithmetic; use a very
        # large finite rate instead.
        if math.isinf(rate):
            rate = 1e18
        super().__init__(name, rate=rate, latency=latency,
                         energy_per_byte=energy_per_byte)


class ResourcePath:
    """An ordered chain of resources between a requester and memory."""

    def __init__(self, resources: Sequence[FluidResource],
                 extra_latency: float = 0.0) -> None:
        self.resources: List[FluidResource] = list(resources)
        self.extra_latency = extra_latency

    @property
    def latency(self) -> float:
        """One-way access latency of the full path in seconds."""
        return self.extra_latency + sum(r.latency for r in self.resources)

    @property
    def bottleneck_rate(self) -> float:
        """The lowest byte rate along the path."""
        return min(r.rate for r in self.resources)

    def access(self, now: float, nbytes: int) -> float:
        """A single request of ``nbytes``; returns its completion time."""
        finish = now
        for resource in self.resources:
            finish = max(finish, resource.reserve(now, nbytes))
        return finish + self.latency

    def stream(self, now: float, total_bytes: int, chunk_bytes: int,
               mlp: float, issue_rate: Optional[float] = None,
               dependent_batches: int = 1,
               priority: bool = False) -> float:
        """Stream ``total_bytes`` through the path; returns completion time.

        ``mlp`` is the requester's maximum number of outstanding requests;
        ``issue_rate`` (requests/second) bounds injection;
        ``dependent_batches`` > 1 models serially-dependent phases (each
        pays the full path latency once); ``priority`` routes the bytes
        through the short-request lane (latency-sensitive random
        accesses that controllers interleave ahead of bulk streams).
        """
        if total_bytes <= 0:
            return now + self.latency * dependent_batches
        if chunk_bytes <= 0:
            raise SimulationError("chunk_bytes must be positive")
        if mlp <= 0:
            raise SimulationError("mlp must be positive")
        n_requests = math.ceil(total_bytes / chunk_bytes)

        # Bandwidth/queueing bound: FIFO reservation on every resource.
        finish_bw = now
        for resource in self.resources:
            if priority:
                finish_bw = max(finish_bw,
                                resource.reserve_small(now, total_bytes))
            else:
                finish_bw = max(finish_bw,
                                resource.reserve(now, total_bytes))

        # Latency/MLP bound: a window of `mlp` outstanding requests.
        round_trip = self.latency
        finish_lat = now + round_trip * dependent_batches
        if round_trip > 0:
            finish_lat += (n_requests - 1) * (round_trip / mlp)

        # Issue bound.
        finish_issue = now
        if issue_rate is not None and issue_rate > 0:
            finish_issue = now + n_requests / issue_rate + round_trip

        return max(finish_bw, finish_lat, finish_issue)


def combined_bytes(resources: Iterable[FluidResource]) -> int:
    """Total bytes served by a set of resources (bandwidth reporting)."""
    return sum(r.bytes_served for r in resources)
