"""Lightweight statistics primitives shared by all models.

Absorbed by the unified telemetry layer: the primitives now live in
:mod:`repro.obs.metrics` and this module re-exports them so the
simulation components (and existing imports) keep working unchanged.
:class:`StatsRegistry` *is* the unified
:class:`~repro.obs.metrics.MetricsRegistry` — zsim-style dotted scopes
still work, and labeled metrics, gauges and percentile queries come
along for free.
"""

from __future__ import annotations

from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry)

#: The historical name; every component registers against this class.
StatsRegistry = MetricsRegistry

__all__ = ["Counter", "Gauge", "Histogram", "StatsRegistry"]
