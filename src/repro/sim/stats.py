"""Lightweight statistics primitives shared by all models.

zsim-style: every component registers named counters/histograms with a
:class:`StatsRegistry`; experiment drivers dump the registry into report
rows.  Keeping statistics out of the component logic makes the timing
models easier to audit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple


class Counter:
    """A monotonically increasing scalar statistic."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value:g})"


class Histogram:
    """A fixed-bucket histogram for latency/size distributions."""

    def __init__(self, name: str, bucket_bounds: List[float],
                 description: str = "") -> None:
        if sorted(bucket_bounds) != list(bucket_bounds):
            raise ValueError("bucket bounds must be sorted ascending")
        self.name = name
        self.description = description
        self.bounds = list(bucket_bounds)
        self.counts = [0] * (len(bucket_bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def record(self, value: float, count: int = 1) -> None:
        index = 0
        while index < len(self.bounds) and value > self.bounds[index]:
            index += 1
        self.counts[index] += count
        self.total += count
        self.sum += value * count

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0


@dataclass
class StatsRegistry:
    """A hierarchical namespace of counters and histograms."""

    prefix: str = ""
    _counters: "OrderedDict[str, Counter]" = field(default_factory=OrderedDict)
    _histograms: "OrderedDict[str, Histogram]" = field(default_factory=OrderedDict)

    def counter(self, name: str, description: str = "") -> Counter:
        """Get or create the counter ``name``."""
        full = self._full(name)
        if full not in self._counters:
            self._counters[full] = Counter(full, description)
        return self._counters[full]

    def histogram(self, name: str, bounds: List[float],
                  description: str = "") -> Histogram:
        """Get or create the histogram ``name``."""
        full = self._full(name)
        if full not in self._histograms:
            self._histograms[full] = Histogram(full, bounds, description)
        return self._histograms[full]

    def scope(self, name: str) -> "StatsRegistry":
        """A child view sharing storage but prefixing names with ``name``."""
        child = StatsRegistry(prefix=self._full(name))
        child._counters = self._counters
        child._histograms = self._histograms
        return child

    def _full(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counters(self) -> Iterator[Tuple[str, float]]:
        for name, counter in self._counters.items():
            yield name, counter.value

    def as_dict(self) -> Dict[str, float]:
        return {name: counter.value for name, counter in self._counters.items()}

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
