"""Cycle-approximate discrete-event simulation engine.

The timing layer of the reproduction replays GC primitive traces on
platform models.  Rather than simulating individual DRAM commands, memory
resources are *fluid-flow servers* (:class:`~repro.sim.resources.FluidResource`):
a transfer of ``B`` bytes occupies a resource for ``B / rate`` seconds after
queueing behind earlier traffic, plus a fixed access latency.  This is the
standard approximation for bandwidth-bound accelerators and matches the
paper's observation that the offloaded primitives are throughput-, not
command-, limited.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.resources import FluidResource, LatencyLink, ResourcePath
from repro.sim.stats import Counter, Gauge, Histogram, StatsRegistry

__all__ = [
    "Event",
    "Simulator",
    "FluidResource",
    "LatencyLink",
    "ResourcePath",
    "Counter",
    "Gauge",
    "Histogram",
    "StatsRegistry",
]
