"""Minimal discrete-event simulation core.

The engine is a classic calendar queue over ``(time, seq, event)`` tuples.
Components schedule callbacks; the simulator guarantees monotonically
non-decreasing time and detects scheduling into the past, which would
indicate a modelling bug.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)`` so that simultaneous events fire
    in scheduling order, keeping runs deterministic.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Simulator:
    """Discrete-event simulator with a float time base (seconds)."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for engine statistics)."""
        return self._events_fired

    def schedule(self, delay: float, action: Callable[[], None],
                 label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which the caller may later cancel.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay!r}, label={label!r})")
        event = Event(time=self._now + delay, seq=self._seq, action=action,
                      label=label)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], None],
                    label: str = "") -> Event:
        """Schedule ``action`` at an absolute time."""
        return self.schedule(time - self._now, action, label)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError(
                    f"time reversal: event at {event.time} < now {self._now}")
            self._now = event.time
            self._events_fired += 1
            event.action()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the final simulation time.
        """
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                break
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            self.step()
            fired += 1
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward without executing events.

        Only legal when no pending event precedes ``time``; used by the
        trace replayer to account for host-side serial work between
        offloads.
        """
        if time < self._now:
            raise SimulationError("advance_to would move time backwards")
        next_time = self.peek_time()
        if next_time is not None and next_time < time:
            raise SimulationError(
                "advance_to would skip a pending event; run() first")
        self._now = time

    def drain(self) -> float:
        """Run all remaining events and return the final time."""
        return self.run()


class Process:
    """A resumable activity driven by a generator of delays.

    The generator yields float delays (seconds); the engine resumes it
    after each delay, which gives component models a convenient coroutine
    style without threads.  Yielding ``None`` suspends the process until
    :meth:`wake` is called (used for blocking on queue space).
    """

    def __init__(self, sim: Simulator, gen, label: str = "") -> None:
        self._sim = sim
        self._gen = gen
        self._label = label
        self._waiting = False
        self.finished = False
        self.on_finish: Optional[Callable[[], None]] = None
        self._step()

    def _step(self) -> None:
        try:
            delay = next(self._gen)
        except StopIteration:
            self.finished = True
            if self.on_finish is not None:
                self.on_finish()
            return
        if delay is None:
            self._waiting = True
        else:
            self._sim.schedule(delay, self._step, self._label)

    def wake(self) -> None:
        """Resume a process that yielded ``None``."""
        if self.finished:
            raise SimulationError("cannot wake a finished process")
        if not self._waiting:
            raise SimulationError("process is not waiting")
        self._waiting = False
        self._sim.schedule(0.0, self._step, self._label + ":wake")
