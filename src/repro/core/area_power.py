"""Charon area and power model (Table 4, Sec. 5.3).

The paper synthesised the units with Chisel3 + Synopsys DC (TSMC 40 nm)
and used CACTI for the buffer structures; Table 4 reports the resulting
per-unit areas, which we encode directly.  The power side uses the
measured averages the paper states: 2.98 W average across workloads
(4.51 W max, for ALS), against a 100 mm^2 HMC logic layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class ComponentArea:
    """One Table 4 row."""

    name: str
    per_unit_mm2: float
    units: int

    @property
    def total_mm2(self) -> float:
        return self.per_unit_mm2 * self.units


#: Table 4, verbatim.
CHARON_COMPONENTS: List[ComponentArea] = [
    ComponentArea("Command Queue", 0.0049, 4),
    ComponentArea("Request Queue(R)", 0.0015, 4),
    ComponentArea("Request Queue(W)", 0.0162, 4),
    ComponentArea("Metadata Array", 0.0805, 4),
    ComponentArea("Bitmap Cache", 0.1562, 1),
    ComponentArea("TLB", 0.0706, 4),
    ComponentArea("Copy/Search", 0.0223, 8),
    ComponentArea("Bitmap Count", 0.0427, 8),
    ComponentArea("Scan&Push", 0.0720, 8),
]

#: Table 4 totals as printed in the paper.
CHARON_TOTAL_AREA_MM2 = 1.9470
CHARON_AREA_PER_CUBE_MM2 = 0.4868

#: Sec. 5.3 power figures.
CHARON_AVG_POWER_W = 2.98
CHARON_MAX_POWER_W = 4.51
HMC_LOGIC_LAYER_AREA_MM2 = 100.0
#: Max power density of a low-end passive heat sink the paper compares
#: against (Eckert et al., WoNDP'14 ballpark).
PASSIVE_HEATSINK_LIMIT_MW_PER_MM2 = 80.0


def charon_total_area(cubes: int = 4) -> float:
    """Computed total area in mm^2 (should match Table 4's total)."""
    return sum(c.total_mm2 for c in CHARON_COMPONENTS)


def charon_area_per_cube(cubes: int = 4) -> float:
    return charon_total_area(cubes) / cubes


def logic_layer_fraction() -> float:
    """Charon's share of a 100 mm^2 HMC logic layer (paper: 0.49%)."""
    return charon_area_per_cube() / HMC_LOGIC_LAYER_AREA_MM2


def max_power_density_mw_per_mm2() -> float:
    """Worst-case power density of the logic die (paper: 45.1 mW/mm^2).

    The paper divides the maximum power (4.51 W, ALS) by the full
    logic-layer area, since the heat spreads over the die.
    """
    return CHARON_MAX_POWER_W / HMC_LOGIC_LAYER_AREA_MM2 * 1000.0


def thermally_feasible() -> bool:
    return max_power_density_mw_per_mm2() \
        < PASSIVE_HEATSINK_LIMIT_MW_PER_MM2


def charon_area_report() -> List[Dict[str, object]]:
    """Table 4 as report rows."""
    rows: List[Dict[str, object]] = []
    for component in CHARON_COMPONENTS:
        rows.append({
            "component": component.name,
            "per_unit_mm2": component.per_unit_mm2,
            "units": component.units,
            "total_mm2": round(component.total_mm2, 4),
        })
    rows.append({
        "component": "Total",
        "per_unit_mm2": None,
        "units": None,
        "total_mm2": round(charon_total_area(), 4),
    })
    rows.append({
        "component": "Average per cube",
        "per_unit_mm2": None,
        "units": None,
        "total_mm2": round(charon_area_per_cube(), 4),
    })
    return rows
