"""Device introspection: a zsim-style statistics dump for Charon.

Collects every counter the device's structures maintain — per-unit
command/busy figures, TLB lookups, bitmap-cache behaviour, packet
traffic, HMC locality — into plain rows for the report renderer, the
CLI, or test assertions.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.device import CharonDevice
from repro.mem.hmc import HMCSystem


def unit_rows(device: CharonDevice) -> List[Dict[str, object]]:
    """One row per processing unit."""
    rows = []
    for (kind, cube), units in sorted(device.units.items()):
        for unit in units:
            rows.append({
                "unit": f"{kind}#{unit.unit_id}",
                "cube": cube,
                "commands": unit.commands,
                "busy_us": round(unit.busy_time * 1e6, 3),
            })
    return rows


def device_summary(device: CharonDevice) -> Dict[str, object]:
    """Aggregate device counters."""
    tlb_lookups = device.tlbs.total_lookups
    tlb_remote = device.tlbs.total_remote_lookups
    cache = device.bitmap_cache
    return {
        "offloads": device.offloads,
        "request_bytes": device.request_bytes_sent,
        "response_bytes": device.response_bytes_sent,
        "unit_busy_us_total": round(
            device.busy_time_total() * 1e6, 3),
        "tlb_lookups": tlb_lookups,
        "tlb_remote_fraction": round(
            tlb_remote / tlb_lookups, 3) if tlb_lookups else 0.0,
        "bitmap_cache_hit_rate": round(cache.hit_rate, 3),
        "bitmap_count_hit_rate": round(cache.read_hit_rate, 3),
        "bitmap_cache_flushes": sum(s.flushes for s in cache.slices),
    }


def traffic_summary(hmc: HMCSystem) -> Dict[str, object]:
    """Where the bytes went (Fig. 13's raw inputs)."""
    return {
        "tsv_bytes": hmc.tsv_bytes,
        "link_bytes": hmc.link_bytes,
        "host_link_bytes": hmc.host_link.bytes_served,
        "unit_local_bytes": hmc.unit_local_bytes,
        "unit_remote_bytes": hmc.unit_remote_bytes,
        "local_fraction": round(hmc.local_fraction, 3),
        "dram_energy_mj": round(hmc.energy_joules * 1e3, 4),
    }


def full_report(device: CharonDevice) -> str:
    """A printable multi-section device report."""
    from repro.experiments.report import render_table

    sections = [
        render_table([device_summary(device)], title="device"),
        render_table(unit_rows(device), title="units"),
        render_table([traffic_summary(device.hmc)], title="traffic"),
    ]
    return "\n\n".join(sections)
