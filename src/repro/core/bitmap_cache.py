"""The shared bitmap cache (Sec. 4.5).

An 8 KB, 8-way, 32 B-block write-back cache dedicated to mark-bitmap
accesses, shared by the Bitmap Count unit (compaction-phase reads) and
the Scan&Push unit (``mark_obj`` read-modify-writes during marking).
The two phases never overlap, and the cache is flushed after each for
coherence with the host.

The cache's ~90% hit rate is *measured*, not assumed: real tags and LRU
run against the real bitmap addresses from the trace.  Like the TLB,
the single lookup port is a fluid resource so the unified organisation
shows contention at scale (Fig. 15), and off-cube users of the unified
cache pay the serial-link round trip.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cpu.cache import SetAssociativeCache
from repro.sim.resources import FluidResource


class BitmapCache:
    """One physical bitmap cache (unified, or one distributed slice)."""

    PORT_RATE = 1.0e9  # one access per logic-layer cycle

    def __init__(self, name: str, home_cube: int, size_bytes: int,
                 ways: int, line_bytes: int, link_latency_s: float,
                 memory_latency_s: float, enabled: bool = True) -> None:
        self.name = name
        self.home_cube = home_cube
        self.cache = SetAssociativeCache(size_bytes, ways, line_bytes,
                                         name=name)
        self.port = FluidResource(f"{name}.port", rate=self.PORT_RATE)
        self.link_latency_s = link_latency_s
        self.memory_latency_s = memory_latency_s
        #: ablation: with the cache disabled, every access misses (and
        #: still suffers the 16 B minimum-granularity overfetch the
        #: paper describes for mark_obj RMWs).
        self.enabled = enabled
        self.flushes = 0
        # Read accesses are the Bitmap Count unit's; writes are the
        # Scan&Push unit's mark RMWs.  The paper's ~90% figure is for
        # the former, so they are tracked separately.
        self.read_hits = 0
        self.read_accesses = 0

    @property
    def line_bytes(self) -> int:
        return self.cache.line_bytes

    def access(self, now: float, addr: int, is_write: bool,
               from_cube: int) -> Tuple[bool, float]:
        """One bitmap access; returns ``(hit, completion_time)``.

        A miss costs the cube's memory access latency on top of the
        port occupancy; remote users of a unified cache pay the link
        round trip either way.
        """
        if self.enabled:
            hit = self.cache.access(addr, is_write)
        else:
            hit = False
        if not is_write:
            self.read_accesses += 1
            self.read_hits += int(hit)
        finish = self.port.reserve(now, 1)
        if not hit:
            finish += self.memory_latency_s
            if is_write and not self.enabled:
                # An uncached RMW pays the write-back round trip too
                # (a cached write miss allocates and defers it).
                finish += self.memory_latency_s
        if from_cube != self.home_cube:
            finish += 2 * self.link_latency_s
        return hit, finish

    def record_reads(self, accesses: int, hits: int) -> None:
        """Fold a chunk of read-access statistics into the counters.

        The batched replay kernel runs the real tag/LRU state machine
        (``self.cache``) event by event — hit/miss outcomes are order-
        dependent — but accumulates the read counters locally in its
        tight loop and deposits them here once per phase.
        """
        if accesses < 0 or hits < 0 or hits > accesses:
            raise ValueError("inconsistent bitmap-cache read batch")
        self.read_accesses += accesses
        self.read_hits += hits

    def flush(self) -> int:
        """Write back and invalidate (after each MajorGC phase)."""
        self.flushes += 1
        return self.cache.flush()

    @property
    def hit_rate(self) -> float:
        return self.cache.hit_rate

    @property
    def read_hit_rate(self) -> float:
        if not self.read_accesses:
            return 0.0
        return self.read_hits / self.read_accesses


class BitmapCacheComplex:
    """Unified cache on the central cube, or per-cube slices."""

    def __init__(self, cubes: int, central_cube: int, size_bytes: int,
                 ways: int, line_bytes: int, link_latency_s: float,
                 memory_latency_s: float, distributed: bool,
                 enabled: bool = True) -> None:
        self.distributed = distributed
        self.central_cube = central_cube
        if distributed:
            self.slices: List[BitmapCache] = [
                BitmapCache(f"bitmap-cache.cube{cube}", cube, size_bytes,
                            ways, line_bytes, link_latency_s,
                            memory_latency_s, enabled=enabled)
                for cube in range(cubes)
            ]
        else:
            self.slices = [BitmapCache("bitmap-cache.unified",
                                       central_cube, size_bytes, ways,
                                       line_bytes, link_latency_s,
                                       memory_latency_s,
                                       enabled=enabled)]

    def slice_for(self, owner_cube: int) -> BitmapCache:
        """The slice holding data homed on ``owner_cube``."""
        if self.distributed:
            return self.slices[owner_cube]
        return self.slices[0]

    def access(self, now: float, addr: int, is_write: bool,
               from_cube: int, owner_cube: int) -> Tuple[bool, float]:
        return self.slice_for(owner_cube).access(now, addr, is_write,
                                                 from_cube)

    def flush_all(self) -> int:
        return sum(s.flush() for s in self.slices)

    @property
    def hit_rate(self) -> float:
        accesses = sum(s.cache.accesses for s in self.slices)
        hits = sum(s.cache.hits for s in self.slices)
        return hits / accesses if accesses else 0.0

    @property
    def read_hit_rate(self) -> float:
        """Hit rate of the Bitmap Count unit's (read) accesses."""
        accesses = sum(s.read_accesses for s in self.slices)
        hits = sum(s.read_hits for s in self.slices)
        return hits / accesses if accesses else 0.0
