"""Command queues in each cube's logic layer (Fig. 5b).

Arriving offload packets are buffered in a cube-level command queue and
forwarded to the per-primitive queue of the matching unit class; a unit
pulls the head entry when it goes idle.  Functionally these are bounded
FIFOs with occupancy statistics; the timing layer uses the unit
``busy_until`` horizon for queueing delay, and the bounded depth gives
the backpressure point (a full queue stalls the host, which the paper's
blocking intrinsic semantics already imply).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generic, Optional, TypeVar

from repro.errors import DeviceBusyError
from repro.gcalgo.trace import Primitive

T = TypeVar("T")


class BoundedQueue(Generic[T]):
    """A FIFO with a depth limit and high-water statistics."""

    def __init__(self, name: str, depth: int) -> None:
        if depth <= 0:
            raise DeviceBusyError(f"queue {name!r} needs positive depth")
        self.name = name
        self.depth = depth
        self._items: Deque[T] = deque()
        self.enqueued = 0
        self.dequeued = 0
        self.max_occupancy = 0
        self.rejections = 0

    def push(self, item: T) -> None:
        if len(self._items) >= self.depth:
            self.rejections += 1
            raise DeviceBusyError(f"queue {self.name!r} is full")
        self._items.append(item)
        self.enqueued += 1
        if len(self._items) > self.max_occupancy:
            self.max_occupancy = len(self._items)

    def pop(self) -> T:
        if not self._items:
            raise DeviceBusyError(f"queue {self.name!r} is empty")
        self.dequeued += 1
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.depth

    def record_passthrough(self, count: int) -> None:
        """Account ``count`` push/pop pairs without touching the deque.

        The replay paths move every offload through the queue and out
        again within one event (the blocking intrinsic admits one
        in-flight command per GC thread per queue stage), so occupancy
        returns to the pre-event level each time.  The batched kernels
        use this chunk API to advance the statistics for a whole phase
        at once; the resulting counters are identical to ``count``
        individual ``push``/``pop`` round trips through an otherwise
        idle queue.
        """
        if count < 0:
            raise DeviceBusyError("cannot record a negative batch")
        if count == 0:
            return
        self.enqueued += count
        self.dequeued += count
        depth_seen = len(self._items) + 1
        if depth_seen > self.max_occupancy:
            self.max_occupancy = depth_seen


class CubeCommandQueues:
    """The cube-level queue plus one queue per primitive class."""

    def __init__(self, cube: int, depth: int) -> None:
        self.cube = cube
        self.ingress: BoundedQueue = BoundedQueue(
            f"cube{cube}.ingress", depth)
        self.per_primitive: Dict[Primitive, BoundedQueue] = {
            primitive: BoundedQueue(f"cube{cube}.{primitive.value}", depth)
            for primitive in Primitive
        }

    def route(self) -> Optional[Primitive]:
        """Move the ingress head to its per-primitive queue.

        Returns the primitive routed, or ``None`` if ingress is empty.
        """
        if not len(self.ingress):
            return None
        request = self.ingress.pop()
        self.per_primitive[request.primitive].push(request)
        return request.primitive

    def record_batch(self, primitive: Primitive, count: int) -> None:
        """Advance the queue statistics for ``count`` offloads at once.

        Equivalent to ``count`` repetitions of push-to-ingress, route,
        pop-from-the-primitive-queue — the pass each blocking offload
        makes through the cube's buffering (Fig. 5b).
        """
        self.ingress.record_passthrough(count)
        self.per_primitive[primitive].record_passthrough(count)
