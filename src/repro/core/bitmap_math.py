"""The Bitmap Count unit's optimized algorithm (Sec. 4.3, Fig. 9).

The software baseline walks the begin/end bitmaps bit by bit (Fig. 8).
Charon instead computes, over the queried range,

``live words = CountSetBits(endMap - begMap) + CountSetBits(begMap)``

where both maps are interpreted as integers whose bit 0 is the *first*
word of the range (the paper writes ``begMap - endMap``; the sign
convention depends on which end of the bit stream is most significant —
with our little-endian interpretation each begin bit ``i`` pairs with an
end bit ``j >= i`` and ``2^j - 2^i`` contributes exactly the bits
``i..j-1``, so the subtraction runs end-minus-begin).

Because paired intervals are disjoint and ordered, per-pair differences
never borrow across pairs, and the datapath can stream the maps one
64-bit word at a time with a single borrow flip-flop — which is what
:func:`streaming_live_words` models and what the hardware block diagram
in Fig. 6b implements.

Corner cases (the paper notes they are handled but omits details): a
range may begin inside an object (an unmatched end bit) or end inside
one (an unmatched begin bit); the unit virtually begins/closes those
partial objects at the range boundaries so they contribute their
in-range words.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigError

_MASK64 = (1 << 64) - 1

#: 16-bit popcount lookup table — the software analogue of the unit's
#: popcount tree.  Shared by every scalar popcount in the repo (the
#: mark-bitmap oracle delegates here), so the reference path stops
#: paying ``bin(value).count("1")`` string formatting per query.
POPCOUNT16 = bytes(bin(value).count("1") for value in range(1 << 16))

#: Byte-wide table for the arbitrary-precision path: popcounting an
#: n-bit integer is one ``to_bytes`` + one ``translate`` + one ``sum``,
#: all linear in n (the string-formatting path re-rendered the whole
#: integer per call).
_POPCOUNT8 = POPCOUNT16[:256]


def popcount_int(value: int) -> int:
    """Set-bit count of any non-negative int via the lookup tables."""
    if value < 0:
        raise ConfigError("popcount_int takes a non-negative int")
    if value <= _MASK64:
        table = POPCOUNT16
        return (table[value & 0xFFFF]
                + table[(value >> 16) & 0xFFFF]
                + table[(value >> 32) & 0xFFFF]
                + table[value >> 48])
    data = value.to_bytes((value.bit_length() + 7) // 8, "little")
    return sum(data.translate(_POPCOUNT8))


def popcount64(word: int) -> int:
    """Set-bit count of one 64-bit word (the unit's popcount tree)."""
    if not 0 <= word <= _MASK64:
        raise ConfigError("popcount64 takes a 64-bit word")
    return popcount_int(word)


def prepare_range(beg_words: Sequence[int], end_words: Sequence[int],
                  num_bits: int, inside_at_start: bool
                  ) -> Tuple[List[int], List[int]]:
    """Apply the boundary corner cases to a raw bitmap range.

    Returns adjusted copies of the word streams: a virtual begin bit at
    position 0 when the range starts inside an object, and a virtual end
    bit at the final position when the last object extends past the
    range.
    """
    if num_bits <= 0:
        return [], []
    n_words = (num_bits + 63) // 64
    if len(beg_words) != n_words or len(end_words) != n_words:
        raise ConfigError("word streams do not match num_bits")
    beg = [w & _MASK64 for w in beg_words]
    end = [w & _MASK64 for w in end_words]
    # Mask tail bits beyond the range.
    tail_bits = num_bits & 63
    if tail_bits:
        tail_mask = (1 << tail_bits) - 1
        beg[-1] &= tail_mask
        end[-1] &= tail_mask
    if inside_at_start:
        beg[0] |= 1
    n_beg = sum(popcount64(w) for w in beg)
    n_end = sum(popcount64(w) for w in end)
    if n_beg > n_end:
        last = num_bits - 1
        end[last >> 6] |= 1 << (last & 63)
    elif n_end > n_beg:
        raise ConfigError("unmatched end bit: inconsistent bitmaps")
    return beg, end


def streaming_live_words(beg_words: Sequence[int],
                         end_words: Sequence[int], num_bits: int,
                         inside_at_start: bool = False) -> int:
    """Count live words the way the hardware does: word-serial
    subtraction with a borrow flip-flop, popcounting as it goes."""
    beg, end = prepare_range(beg_words, end_words, num_bits,
                             inside_at_start)
    borrow = 0
    count = 0
    for b_word, e_word in zip(beg, end):
        raw = e_word - b_word - borrow
        borrow = 1 if raw < 0 else 0
        count += popcount64(raw & _MASK64) + popcount64(b_word)
    if borrow:
        raise ConfigError("borrow out of the final word: "
                          "inconsistent bitmaps")
    return count


def words_for_bits(num_bits: int) -> int:
    """64-bit bitmap words the unit must fetch for a range (per map)."""
    return (num_bits + 63) // 64
