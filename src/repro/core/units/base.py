"""Shared plumbing for the processing units.

Each unit is a single-command server: offload packets queue at the unit
(FIFO, through the cube's command queues) and execute one at a time.
The unit's execution itself is highly parallel internally — that is the
whole point — but commands are serialised per unit, and the device
schedules each request to the least-busy eligible unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import SystemConfig
from repro.core.bitmap_cache import BitmapCacheComplex
from repro.core.tlb import TLBComplex
from repro.mem.hmc import HMCSystem
from repro.mem.vm import VirtualMemory


@dataclass
class CharonContext:
    """Everything a unit needs to execute: memory system, translation,
    bitmap cache, configuration, and the pinned-page map."""

    config: SystemConfig
    hmc: HMCSystem
    vm: VirtualMemory
    tlbs: TLBComplex
    bitmap_cache: BitmapCacheComplex
    pcid: int = 0
    #: charge clflush probes on the host link (Sec. 4.1); BitmapCount
    #: reads are exempt because the host never writes the bitmaps.
    host_probes: bool = True
    #: Fig. 16 variant: the units sit next to the host's memory
    #: controller, so every access crosses the external serial links
    #: and misses the TSV-side internal bandwidth.
    cpu_side: bool = False

    @property
    def unit_cycle_s(self) -> float:
        return 1.0 / self.config.charon.unit_freq_hz

    def stream(self, now: float, unit_cube: int, target_cube: int,
               nbytes: int, chunk_bytes: int, mlp: float,
               issue_rate: Optional[float] = None,
               dependent_batches: int = 1,
               priority: bool = False) -> float:
        """Bulk transfer from a unit's viewpoint, either placement."""
        if self.cpu_side:
            return self.hmc.host_path(target_cube).stream(
                now, nbytes, chunk_bytes, mlp, issue_rate=issue_rate,
                dependent_batches=dependent_batches, priority=priority)
        return self.hmc.unit_stream(
            now, unit_cube, target_cube, nbytes, chunk_bytes=chunk_bytes,
            mlp=mlp, issue_rate=issue_rate,
            dependent_batches=dependent_batches, priority=priority)

    def split_by_cube(self, start: int, length: int
                      ) -> List[Tuple[int, int, int]]:
        """(run_start, run_length, cube) pieces of an address range."""
        return self.vm.split_range_by_cube(start, length, self.pcid)

    def translate(self, now: float, vaddr: int, from_cube: int
                  ) -> Tuple[int, float]:
        """Accelerator TLB lookup; returns (cube, completion_time)."""
        hint = None
        if self.tlbs.distributed:
            hint = self.vm.cube_of(vaddr, self.pcid)
        return self.tlbs.lookup(now, vaddr, self.pcid, from_cube,
                                target_cube_hint=hint)

    def probe_host(self, now: float, requests: int) -> None:
        """clflush probe traffic toward the host cache hierarchy.

        Probes ride the host serial link (8 B each) and are pipelined —
        they consume link bandwidth but do not extend the primitive's
        critical path (the units continue streaming while probes are in
        flight).
        """
        if self.host_probes and requests > 0:
            self.hmc.host_link.tally(8 * requests)


class ProcessingUnit:
    """Base class: a serialised command server with busy accounting."""

    KIND = "unit"

    def __init__(self, unit_id: int, cube: int,
                 context: CharonContext) -> None:
        self.unit_id = unit_id
        self.cube = cube
        self.context = context
        self.busy_until = 0.0
        self.commands = 0
        self.busy_time = 0.0
        self._release_at: Optional[float] = None

    def dispatch(self, arrival: float, *args, **kwargs) -> float:
        """Queue a command behind earlier ones; returns completion time.

        A unit may release itself before the caller-visible completion
        (e.g. the Copy unit is free once its reads drain, while the
        fire-and-forget writes complete through the MAI); it signals
        that by setting ``_release_at`` during execution.
        """
        start = max(arrival, self.busy_until)
        self._release_at = None
        finish = self.execute(start, *args, **kwargs)
        release = self._release_at
        self.busy_until = release if release is not None else finish
        self.commands += 1
        self.busy_time += self.busy_until - start
        return finish

    def execute(self, start: float, *args, **kwargs) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(id={self.unit_id}, "
                f"cube={self.cube})")
