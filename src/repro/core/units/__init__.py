"""Charon's specialized processing units (Fig. 6)."""

from repro.core.units.base import CharonContext, ProcessingUnit
from repro.core.units.copy_search import CopySearchUnit
from repro.core.units.bitmap_count import BitmapCountUnit
from repro.core.units.scan_push import ScanPushUnit

__all__ = [
    "CharonContext",
    "ProcessingUnit",
    "CopySearchUnit",
    "BitmapCountUnit",
    "ScanPushUnit",
]
