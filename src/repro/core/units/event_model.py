"""An event-driven (cycle-stepped) Copy unit, for model validation.

The replay path times primitives with the fluid-flow approximation
(:class:`~repro.sim.resources.ResourcePath`); this module simulates the
same Copy datapath the *slow* way — every 256-byte request is an event:

* each logic-layer cycle, while the MAI has a free slot and reads
  remain, the unit issues one read (Sec. 4.2's "sends read requests
  ... every cycle ... as long as the MAI can accept the requests");
* the read occupies the TSV bandwidth (a fluid resource models the
  vault service) and completes after the access latency;
* its response immediately issues the store, which again occupies
  bandwidth and frees the MAI slot when it drains.

The test suite asserts the two models agree across sizes and latencies
— that agreement is what justifies using the fast model everywhere
else.  The event-driven unit also exposes MAI occupancy over time,
which the fluid model cannot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.core.mai import MemoryAccessInterface
from repro.sim.engine import Simulator
from repro.sim.resources import FluidResource


@dataclass
class EventDrivenCopyResult:
    """What one simulated copy produced."""

    seconds: float
    reads_issued: int
    writes_issued: int
    max_mai_in_flight: int
    issue_stall_cycles: int

    @property
    def effective_bandwidth(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return (self.reads_issued + self.writes_issued) * 256 \
            / self.seconds


class EventDrivenCopyUnit:
    """Cycle-stepped Copy against one cube's internal path."""

    def __init__(self, mai_entries: int = 32,
                 internal_bandwidth: float = 320e9,
                 access_latency_s: float = 34.4e-9,
                 cycle_s: float = 1e-9,
                 chunk_bytes: int = 256) -> None:
        self.mai_entries = mai_entries
        self.internal_bandwidth = internal_bandwidth
        self.access_latency_s = access_latency_s
        self.cycle_s = cycle_s
        self.chunk_bytes = chunk_bytes

    def simulate(self, size_bytes: int) -> EventDrivenCopyResult:
        """Copy ``size_bytes`` locally; returns the detailed result.

        Reads and writes each have their own request window, matching
        Table 4's separate Request Queue(R) and Request Queue(W); a
        write that finds its window full waits in a small pending list
        and retries as slots drain.
        """
        sim = Simulator()
        read_mai = MemoryAccessInterface(cube=0,
                                         entries=self.mai_entries)
        write_mai = MemoryAccessInterface(cube=0,
                                          entries=self.mai_entries)
        tsv = FluidResource("tsv", rate=self.internal_bandwidth,
                            latency=self.access_latency_s)
        total_reads = max(1, math.ceil(size_bytes / self.chunk_bytes))
        state = {
            "reads_left": total_reads,
            "writes_waiting": 0,
            "writes_done": 0,
            "reads_issued": 0,
            "stalls": 0,
            "finish": 0.0,
        }

        def write_complete(tag: int) -> None:
            write_mai.complete(tag)
            state["writes_done"] += 1
            state["finish"] = sim.now
            pump_writes()

        def pump_writes() -> None:
            while state["writes_waiting"] and write_mai.has_space:
                state["writes_waiting"] -= 1
                tag = write_mai.issue(unit_id=0, addr=0)
                served = tsv.reserve(sim.now, self.chunk_bytes)
                done = served + self.access_latency_s
                sim.schedule_at(done, lambda t=tag: write_complete(t))

        def read_complete(tag: int) -> None:
            read_mai.complete(tag)
            state["writes_waiting"] += 1
            pump_writes()

        def issue_cycle() -> None:
            if state["reads_left"] > 0:
                if read_mai.has_space:
                    tag = read_mai.issue(unit_id=0,
                                         addr=state["reads_issued"]
                                         * self.chunk_bytes)
                    state["reads_issued"] += 1
                    state["reads_left"] -= 1
                    served = tsv.reserve(sim.now, self.chunk_bytes)
                    done = served + self.access_latency_s
                    sim.schedule_at(done, lambda t=tag: read_complete(t))
                else:
                    state["stalls"] += 1
                sim.schedule(self.cycle_s, issue_cycle)

        sim.schedule(0.0, issue_cycle)
        sim.run()
        return EventDrivenCopyResult(
            seconds=state["finish"],
            reads_issued=state["reads_issued"],
            writes_issued=state["writes_done"],
            max_mai_in_flight=max(read_mai.max_in_flight,
                                  write_mai.max_in_flight),
            issue_stall_cycles=state["stalls"],
        )

    def fluid_estimate(self, size_bytes: int) -> float:
        """The fast model's time for the same copy (for comparison)."""
        from repro.sim.resources import ResourcePath

        tsv = FluidResource("tsv", rate=self.internal_bandwidth,
                            latency=self.access_latency_s)
        path = ResourcePath([tsv])
        read_done = path.stream(0.0, size_bytes,
                                chunk_bytes=self.chunk_bytes,
                                mlp=self.mai_entries,
                                issue_rate=1.0 / self.cycle_s)
        # Writes issue as read responses return: the write stream
        # starts one access latency behind the reads, exactly as the
        # production Copy unit models it.
        write_done = path.stream(self.access_latency_s, size_bytes,
                                 chunk_bytes=self.chunk_bytes,
                                 mlp=self.mai_entries,
                                 issue_rate=1.0 / self.cycle_s)
        return max(read_done, write_done)
