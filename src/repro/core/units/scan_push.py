"""The Scan&Push unit (Sec. 4.4, Fig. 6c, Fig. 11).

The unit receives an object's type and metadata extent, picks the
iteration strategy for that klass, and — knowing the reference count up
front — issues the whole batch of referee loads one per cycle.  Each
response triggers the dependent action: ``minor_stack.push`` or a card
metadata update in MinorGC; an ``is_unmarked`` check followed by
``mark_obj`` (an atomic RMW through the bitmap cache) and
``major_stack.push`` in MajorGC.

This primitive is always scheduled to the central cube: its referee
loads scatter across the whole heap, and the central position minimises
expected hops (Sec. 4.4).  The win over the host comes purely from
memory-level parallelism on the batch of independent referee loads —
with few references per object the fixed offload cost dominates and the
primitive can lose to the host, exactly the behaviour Fig. 14 shows for
the Spark ML workloads.
"""

from __future__ import annotations


from repro.core.units.base import ProcessingUnit
from repro.units import CACHE_LINE


class ScanPushUnit(ProcessingUnit):
    """Object-graph traversal step for one scanned object."""

    KIND = "scan_push"

    def execute(self, start: float, obj_addr: int, refs: int,
                pushes: int, gc_kind: str,
                mark_bitmap_base: int = 0,
                bitmap_covered_start: int = 0,
                bitmap_covered_bytes: int = 0) -> float:
        ctx = self.context
        if refs <= 0:
            return start + 2 * ctx.unit_cycle_s
        _, finish = ctx.translate(start, obj_addr, self.cube)

        # Read the object's reference slots (sequential, usually one or
        # two 256B requests on the object's home cube).
        slot_bytes = refs * 8
        obj_cube = ctx.vm.cube_of(obj_addr, ctx.pcid)
        finish = ctx.stream(
            finish, self.cube, obj_cube, max(CACHE_LINE, slot_bytes),
            chunk_bytes=256, mlp=ctx.config.charon.mai_entries_per_cube,
            issue_rate=ctx.config.charon.unit_freq_hz, priority=True)

        # Batch of referee header loads: one issued per cycle, spread
        # across the cubes (referenced objects scatter over the
        # interleaved heap), bounded by the MAI window.
        mlp = ctx.config.charon.mai_entries_per_cube
        cubes = ctx.config.hmc.cubes
        per_cube = [refs // cubes] * cubes
        for extra in range(refs % cubes):
            per_cube[extra] += 1
        load_finish = finish
        for cube, count in enumerate(per_cube):
            if count == 0:
                continue
            load_finish = max(load_finish, ctx.stream(
                finish, self.cube, cube, count * CACHE_LINE,
                chunk_bytes=CACHE_LINE, mlp=mlp,
                issue_rate=ctx.config.charon.unit_freq_hz,
                priority=True))

        # Dependent actions ride behind the last responses, pipelined
        # one per cycle; marking adds a bitmap-cache RMW per push.
        finish = load_finish + pushes * ctx.unit_cycle_s
        marking = gc_kind in ("major", "g1", "concurrent")
        if marking and pushes and bitmap_covered_bytes > 0:
            # The trace does not record each referee address, so their
            # bitmap lines are synthesised deterministically: newly
            # marked referees cluster by allocation locality (objects
            # allocated together are referenced together), so each
            # scanned object's pushes land in a compact window at a
            # hashed base, spanning a fresh region every few dozen
            # objects — the pattern that gives the bitmap cache its
            # strong temporal locality (Sec. 4.5).
            window_base = ((obj_addr >> 14) * 2654435761) \
                % max(1, bitmap_covered_bytes)
            for index in range(pushes):
                target_offset = (window_base + (obj_addr & 0x3FF0)
                                 + index * 64) % bitmap_covered_bytes
                # One mark bit covers an 8-byte heap word, so a heap
                # offset maps to bitmap byte offset // 64.
                line_addr = mark_bitmap_base + target_offset // 64
                owner = ctx.vm.cube_of(line_addr, ctx.pcid)
                _, done = ctx.bitmap_cache.access(
                    finish, line_addr, is_write=True,
                    from_cube=self.cube, owner_cube=owner)
                finish = max(finish, done)
        # Stack pushes / card metadata updates are stores the MAI
        # absorbs; probe the host for the referee loads.
        ctx.probe_host(finish, refs)
        return finish
