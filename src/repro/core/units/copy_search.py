"""The Copy/Search unit (Sec. 4.2, Fig. 6a, Fig. 7).

Both primitives are embarrassingly parallel streams.  As soon as a
command packet arrives, the unit issues 256-byte read requests — one per
cycle — for as long as the MAI accepts them; responses either turn into
store requests (*Copy*) or feed the comparator (*Search*, which
early-exits on the first non-clean block).  The unit is scheduled to the
cube housing the source range, so most traffic rides the local TSVs.
"""

from __future__ import annotations

import math

from repro.core.units.base import ProcessingUnit
from repro.units import HMC_MAX_REQUEST


class CopySearchUnit(ProcessingUnit):
    """Streams copies and card-table searches at HMC granularity."""

    KIND = "copy_search"

    def execute(self, start: float, primitive: str, src: int, dst: int,
                size_bytes: int, found: bool = False) -> float:
        if primitive == "copy":
            return self._copy(start, src, dst, size_bytes)
        if primitive == "search":
            return self._search(start, src, size_bytes, found)
        raise ValueError(f"unknown primitive {primitive!r}")

    # -- Copy ---------------------------------------------------------------

    def _copy(self, start: float, src: int, dst: int,
              size_bytes: int) -> float:
        ctx = self.context
        chunk = ctx.config.charon.request_granularity
        mlp = ctx.config.charon.mai_entries_per_cube
        issue_rate = ctx.config.charon.unit_freq_hz
        if size_bytes <= 0:
            return start + ctx.unit_cycle_s

        # Address translation: one TLB lookup per huge page crossed.
        finish = start
        for vaddr in (src, dst):
            _, t_done = ctx.translate(start, vaddr, self.cube)
            finish = max(finish, t_done)

        # Read stream from the source, write stream to the destination.
        # Stores issue as read responses return, so the write stream
        # starts one access latency behind the reads (the event-driven
        # model in core.units.event_model validates this offset); from
        # there the two streams pipeline concurrently.
        read_finish = finish
        for run_start, run_len, cube in ctx.split_by_cube(src, size_bytes):
            read_finish = max(read_finish, ctx.stream(
                finish, self.cube, cube, run_len, chunk_bytes=chunk,
                mlp=mlp, issue_rate=issue_rate))
        first_response = finish + ctx.config.hmc.access_latency_s
        write_finish = first_response
        for run_start, run_len, cube in ctx.split_by_cube(dst, size_bytes):
            write_finish = max(write_finish, ctx.stream(
                first_response, self.cube, cube, run_len,
                chunk_bytes=chunk, mlp=mlp, issue_rate=issue_rate))

        requests = 2 * math.ceil(size_bytes / chunk)
        ctx.probe_host(finish, requests)
        # The unit is free to take the next command once its reads have
        # drained; the writes complete fire-and-forget through the MAI.
        self._release_at = read_finish
        return max(read_finish, write_finish)

    # -- Search --------------------------------------------------------------

    def _search(self, start: float, range_start: int, size_bytes: int,
                found: bool) -> float:
        """Scan ``size_bytes`` of card table for a non-clean byte.

        On a hit the unit stops at the matching block; we charge the
        expected half of the range (the trace records whether the block
        contained a dirty card).  The comparator checks 32 bytes per
        cycle.
        """
        ctx = self.context
        _, finish = ctx.translate(start, range_start, self.cube)
        examined = max(32, size_bytes // 2 if found else size_bytes)
        chunk = min(HMC_MAX_REQUEST, max(32, examined))
        mlp = ctx.config.charon.mai_entries_per_cube
        for run_start, run_len, cube in ctx.split_by_cube(
                range_start, examined):
            finish = max(finish, ctx.stream(
                finish, self.cube, cube, run_len, chunk_bytes=chunk,
                mlp=mlp, issue_rate=ctx.config.charon.unit_freq_hz))
        compare_cycles = math.ceil(examined / 32)
        finish += compare_cycles * ctx.unit_cycle_s
        ctx.probe_host(finish, math.ceil(examined / chunk))
        return finish
