"""The Bitmap Count unit (Sec. 4.3, Fig. 6b).

The unit receives the range's start/end addresses; the begin-map words
come from ``bitmap_base + bit_offset/8`` and the end-map words from a
constant ``OFFSET`` further (configured once by ``initialize()``).  It
knows the exact word count up front, so it issues all bitmap reads
immediately, runs them through the bitmap cache, and streams the
returned words through the subtract-and-popcount datapath
(:mod:`repro.core.bitmap_math`) at one word per cycle.

No clflush probes are sent: the accesses are reads of a structure the
host-side GC code never updates during compaction (Sec. 4.1).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.bitmap_math import streaming_live_words, words_for_bits
from repro.core.units.base import ProcessingUnit
from repro.units import WORD


class BitmapCountUnit(ProcessingUnit):
    """Executes ``live_words_in_range`` against the mark bitmaps."""

    KIND = "bitmap_count"

    def execute(self, start: float, bitmap_base: int, bitmap_bytes: int,
                bit_offset: int, num_bits: int) -> float:
        """Timing for one range count.

        ``bitmap_base`` is the begin map's address, ``bitmap_bytes`` the
        per-map size (so the end map's words sit at ``+ bitmap_bytes``),
        ``bit_offset`` the range's first bit within the map.
        """
        ctx = self.context
        if num_bits <= 0:
            return start + ctx.unit_cycle_s
        _, finish = ctx.translate(start, bitmap_base, self.cube)

        words = words_for_bits(num_bits)
        line = ctx.bitmap_cache.slice_for(self.cube).line_bytes \
            if ctx.bitmap_cache.distributed \
            else ctx.bitmap_cache.slices[0].line_bytes
        byte_lo = bit_offset // 8
        byte_hi = byte_lo + words * WORD
        # Every distinct cache line of both maps is looked up once; the
        # datapath consumes words as lines return, so completion is the
        # slowest line plus the popcount pipeline drain.
        last_line_done = finish
        for map_base in (bitmap_base, bitmap_base + bitmap_bytes):
            first_line = (map_base + byte_lo) // line
            last_line = (map_base + byte_hi - 1) // line
            for line_index in range(first_line, last_line + 1):
                line_addr = line_index * line
                owner = ctx.vm.cube_of(line_addr, ctx.pcid)
                _, done = ctx.bitmap_cache.access(
                    finish, line_addr, is_write=False,
                    from_cube=self.cube, owner_cube=owner)
                last_line_done = max(last_line_done, done)
        pipeline = words * ctx.unit_cycle_s
        return last_line_done + pipeline

    # -- functional datapath (for verification) ---------------------------------

    @staticmethod
    def count(beg_words: Sequence[int], end_words: Sequence[int],
              num_bits: int, inside_at_start: bool = False) -> int:
        """The value the datapath returns (hardware algorithm)."""
        return streaming_live_words(beg_words, end_words, num_bits,
                                    inside_at_start)
