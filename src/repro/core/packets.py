"""Offload request/response packets (Sec. 4.1).

The request is 48 bytes: a 16-byte HMC header/tail (carrying the
destination cube id), a 4-bit primitive type, two 8-byte addresses, and
up to 124 bits of extra operands.  The response is 32 bytes when it
carries a return value and 16 bytes otherwise.  We encode/decode real
byte strings so the wire format is testable, and the platform layer
charges the exact packet sizes to the serial links.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import PacketError
from repro.gcalgo.trace import PRIMITIVE_TYPE_CODES, Primitive

REQUEST_BYTES = 48
RESPONSE_BYTES_VALUE = 32
RESPONSE_BYTES_NOVALUE = 16

_CODE_TO_PRIMITIVE = {code: prim
                      for prim, code in PRIMITIVE_TYPE_CODES.items()}

# Layout: header (8B: magic u16, dest cube u8, type u8, pcid u32),
# src addr (8B), dst addr (8B), arg (16B = 124-bit operand budget,
# 4 bits reserved), tail (8B CRC stand-in).
_REQUEST_FMT = "<HBBIQQ16sQ"
_MAGIC = 0xC4A0


@dataclass(frozen=True)
class OffloadRequest:
    """One ``offload(type, src, dst, arg)`` intrinsic invocation."""

    primitive: Primitive
    dest_cube: int
    src: int
    dst: int
    arg: int = 0
    pcid: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.dest_cube < 256:
            raise PacketError("destination cube does not fit the header")
        if self.arg < 0 or self.arg >= 1 << 124:
            raise PacketError("arg exceeds the 124-bit operand budget")
        for name in ("src", "dst"):
            value = getattr(self, name)
            if value < 0 or value >= 1 << 64:
                raise PacketError(f"{name} is not a 64-bit address")

    @property
    def type_code(self) -> int:
        return PRIMITIVE_TYPE_CODES[self.primitive]

    def encode(self) -> bytes:
        packet = struct.pack(
            _REQUEST_FMT, _MAGIC, self.dest_cube, self.type_code,
            self.pcid, self.src, self.dst,
            self.arg.to_bytes(16, "little"), 0)
        if len(packet) != REQUEST_BYTES:
            raise PacketError(
                f"request packed to {len(packet)} bytes, want 48")
        return packet

    @staticmethod
    def decode(packet: bytes) -> "OffloadRequest":
        if len(packet) != REQUEST_BYTES:
            raise PacketError(f"request packet must be {REQUEST_BYTES} "
                              f"bytes, got {len(packet)}")
        magic, cube, code, pcid, src, dst, arg_bytes, _tail = struct.unpack(
            _REQUEST_FMT, packet)
        if magic != _MAGIC:
            raise PacketError("bad request magic")
        try:
            primitive = _CODE_TO_PRIMITIVE[code]
        except KeyError:
            raise PacketError(f"unknown primitive code {code}") from None
        return OffloadRequest(primitive=primitive, dest_cube=cube,
                              src=src, dst=dst,
                              arg=int.from_bytes(arg_bytes, "little"),
                              pcid=pcid)


_RESPONSE_FMT = "<HBBIQ"  # magic, cube, flags, status, value


@dataclass(frozen=True)
class OffloadResponse:
    """The return packet; 32 bytes with a value, 16 without."""

    source_cube: int
    has_value: bool
    value: int = 0

    @property
    def size_bytes(self) -> int:
        return RESPONSE_BYTES_VALUE if self.has_value \
            else RESPONSE_BYTES_NOVALUE

    def encode(self) -> bytes:
        body = struct.pack(_RESPONSE_FMT, _MAGIC, self.source_cube,
                           1 if self.has_value else 0, 0,
                           self.value if self.has_value else 0)
        return body.ljust(self.size_bytes, b"\x00")

    @staticmethod
    def decode(packet: bytes) -> "OffloadResponse":
        if len(packet) not in (RESPONSE_BYTES_VALUE,
                               RESPONSE_BYTES_NOVALUE):
            raise PacketError(f"bad response size {len(packet)}")
        magic, cube, flags, _status, value = struct.unpack(
            _RESPONSE_FMT, packet[:16])
        if magic != _MAGIC:
            raise PacketError("bad response magic")
        has_value = bool(flags & 1)
        if has_value and len(packet) != RESPONSE_BYTES_VALUE:
            raise PacketError("value response must be 32 bytes")
        return OffloadResponse(source_cube=cube, has_value=has_value,
                               value=value if has_value else 0)
