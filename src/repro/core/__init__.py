"""Charon: the near-memory GC accelerator (the paper's contribution).

The device sits in the logic layer of each HMC cube (Fig. 5b) and
executes the offloaded primitives:

* :mod:`~repro.core.units.copy_search` — the Copy/Search unit (Fig. 6a);
* :mod:`~repro.core.units.bitmap_count` — the Bitmap Count unit
  (Fig. 6b) with the optimized subtract-and-popcount algorithm
  (:mod:`~repro.core.bitmap_math`);
* :mod:`~repro.core.units.scan_push` — the Scan&Push unit (Fig. 6c).

Shared structures: per-primitive command queues, the Memory Access
Interface (MSHR-like request buffer), the accelerator-side TLB over
pinned huge pages, and the 8 KB bitmap cache.  The host talks to the
device through the two intrinsics of Sec. 4.1 (``initialize`` and
``offload``) carried in 48-byte request / 16-32-byte response packets.
"""

from repro.core.packets import OffloadRequest, OffloadResponse
from repro.core.device import CharonDevice
from repro.core.intrinsics import CharonRuntime
from repro.core.area_power import charon_area_report, CHARON_TOTAL_AREA_MM2

__all__ = [
    "OffloadRequest",
    "OffloadResponse",
    "CharonDevice",
    "CharonRuntime",
    "charon_area_report",
    "CHARON_TOTAL_AREA_MM2",
]
