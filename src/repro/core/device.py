"""The Charon device: per-cube unit farms behind the offload interface.

:class:`CharonDevice` glues together the processing units, the MAI, the
TLB complex, the bitmap cache, and the request routing/scheduling
policies of Sec. 4:

* Copy and Search are scheduled to the cube housing the source range;
* Scan&Push goes to the central cube (the paper's placement; an
  ablation knob routes it to the object's cube instead);
* Bitmap Count goes to the cube the queried bitmap range lives on;
* within a (cube, primitive) unit class, the least-busy unit wins.

:meth:`offload_event` replays one trace event: request packet over the
links, queueing at the unit, execution, response packet back.  The
returned time is when the (blocked) host thread resumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig
from repro.core.bitmap_cache import BitmapCacheComplex
from repro.core.command_queue import CubeCommandQueues
from repro.core.mai import MemoryAccessInterface
from repro.core.tlb import TLBComplex
from repro.core.units import (BitmapCountUnit, CharonContext, CopySearchUnit,
                              ProcessingUnit, ScanPushUnit)
from repro.errors import ConfigError
from repro.gcalgo.trace import Primitive, TraceEvent
from repro.mem.hmc import HMCSystem
from repro.mem.vm import VirtualMemory
from repro.units import WORD


@dataclass(frozen=True)
class HeapInfo:
    """The globally-accessed addresses ``initialize()`` configures
    (Sec. 4.1): heap bounds, bitmap base/size, card-table base."""

    heap_start: int
    heap_end: int
    bitmap_base: int
    bitmap_bytes: int
    bitmap_covered_start: int
    card_table_base: int


class CharonDevice:
    """All Charon logic-layer structures across the cube network."""

    def __init__(self, config: SystemConfig, hmc: HMCSystem,
                 vm: VirtualMemory, pcid: int = 0,
                 cpu_side: bool = False) -> None:
        config.validate()
        self.config = config
        self.hmc = hmc
        self.cpu_side = cpu_side
        cubes = 1 if cpu_side else config.hmc.cubes
        central = 0 if cpu_side else config.hmc.central_cube
        link_latency = 0.0 if cpu_side else config.hmc.link_latency_s
        distributed = config.charon.distributed and not cpu_side

        self.tlbs = TLBComplex(cubes=cubes, central_cube=central,
                               link_latency_s=link_latency,
                               distributed=distributed)
        self.bitmap_cache = BitmapCacheComplex(
            cubes=cubes, central_cube=central,
            size_bytes=config.charon.bitmap_cache_bytes,
            ways=config.charon.bitmap_cache_ways,
            line_bytes=config.charon.bitmap_cache_line,
            link_latency_s=link_latency,
            memory_latency_s=config.hmc.access_latency_s,
            distributed=distributed,
            enabled=config.charon.bitmap_cache_enabled)
        self.context = CharonContext(
            config=config, hmc=hmc, vm=vm, tlbs=self.tlbs,
            bitmap_cache=self.bitmap_cache, pcid=pcid,
            host_probes=not cpu_side, cpu_side=cpu_side)
        self.mais = [MemoryAccessInterface(
            cube, config.charon.mai_entries_per_cube)
            for cube in range(cubes)]

        self.units: Dict[Tuple[str, int], List[ProcessingUnit]] = {}
        next_id = 0
        per_cube_cs = max(1, config.charon.copy_search_units // cubes)
        per_cube_bc = max(1, config.charon.bitmap_count_units // cubes)
        for cube in range(cubes):
            self.units[("copy_search", cube)] = [
                CopySearchUnit(next_id + i, cube, self.context)
                for i in range(per_cube_cs)]
            next_id += per_cube_cs
            self.units[("bitmap_count", cube)] = [
                BitmapCountUnit(next_id + i, cube, self.context)
                for i in range(per_cube_bc)]
            next_id += per_cube_bc
        if config.charon.scan_push_local and not cpu_side:
            # Ablation: spread the Scan&Push units across the cubes and
            # route each scan to the scanned object's cube.
            per_cube_sp = max(1, config.charon.scan_push_units // cubes)
            for cube in range(cubes):
                self.units[("scan_push", cube)] = [
                    ScanPushUnit(next_id + i, cube, self.context)
                    for i in range(per_cube_sp)]
                next_id += per_cube_sp
        else:
            self.units[("scan_push", central)] = [
                ScanPushUnit(next_id + i, central, self.context)
                for i in range(max(1, config.charon.scan_push_units))]
        self.central = central
        self.queues = [CubeCommandQueues(cube,
                                         config.charon.command_queue_depth)
                       for cube in range(cubes)]
        self.heap_info: Optional[HeapInfo] = None
        self.offloads = 0
        self.request_bytes_sent = 0
        self.response_bytes_sent = 0

    # -- intrinsic: initialize() ------------------------------------------------

    def initialize(self, heap_info: HeapInfo, vm: VirtualMemory,
                   pcid: int = 0) -> int:
        """Configure the memory-mapped registers and preload the TLBs.

        Returns the number of TLB entries duplicated DRAM-side.
        """
        self.heap_info = heap_info
        return self.tlbs.load_from(vm, pcid)

    # -- routing helpers ----------------------------------------------------------

    def _unit_for(self, kind: str, cube: int) -> ProcessingUnit:
        key = (kind, cube)
        if key not in self.units:
            raise ConfigError(f"no {kind} units on cube {cube}")
        return min(self.units[key], key=lambda u: u.busy_until)

    def _target_cube(self, event: TraceEvent) -> int:
        if self.cpu_side:
            return 0
        vm = self.context.vm
        if event.primitive is Primitive.SCAN_PUSH:
            if self.config.charon.scan_push_local:
                return vm.cube_of(event.src, self.context.pcid)
            return self.central
        if event.primitive is Primitive.BITMAP_COUNT:
            addr = self._bitmap_addr(event.src)
            return vm.cube_of(addr, self.context.pcid)
        return vm.cube_of(event.src, self.context.pcid)

    def _bitmap_addr(self, heap_addr: int) -> int:
        info = self._require_init()
        bit_index = (heap_addr - info.bitmap_covered_start) // WORD
        return info.bitmap_base + bit_index // 8

    def _require_init(self) -> HeapInfo:
        if self.heap_info is None:
            raise ConfigError("Charon was not initialize()d")
        return self.heap_info

    # -- intrinsic: offload() -----------------------------------------------------

    def offload_event(self, now: float, event: TraceEvent,
                      gc_kind: str) -> float:
        """Replay one primitive as a blocking offload.

        Returns the time the host thread unblocks (response received).
        """
        info = self._require_init()
        cube = self._target_cube(event)

        # Request packet: 48B over the host link, plus a cube-to-cube
        # hop when the destination is not the central cube.
        arrival = self._send_request(now, cube)

        if event.primitive is Primitive.COPY:
            unit = self._unit_for("copy_search", cube)
            done = unit.dispatch(arrival, "copy", event.src, event.dst,
                                 event.size_bytes)
            has_value = False
        elif event.primitive is Primitive.SEARCH:
            unit = self._unit_for("copy_search", cube)
            done = unit.dispatch(arrival, "search", event.src, 0,
                                 event.size_bytes, event.found)
            has_value = True
        elif event.primitive is Primitive.SCAN_PUSH:
            unit = self._unit_for("scan_push", cube)
            covered = info.heap_end - info.bitmap_covered_start
            done = unit.dispatch(arrival, event.src, event.refs,
                                 event.pushes, gc_kind,
                                 mark_bitmap_base=info.bitmap_base,
                                 bitmap_covered_start=info.bitmap_covered_start,
                                 bitmap_covered_bytes=covered)
            has_value = True
        elif event.primitive is Primitive.BITMAP_COUNT:
            unit = self._unit_for("bitmap_count", cube)
            bit_offset = (event.src - info.bitmap_covered_start) // WORD
            done = unit.dispatch(arrival, info.bitmap_base,
                                 info.bitmap_bytes, bit_offset,
                                 event.bits)
            has_value = True
        else:  # pragma: no cover - enum is exhaustive
            raise ConfigError(f"unknown primitive {event.primitive}")

        self.offloads += 1
        self.queues[cube].record_batch(event.primitive, 1)
        return self._send_response(done, cube, has_value)

    def _send_request(self, now: float, cube: int) -> float:
        size = self.config.charon.request_packet_bytes
        self.request_bytes_sent += size
        if self.cpu_side:
            # On-chip accelerator: the request is a register write.
            return now
        # Command packets are tiny and interleave ahead of bulk streams;
        # they pay serialisation + link latency but no stream queueing.
        finish = now + self.hmc.host_link.tally(size) \
            + self.hmc.host_link.latency
        for link in self.hmc._link_chain(self.central, cube):
            finish += link.tally(size) + link.latency
        return finish

    def _send_response(self, now: float, cube: int,
                       has_value: bool) -> float:
        size = (self.config.charon.response_packet_bytes if has_value
                else self.config.charon.response_packet_bytes_noval)
        self.response_bytes_sent += size
        if self.cpu_side:
            return now
        finish = now
        for link in self.hmc._link_chain(cube, self.central):
            finish += link.tally(size) + link.latency
        return finish + self.hmc.host_link.tally(size) \
            + self.hmc.host_link.latency

    # -- batched state advancement ------------------------------------------------

    def record_offload_batch(self, cube: int, primitive: Primitive,
                             count: int, has_value: bool) -> None:
        """Account ``count`` offloads routed to one cube in bulk.

        The batched replay kernel advances the order-independent device
        counters (offload tally, packet byte totals, command-queue
        statistics) for a whole phase chunk at once; the order-dependent
        unit and link timing state is advanced separately, event by
        event, in its stage-2 loop.
        """
        if count <= 0:
            return
        self.offloads += count
        self.request_bytes_sent += \
            self.config.charon.request_packet_bytes * count
        size = (self.config.charon.response_packet_bytes if has_value
                else self.config.charon.response_packet_bytes_noval)
        self.response_bytes_sent += size * count
        self.queues[cube].record_batch(primitive, count)

    # -- phase hooks -----------------------------------------------------------------

    def phase_completed(self, phase: str) -> int:
        """Flush the bitmap cache after a MajorGC phase (Sec. 4.5)."""
        if phase in ("mark", "adjust", "compact"):
            return self.bitmap_cache.flush_all()
        return 0

    # -- statistics --------------------------------------------------------------------

    def all_units(self) -> List[ProcessingUnit]:
        return [unit for units in self.units.values() for unit in units]

    def busy_time_total(self) -> float:
        return sum(unit.busy_time for unit in self.all_units())

    def reset_unit_clocks(self) -> None:
        """Zero unit horizons between independent experiments."""
        for unit in self.all_units():
            unit.busy_until = 0.0
