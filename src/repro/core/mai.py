"""Memory Access Interface (Sec. 4.1).

The MAI is the MSHR-analogue of the logic layer: a unit hands it an
address, its unit id and optional request metadata; the MAI parks the
metadata in a free request-buffer slot, tags the memory request with the
slot index, and on completion returns the metadata to the requesting
unit.  Its finite buffer is what bounds a cube's outstanding-request
parallelism — the number the units' streaming loops are allowed to keep
in flight (Table 2: 32 entries per cube).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.errors import DeviceBusyError


@dataclass
class MAIEntry:
    """One occupied request-buffer slot."""

    tag: int
    unit_id: int
    addr: int
    metadata: Any = None


class MemoryAccessInterface:
    """Per-cube request buffer with tag allocation."""

    def __init__(self, cube: int, entries: int) -> None:
        if entries <= 0:
            raise DeviceBusyError("MAI needs at least one entry")
        self.cube = cube
        self.entries = entries
        self._slots: Dict[int, MAIEntry] = {}
        self._free = list(range(entries - 1, -1, -1))
        self.issued = 0
        self.completed = 0
        self.max_in_flight = 0
        self.full_stalls = 0

    @property
    def in_flight(self) -> int:
        return len(self._slots)

    @property
    def has_space(self) -> bool:
        return bool(self._free)

    def issue(self, unit_id: int, addr: int,
              metadata: Any = None) -> int:
        """Allocate a slot for a request; returns its tag.

        Raises :class:`DeviceBusyError` when the buffer is full — the
        unit's issue loop stalls until a response frees a slot
        ("as long as the MAI can accept the requests", Sec. 4.2).
        """
        if not self._free:
            self.full_stalls += 1
            raise DeviceBusyError(f"MAI on cube {self.cube} is full")
        tag = self._free.pop()
        self._slots[tag] = MAIEntry(tag=tag, unit_id=unit_id, addr=addr,
                                    metadata=metadata)
        self.issued += 1
        if self.in_flight > self.max_in_flight:
            self.max_in_flight = self.in_flight
        return tag

    def complete(self, tag: int) -> MAIEntry:
        """Retire the request with ``tag``; returns its entry."""
        try:
            entry = self._slots.pop(tag)
        except KeyError:
            raise DeviceBusyError(f"MAI tag {tag} is not in flight") \
                from None
        self._free.append(tag)
        self.completed += 1
        return entry

    def effective_mlp(self) -> int:
        """The parallelism the MAI affords a streaming unit."""
        return self.entries
