"""Accelerator-side TLB (Sec. 4.6).

At application launch the heap's pinned huge pages are duplicated into
DRAM-side TLB entries, so steady-state execution sees no accelerator TLB
misses or page faults.  Entries are tagged with the process-context id
(PCID), giving multi-process isolation for free, and non-pinned pages
are simply absent — an access outside the pinned heap faults, which is
the admission-control behaviour the paper describes.

Two physical organisations exist (Sec. 4.6 / Fig. 15):

* **unified** — one TLB on the central cube; lookups from other cubes
  cross a serial link both ways and contend for the single port;
* **distributed** — a slice per cube holding only that cube's local
  pages, so local lookups stay on-cube; a lookup for a remote page is
  answered by the owning cube's slice.

The port is a fluid resource so Fig. 15's contention effects emerge.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ProtectionFault
from repro.mem.vm import VirtualMemory
from repro.sim.resources import FluidResource


class AcceleratorTLB:
    """One TLB structure (the unified TLB, or one distributed slice)."""

    #: single-ported lookup pipeline: one lookup per logic-layer cycle.
    PORT_RATE = 1.0e9

    def __init__(self, name: str, home_cube: int,
                 link_latency_s: float) -> None:
        self.name = name
        self.home_cube = home_cube
        self.link_latency_s = link_latency_s
        self.entries: Dict[Tuple[int, int], int] = {}  # (pcid, page) -> cube
        self.port = FluidResource(f"{name}.port", rate=self.PORT_RATE)
        self.lookups = 0
        self.remote_lookups = 0
        self._page_sizes: List[int] = []

    def load_from(self, vm: VirtualMemory, pcid: int = 0,
                  only_cube: Optional[int] = None) -> int:
        """Duplicate pinned page entries from the OS page table.

        Entries cover both page-size classes (huge heap pages and the
        finer metadata pages).  ``only_cube`` restricts loading to
        pages homed on one cube (the distributed organisation).
        Returns the entry count loaded.
        """
        loaded = 0
        sizes = set(self._page_sizes)
        for mapping in vm.pinned_pages(pcid):
            if only_cube is not None and mapping.cube != only_cube:
                continue
            self.entries[(pcid, mapping.vaddr)] = mapping.cube
            sizes.add(mapping.page_bytes)
            loaded += 1
        self._page_sizes = sorted(sizes)
        return loaded

    def lookup(self, now: float, vaddr: int, pcid: int,
               from_cube: int) -> Tuple[int, float]:
        """Translate; returns ``(cube, completion_time)``.

        The lookup occupies the port; callers off-cube pay the link
        round trip.  A missing entry is a protection fault (pinned
        pages never miss; anything else is not Charon-accessible).
        """
        if not self._page_sizes:
            raise ProtectionFault(f"TLB {self.name} was never loaded")
        cube = None
        for page_bytes in self._page_sizes:
            key = (pcid, vaddr - (vaddr % page_bytes))
            if key in self.entries:
                cube = self.entries[key]
                break
        if cube is None:
            raise ProtectionFault(
                f"accelerator TLB {self.name}: no pinned mapping for "
                f"{vaddr:#x} (pcid {pcid})")
        self.lookups += 1
        finish = self.port.reserve(now, 1)
        if from_cube != self.home_cube:
            self.remote_lookups += 1
            finish += 2 * self.link_latency_s
        return cube, finish


class TLBComplex:
    """The system's TLB organisation: unified or distributed slices."""

    def __init__(self, cubes: int, central_cube: int,
                 link_latency_s: float, distributed: bool) -> None:
        self.distributed = distributed
        self.central_cube = central_cube
        if distributed:
            self.slices = [
                AcceleratorTLB(f"tlb.cube{cube}", cube, link_latency_s)
                for cube in range(cubes)
            ]
        else:
            self.slices = [AcceleratorTLB("tlb.unified", central_cube,
                                          link_latency_s)]

    def load_from(self, vm: VirtualMemory, pcid: int = 0) -> int:
        loaded = 0
        if self.distributed:
            for tlb in self.slices:
                loaded += tlb.load_from(vm, pcid,
                                        only_cube=tlb.home_cube)
        else:
            loaded = self.slices[0].load_from(vm, pcid)
        return loaded

    def lookup(self, now: float, vaddr: int, pcid: int,
               from_cube: int, target_cube_hint: Optional[int] = None
               ) -> Tuple[int, float]:
        """Translate from a unit on ``from_cube``.

        In the distributed organisation the owning cube's slice answers
        (requests reach the right cube by virtual address, because the
        OS maps VA regions to cubes — Sec. 4.6); the hint avoids a
        second resolution step in the model.
        """
        if not self.distributed:
            return self.slices[0].lookup(now, vaddr, pcid, from_cube)
        if target_cube_hint is not None:
            tlb = self.slices[target_cube_hint]
            return tlb.lookup(now, vaddr, pcid, from_cube)
        # Resolve by probing the local slice first, then the others.
        for tlb in [self.slices[from_cube]] + [
                t for i, t in enumerate(self.slices) if i != from_cube]:
            try:
                return tlb.lookup(now, vaddr, pcid, from_cube)
            except ProtectionFault:
                continue
        raise ProtectionFault(f"no slice maps {vaddr:#x} (pcid {pcid})")

    @property
    def total_lookups(self) -> int:
        return sum(t.lookups for t in self.slices)

    @property
    def total_remote_lookups(self) -> int:
        return sum(t.remote_lookups for t in self.slices)
