"""The host-side intrinsics (Sec. 4.1).

The paper exposes two calls to the JVM:

* ``initialize()`` — once at launch: programs the memory-mapped config
  registers (heap base, bitmap base/OFFSET, card-table base) and pins
  the accelerator TLB entries;
* ``val offload(val type, addr src, addr dst, val arg)`` — builds a
  48-byte request packet, routes it to the destination cube, and blocks
  the calling thread until the response packet returns.

:class:`CharonRuntime` implements both over a :class:`CharonDevice`,
actually encoding/decoding the wire packets so the format is exercised
end to end.  Replacing HotSpot's three primitives with these calls took
the authors 37 lines; the analogous swap here is the trace replayer
choosing ``runtime.offload_event`` over the host cost model.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.device import CharonDevice, HeapInfo
from repro.core.packets import OffloadRequest, OffloadResponse
from repro.errors import ConfigError
from repro.gcalgo.trace import Primitive, TraceEvent
from repro.heap.heap import JavaHeap
from repro.mem.vm import VirtualMemory


def heap_info_of(heap: JavaHeap) -> HeapInfo:
    """Derive the ``initialize()`` register values from a heap."""
    return HeapInfo(
        heap_start=heap.layout.heap_start,
        heap_end=heap.layout.heap_end,
        bitmap_base=heap.bitmaps.bitmap_base,
        bitmap_bytes=heap.bitmaps.bitmap_bytes,
        bitmap_covered_start=heap.bitmaps.covered_start,
        card_table_base=heap.card_table.table_base,
    )


class CharonRuntime:
    """What the modified JVM links against."""

    def __init__(self, device: CharonDevice) -> None:
        self.device = device
        self.initialized = False

    def initialize(self, heap: JavaHeap, vm: VirtualMemory,
                   pcid: int = 0) -> int:
        """Program the device at application launch."""
        entries = self.device.initialize(heap_info_of(heap), vm, pcid)
        self.initialized = True
        return entries

    def offload(self, now: float, primitive: Primitive, src: int,
                dst: int, arg: int = 0,
                found: bool = False) -> Tuple[float, OffloadResponse]:
        """The raw intrinsic: one blocking offload.

        ``arg`` carries the primitive-specific operand (size for Copy,
        range length for Search, reference/push counts for Scan&Push,
        bit count for Bitmap Count).  Returns the unblock time and the
        decoded response packet.
        """
        if not self.initialized:
            raise ConfigError("call initialize() before offload()")
        event = self._event_from_call(primitive, src, dst, arg, found)
        cube = self.device._target_cube(event)
        # Exercise the real wire format.
        request = OffloadRequest(primitive=primitive, dest_cube=cube,
                                 src=src, dst=dst, arg=arg,
                                 pcid=self.device.context.pcid)
        decoded = OffloadRequest.decode(request.encode())
        if decoded != request:
            raise ConfigError("request packet round-trip failed")
        finish = self.device.offload_event(now, event, gc_kind="minor")
        has_value = primitive is not Primitive.COPY
        response = OffloadResponse.decode(OffloadResponse(
            source_cube=cube, has_value=has_value,
            value=int(found)).encode())
        return finish, response

    def offload_event(self, now: float, event: TraceEvent,
                      gc_kind: str) -> float:
        """Trace-replay entry: offload one recorded primitive."""
        if not self.initialized:
            raise ConfigError("call initialize() before offload()")
        return self.device.offload_event(now, event, gc_kind)

    @staticmethod
    def _event_from_call(primitive: Primitive, src: int, dst: int,
                         arg: int, found: bool) -> TraceEvent:
        if primitive is Primitive.COPY:
            return TraceEvent(primitive, "intrinsic", src=src, dst=dst,
                              size_bytes=arg)
        if primitive is Primitive.SEARCH:
            return TraceEvent(primitive, "intrinsic", src=src,
                              size_bytes=arg, found=found)
        if primitive is Primitive.SCAN_PUSH:
            refs = arg & 0xFFFF
            pushes = (arg >> 16) & 0xFFFF
            return TraceEvent(primitive, "intrinsic", src=src, refs=refs,
                              pushes=min(pushes, refs))
        if primitive is Primitive.BITMAP_COUNT:
            return TraceEvent(primitive, "intrinsic", src=src, bits=arg)
        raise ConfigError(f"unknown primitive {primitive}")
