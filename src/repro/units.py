"""Unit helpers and constants.

The timing layer works in *seconds* (floats) and *bytes* (ints) uniformly,
because the simulated system spans several clock domains (host core at
2.67 GHz, DDR4 at tCK = 0.937 ns, HMC at tCK = 1.6 ns, Charon units at
1 GHz).  These helpers keep conversions explicit and readable.
"""

from __future__ import annotations

# -- byte sizes ---------------------------------------------------------

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

CACHE_LINE = 64  #: host cache-line size in bytes
HMC_MAX_REQUEST = 256  #: maximum HMC access granularity in bytes (Sec. 4.2)
WORD = 8  #: heap word size in bytes (64-bit)

# -- time ---------------------------------------------------------------

NS = 1e-9
US = 1e-6
MS = 1e-3


def cycles_to_seconds(cycles: float, freq_hz: float) -> float:
    """Convert a cycle count at frequency ``freq_hz`` to seconds."""
    return cycles / freq_hz


def seconds_to_cycles(seconds: float, freq_hz: float) -> float:
    """Convert seconds to (fractional) cycles at frequency ``freq_hz``."""
    return seconds * freq_hz


def gb_per_s(value: float) -> float:
    """Bandwidth given in GB/s, returned in bytes/second.

    The paper quotes link and memory bandwidths in decimal GB/s
    (e.g. 320 GB/s per cube); we follow the same convention.
    """
    return value * 1e9


def pj_per_bit(value: float) -> float:
    """Energy-per-bit given in pJ/bit, returned in joules per *byte*."""
    return value * 1e-12 * 8


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    return (value + alignment - 1) // alignment * alignment


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    return value // alignment * alignment


def geomean(values) -> float:
    """Geometric mean of an iterable of positive floats."""
    import math

    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
