"""Spark ML workloads: Bayesian classifier, k-means, logistic regression.

The paper characterises these as allocating *a small number of large
objects with few references and short lifetimes* (Sec. 5.2): RDD
partitions are big primitive arrays; per-iteration batches are consumed
and dropped; a cache of partitions lives across iterations (RDD
caching) and slowly churns, which is what gives MajorGC work and the
old-to-young references that make the card-table *Search* matter in
MinorGC (Fig. 4a shows Search+Copy dominating Spark's MinorGC).

Concretely each iteration:

1. allocates ``batches_per_iteration`` primitive batch arrays plus a
   stream of small ``Record`` sample objects referencing them;
2. appends a slice of records to an old-generation-resident model table
   (dirtying cards);
3. replaces ``cache_replacements`` cached partitions with fresh arrays
   (the old ones become MajorGC garbage);
4. drops everything else.
"""

from __future__ import annotations

from repro.units import KB
from repro.workloads.base import Workload
from repro.workloads.mutator import MutatorDriver


class SparkWorkload(Workload):
    """Shared partition/batch/record machinery."""

    framework = "spark"
    partition_bytes = 256 * KB
    cached_partitions = 48
    batches_per_iteration = 24
    batch_bytes = 128 * KB
    records_per_iteration = 2500
    cache_replacements = 4
    model_capacity = 512
    iterations = 10
    compute_seconds_per_iteration = 0.0008

    def setup(self, driver: MutatorDriver) -> None:
        heap = driver.heap
        self.cache = driver.handle(
            driver.allocate("objArray", self.cached_partitions).addr)
        cursor = 0

        def store_partitions(addrs: list) -> None:
            # Anchor each chunk into the cache before the next chunk
            # can trigger a (moving) collection.
            nonlocal cursor
            for addr in addrs:
                heap.array_store(self.cache.addr, cursor, addr)
                cursor += 1

        driver.allocate_batch("typeArray", self.cached_partitions,
                              length=self.partition_bytes,
                              sink=store_partitions)
        self.model = driver.handle(
            driver.allocate("objArray", self.model_capacity).addr)
        self._model_cursor = 0

    def iteration(self, driver: MutatorDriver, index: int) -> None:
        heap = driver.heap
        records_per_batch = max(
            1, self.records_per_iteration // self.batches_per_iteration)
        keep_every = max(1, records_per_batch // 4)
        # Batches are consumed streaming-style: each batch array lives
        # only while its records are processed (short lifetimes, the
        # Sec. 5.2 Spark demographic).
        for batch in range(self.batches_per_iteration):
            data = driver.handle(
                driver.allocate("typeArray", self.batch_bytes).addr)
            for sample in range(records_per_batch):
                record = driver.allocate("Record")
                heap.set_field(record, 0, data.addr)
                if sample % keep_every == 0:
                    # Model summaries carry aggregated primitives only;
                    # the store into the old model table dirties cards.
                    summary = driver.allocate("Record")
                    heap.array_store(
                        self.model.addr,
                        self._model_cursor % self.model_capacity,
                        summary.addr)
                    self._model_cursor += 1
            driver.release(data)

        # RDD cache churn: replace a few partitions with new data.
        for slot in range(self.cache_replacements):
            victim = (index * self.cache_replacements + slot) \
                % self.cached_partitions
            fresh = driver.allocate("typeArray", self.partition_bytes)
            heap.array_store(self.cache.addr, victim, fresh.addr)


class BayesianClassifier(SparkWorkload):
    """Naive Bayes over KDD 2010 (Table 3: 10 GB heap)."""

    name = "spark-bs"
    dataset = "KDD 2010"
    partition_bytes = 256 * KB
    cached_partitions = 44
    batches_per_iteration = 28
    records_per_iteration = 2500
    cache_replacements = 4


class KMeansClustering(SparkWorkload):
    """k-means over KDD 2010 (Table 3: 8 GB heap).

    Smaller partitions, more record churn (point assignments).
    """

    name = "spark-km"
    dataset = "KDD 2010"
    partition_bytes = 128 * KB
    cached_partitions = 64
    batches_per_iteration = 24
    batch_bytes = 128 * KB
    records_per_iteration = 4500
    cache_replacements = 6


class LogisticRegression(SparkWorkload):
    """Logistic regression over URL Reputation (Table 3: 12 GB heap).

    The heaviest allocator: larger batches and aggressive cache churn
    (gradient snapshots), driving more MajorGC activity.
    """

    name = "spark-lr"
    dataset = "URL Reputation"
    partition_bytes = 256 * KB
    cached_partitions = 56
    batches_per_iteration = 30
    batch_bytes = 192 * KB
    records_per_iteration = 3000
    cache_replacements = 8
