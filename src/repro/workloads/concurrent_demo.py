"""A pseudo-workload that drives the SATB concurrent-marking collector.

The six Table 3 workloads all run on the generational heap through
:class:`~repro.workloads.mutator.MutatorDriver`, so none of them can
produce ``concurrent``-kind traces — the concurrent collector owns its
own region-managed heap, like G1.  This module registers a synthetic
workload, ``concurrent-mark``, that exercises the collector the way it
is meant to run in production: allocation-paced marking interleaved
with a mutator that keeps overwriting references (SATB barrier
traffic), finished by explicit cycle completions.

Registering it as a workload surfaces the collector through the whole
front end for free: ``repro run concurrent-mark``, ``repro compare``,
``repro trace`` / ``replay`` / ``stats`` / ``timeline``, and the
experiments runner's cached :func:`~repro.experiments.runner.collect_run`
all work unchanged, because they only speak :class:`WorkloadRun`.
"""

from __future__ import annotations

from typing import Optional

from repro.units import KB, MB
from repro.workloads.base import Workload
from repro.workloads.mutator import WorkloadRun


class ConcurrentMarkDemo(Workload):
    """Linked-record churn under allocation-paced concurrent marking.

    Each iteration grows chains of ``Record`` objects hanging off a
    rotating set of root slots, drops and overwrites links while a
    marking cycle is live (so the write barrier logs real snapshot
    edges), then completes the cycle.  Pacing runs one bounded mark
    step every :attr:`pacing_period` allocations, Shenandoah-style, so
    the concurrent phases genuinely interleave with mutation instead
    of degenerating into a stop-the-world mark.
    """

    name = "concurrent-mark"
    framework = "runtime"
    dataset = "synthetic linked records"
    iterations = 6
    region_bytes = 64 * KB
    #: allocations per paced mark step while a cycle is live.
    pacing_period = 24
    #: objects allocated per iteration.
    objects_per_iteration = 2200
    #: root slots the chains rotate through.
    root_slots = 12

    @property
    def default_heap_bytes(self) -> int:
        # Not a Table 3 workload, so no paper heap size to scale from;
        # sized like the small-heap integration fixtures, with room
        # for floating garbage between cycles.
        return 24 * MB

    def run(self, heap_bytes: Optional[int] = None) -> WorkloadRun:
        from repro.gcalgo.concurrent_mark import ConcurrentMarkGC
        from repro.workloads.mutator import MutatorDriver

        heap = self.build_heap(heap_bytes)
        gc = ConcurrentMarkGC(heap, region_bytes=self.region_bytes,
                              pacing_period=self.pacing_period)
        run = WorkloadRun(name=self.name,
                          heap_bytes=heap.config.heap_bytes)
        heap.roots.extend([0] * self.root_slots)

        def allocate(klass_name: str, length: Optional[int] = None):
            view = gc.allocate(klass_name, length=length)
            run.allocated_objects += 1
            run.allocated_bytes += view.size_bytes
            return view

        for iteration in range(self.iterations):
            gc.start_cycle()
            previous = 0
            for index in range(self.objects_per_iteration):
                view = allocate("Record")
                heap.set_field(view, 0, previous)
                previous = view.addr
                if index % 200 == 0:
                    # Rotate the chain into a root slot; the slot's old
                    # chain becomes floating garbage for the sweep.
                    slot = (index // 200) % self.root_slots
                    heap.roots[slot] = previous
                    previous = 0
                elif index % 7 == 0:
                    # Unlink mid-chain while marking is live — the SATB
                    # barrier must log the overwritten edge.
                    heap.set_field(view, 0, 0)
                    previous = view.addr
                if index % 3 == 0:
                    allocate("typeArray", 256)  # short-lived garbage
            # Every chain head is parked in a root, so dropping one
            # root retires a whole chain per iteration.
            heap.roots[iteration % self.root_slots] = 0
            gc.collect()

        run.traces = list(gc.traces)
        run.sweep_count = gc.collections
        run.mutator_seconds = (run.allocated_bytes
                               / MutatorDriver.ALLOCATION_RATE)
        return run
