"""The mutator driver: allocation, GC triggering, and stable handles.

:class:`MutatorDriver` plays the role of the JVM runtime around the
collectors:

* allocation goes to Eden; objects larger than a quarter of Eden go
  straight to the Old generation (HotSpot's humongous-allocation path);
* an allocation failure triggers a MinorGC — preceded by a MajorGC when
  the scavenger's promotion-safety check fails — and is retried; a
  retry failure after a full collection raises
  :class:`~repro.errors.OutOfMemoryError`, which the heap-sizing sweeps
  (Fig. 2) catch;
* every collection's trace is recorded for later replay.

Because collections move objects, workload code never holds raw
addresses across an allocation; it holds :class:`Handle`\\ s — root-table
slots the collectors update in place, exactly like JNI global refs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import OutOfMemoryError
from repro.gcalgo.mark_compact import MajorGC
from repro.gcalgo.mark_sweep import MarkSweepGC
from repro.gcalgo.parallel_scavenge import MinorGC
from repro.gcalgo.trace import GCTrace
from repro.heap import fast_kernels
from repro.heap.heap import JavaHeap
from repro.heap.object_model import ObjectView
from repro.units import align_up


class Handle:
    """A GC-stable object reference backed by a root-table slot."""

    def __init__(self, driver: "MutatorDriver", index: int) -> None:
        self._driver = driver
        self._index = index

    @property
    def addr(self) -> int:
        """The object's current address (collectors keep it fresh)."""
        return self._driver.heap.roots[self._index]

    def view(self) -> ObjectView:
        return self._driver.heap.object_at(self.addr)

    def set(self, addr: int) -> None:
        self._driver.heap.roots[self._index] = addr

    def release(self) -> None:
        """Drop the reference (the object may become garbage)."""
        self._driver.heap.roots[self._index] = 0


@dataclass
class WorkloadRun:
    """Everything a finished workload run produced."""

    name: str
    heap_bytes: int
    traces: List[GCTrace] = field(default_factory=list)
    allocated_bytes: int = 0
    allocated_objects: int = 0
    mutator_seconds: float = 0.0
    minor_count: int = 0
    major_count: int = 0
    sweep_count: int = 0

    @property
    def minor_traces(self) -> List[GCTrace]:
        return [t for t in self.traces if t.kind == "minor"]

    @property
    def major_traces(self) -> List[GCTrace]:
        return [t for t in self.traces if t.kind == "major"]

    @property
    def gc_count(self) -> int:
        return len(self.traces)


class MutatorDriver:
    """Allocation front-end that triggers and records collections."""

    #: objects larger than Eden/4 allocate directly in the old
    #: generation, as HotSpot does for humongous allocations.
    LARGE_OBJECT_EDEN_FRACTION = 4

    def __init__(self, heap: JavaHeap, run_name: str = "run",
                 verify_each_gc: bool = False) -> None:
        self.heap = heap
        self.run = WorkloadRun(name=run_name,
                               heap_bytes=heap.config.heap_bytes)
        self._free_roots: List[int] = []
        #: run the heap verifier after every collection (the
        #: -XX:+VerifyAfterGC analogue; slow, for debugging).
        self.verify_each_gc = verify_each_gc
        #: observers fired around *every* collection — explicit ones and
        #: the implicit allocation-failure ones alike.  The fuzzing
        #: oracle uses these to snapshot the live graph before a
        #: collection and re-check it afterwards.
        self.pre_gc_hooks: List[Callable[[JavaHeap, str], None]] = []
        self.post_gc_hooks: List[
            Callable[[JavaHeap, str, GCTrace], None]] = []
        #: fired at the top of every allocation — the driver's
        #: safepoint poll.  Concurrent collectors ride these to
        #: interleave bounded marking increments with mutator
        #: progress (see ConcurrentMarkGC.install_step_hook).
        self.step_hooks: List[Callable[[JavaHeap], None]] = []

    # -- handles ------------------------------------------------------------

    def handle(self, addr: int = 0) -> Handle:
        """Allocate a root-table slot holding ``addr``."""
        if self._free_roots:
            index = self._free_roots.pop()
            self.heap.roots[index] = addr
        else:
            index = len(self.heap.roots)
            self.heap.roots.append(addr)
        return Handle(self, index)

    def release(self, handle: Handle) -> None:
        handle.release()
        self._free_roots.append(handle._index)

    # -- allocation -----------------------------------------------------------

    def allocate(self, klass_name: str,
                 length: Optional[int] = None) -> ObjectView:
        """Allocate with GC-on-failure semantics.

        The returned view's address is valid only until the next
        allocation; stash it in a handle or a heap structure first.
        """
        for hook in self.step_hooks:
            hook(self.heap)
        heap = self.heap
        klass = heap.klasses.by_name(klass_name)
        size = align_up(klass.instance_bytes(length), 8)
        eden = heap.layout.eden
        large = size > eden.capacity // self.LARGE_OBJECT_EDEN_FRACTION
        space = heap.layout.old if large else None

        for attempt in range(3):
            try:
                view = heap.new_object(klass_name, length=length,
                                       space=space)
                self.run.allocated_bytes += size
                self.run.allocated_objects += 1
                return view
            except OutOfMemoryError:
                if attempt == 0:
                    if large:
                        self.major_gc()
                    else:
                        self.minor_gc()
                elif attempt == 1:
                    self.major_gc()
                else:
                    raise
        raise OutOfMemoryError("allocation failed after full GC")

    def allocate_batch(self, klass_name: str, count: int,
                       length: Optional[int] = None,
                       sink: Optional[Callable[[List[int]], None]]
                       = None) -> int:
        """Allocate ``count`` identical objects with chunked bumps.

        Each GC-free chunk reserves its objects with one Eden bump and
        formats them with one
        :meth:`~repro.heap.heap.JavaHeap.format_object_run` — byte- and
        trigger-identical to ``count`` :meth:`allocate` calls (a
        collection happens exactly when Eden cannot fit the next
        object, between chunks).  ``sink`` receives each chunk's
        addresses *before* the next chunk can trigger a collection, so
        it must anchor them (handles or heap stores) before returning.
        """
        if count <= 0:
            return 0
        heap = self.heap
        klass = heap.klasses.by_name(klass_name)
        size = align_up(klass.instance_bytes(length), 8)
        eden = heap.layout.eden
        large = size > eden.capacity // self.LARGE_OBJECT_EDEN_FRACTION
        if large or not fast_kernels.fast_enabled(heap):
            for _ in range(count):
                view = self.allocate(klass_name, length=length)
                if sink is not None:
                    sink([view.addr])
            return count
        remaining = count
        while remaining:
            chunk = min(remaining, eden.fits_count(size))
            if chunk == 0:
                # Eden tail full: the single-object slow path triggers
                # the collection exactly where the plain loop would.
                view = self.allocate(klass_name, length=length)
                if sink is not None:
                    sink([view.addr])
                remaining -= 1
                continue
            fast_kernels.record_call("alloc", items=chunk)
            start = eden.allocate_many(size, chunk)
            heap.format_object_run(start, chunk, klass, length)
            heap.allocated_objects += chunk
            heap.allocated_bytes += size * chunk
            self.run.allocated_objects += chunk
            self.run.allocated_bytes += size * chunk
            if sink is not None:
                sink(list(range(start, start + size * chunk, size)))
            remaining -= chunk
        return count

    # -- collections ----------------------------------------------------------------

    def minor_gc(self) -> GCTrace:
        """Scavenge, preceded by a full GC if promotion is unsafe.

        When even a full collection cannot guarantee a safe scavenge,
        the heap is genuinely too small: raise OutOfMemoryError, which
        the Fig. 2 heap-sizing sweeps rely on.
        """
        if not MinorGC(self.heap).promotion_safe():
            self.major_gc()
            if not MinorGC(self.heap).promotion_safe():
                raise OutOfMemoryError(
                    "old generation cannot absorb a worst-case "
                    "promotion even after a full GC; heap too small")
        return self._collect("minor")

    def major_gc(self) -> GCTrace:
        return self._collect("major")

    def sweep_gc(self) -> GCTrace:
        """A CMS-style mark-sweep over the old generation.

        Sweeping reclaims old-generation garbage into filler chunks but
        does not lower the bump pointer; a genuinely full old space
        still falls back to :meth:`major_gc` through the allocation
        path.
        """
        return self._collect("sweep")

    def _collect(self, kind: str) -> GCTrace:
        for hook in self.pre_gc_hooks:
            hook(self.heap, kind)
        if kind == "minor":
            trace = MinorGC(self.heap).collect()
            self.run.minor_count += 1
        elif kind == "major":
            trace = MajorGC(self.heap).collect()
            self.run.major_count += 1
        else:
            trace = MarkSweepGC(self.heap).collect()
            self.run.sweep_count += 1
        self.run.traces.append(trace)
        self._maybe_verify()
        for hook in self.post_gc_hooks:
            hook(self.heap, kind, trace)
        return trace

    def _maybe_verify(self) -> None:
        if self.verify_each_gc:
            from repro.heap.verifier import verify_heap
            verify_heap(self.heap)

    # -- mutator time ------------------------------------------------------------------

    #: Useful-work proxy: allocation throughput of the whole (8-core)
    #: mutator side -- big-data frameworks allocate from every worker
    #: thread, ~1.25 GB/s per core; the per-workload compute term comes
    #: on top.  Calibrated so GC overhead at 2x the minimum heap lands
    #: in the ~15% range the paper's Fig. 2 reports.
    ALLOCATION_RATE = 10e9  # bytes/second (all mutator threads)

    def finish(self, compute_seconds: float = 0.0) -> WorkloadRun:
        """Close out the run and compute the mutator-time proxy."""
        self.run.mutator_seconds = (
            self.run.allocated_bytes / self.ALLOCATION_RATE
            + compute_seconds)
        return self.run
