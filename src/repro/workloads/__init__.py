"""Synthetic workloads with the paper's object demographics (Table 3).

The six applications — Spark's Bayesian classifier, k-means and
logistic regression; GraphChi's connected components, PageRank and ALS —
are reproduced as mutators whose *object demographics* (sizes,
reference counts, lifetimes, caching behaviour) follow the paper's
Section 3/5 characterisation.  GC behaviour depends on those
demographics, not on the algorithms' arithmetic, so each workload
performs token computation while exercising the allocation/retention
pattern that drives its published GC profile.

Heap sizes are the Table 3 values scaled by 1/256 (see DESIGN.md).

A seventh, synthetic workload — ``concurrent-mark`` in
:mod:`repro.workloads.concurrent_demo` — drives the SATB
concurrent-marking collector, which the Table 3 applications cannot
reach from the generational heap; it is registered alongside them but
excluded from the paper-figure sweeps (``TABLE3_WORKLOADS``).
"""

from repro.workloads.mutator import Handle, MutatorDriver, WorkloadRun
from repro.workloads.registry import (TABLE3_WORKLOADS, WORKLOAD_NAMES,
                                      get_workload, run_workload)
from repro.workloads.rmat import generate_rmat

__all__ = [
    "Handle",
    "MutatorDriver",
    "WorkloadRun",
    "TABLE3_WORKLOADS",
    "WORKLOAD_NAMES",
    "get_workload",
    "run_workload",
    "generate_rmat",
]
