"""GraphChi workloads: connected components, PageRank, ALS.

The paper characterises CC/PR as allocating *many long-lived objects
with many references* (Sec. 5.2): the vertex graph lives in the old
generation for the whole run and its dense reference structure is what
makes Scan&Push and Bitmap Count heavy in MajorGC (Fig. 4b).  ALS is
the outlier: "it takes a very large matrix data as a single object,
which results in a huge copy".

The CC/PR graph is R-MAT (the paper uses scale 22; we use a scale
matched to the 1/256 heap scaling).  Every vertex is a ``Vertex``
instance pointing at a boxed value and an adjacency ``objArray`` whose
elements reference other vertices, plus a primitive edge-weight array —
the long-lived, pointer-rich old generation the paper describes.
"""

from __future__ import annotations

from repro.units import KB
from repro.workloads.base import Workload
from repro.workloads.mutator import MutatorDriver
from repro.workloads.rmat import adjacency_lists, generate_rmat


class GraphWorkload(Workload):
    """Shared R-MAT graph construction and shard machinery."""

    framework = "graphchi"
    dataset = "R-MAT Scale 22"
    rmat_scale = 12
    edge_factor = 16
    max_degree = 64
    shards = 5
    shard_buffer_bytes = 256 * KB
    #: primitive edge-data chunks streamed per shard (GraphChi's
    #: sliding-window edge values are large primitive arrays).
    edge_chunks_per_shard = 12
    edge_chunk_bytes = 16 * KB
    messages_per_shard = 512
    iterations = 16
    #: iterations of per-vertex results kept alive (forces promotion
    #: pressure through survivor overflow, as real GraphChi runs show).
    history_iterations = 3
    #: shards of in-flight messages kept alive (cross-shard messaging):
    #: messages survive scavenges and get promoted, filling the old
    #: generation with short-lived junk -- the big-data GC pathology.
    message_windows = 4
    compute_seconds_per_iteration = 0.0006

    @property
    def n_vertices(self) -> int:
        return 1 << self.rmat_scale

    def setup(self, driver: MutatorDriver) -> None:
        heap = driver.heap
        edges = generate_rmat(self.rmat_scale, self.edge_factor,
                              seed=hash(self.name) & 0xFFFF)
        adjacency = adjacency_lists(edges, self.n_vertices,
                                    self.max_degree)

        self.vertex_table = driver.handle(
            driver.allocate("objArray", self.n_vertices).addr)
        # Pass 1: the vertices and their boxed values.
        for vertex_id in range(self.n_vertices):
            vertex = driver.allocate("Vertex")
            heap.array_store(self.vertex_table.addr, vertex_id,
                             vertex.addr)
            box = driver.allocate("Box")
            vertex_addr = heap.array_load(self.vertex_table.addr,
                                          vertex_id)
            heap.set_field(heap.object_at(vertex_addr), 0, box.addr)
        # Pass 2: adjacency arrays (references into the vertex table)
        # and primitive edge-weight arrays.
        for vertex_id in range(self.n_vertices):
            neighbors = adjacency.get(vertex_id, [])
            if not neighbors:
                continue
            adj = driver.allocate("objArray", len(neighbors))
            vertex_addr = heap.array_load(self.vertex_table.addr,
                                          vertex_id)
            heap.set_field(heap.object_at(vertex_addr), 1, adj.addr)
            weights = driver.allocate("typeArray", len(neighbors) * 8)
            # Weights hang off the value box to stay reachable.
            vertex_addr = heap.array_load(self.vertex_table.addr,
                                          vertex_id)
            box_addr = heap.get_field(heap.object_at(vertex_addr), 0)
            heap.set_field(heap.object_at(box_addr), 0, weights.addr)
            payload = driver.allocate("typeArray", 160)
            vertex_addr = heap.array_load(self.vertex_table.addr,
                                          vertex_id)
            heap.set_field(heap.object_at(vertex_addr), 2, payload.addr)
            vertex_addr = heap.array_load(self.vertex_table.addr,
                                          vertex_id)
            adj_addr = heap.get_field(heap.object_at(vertex_addr), 1)
            for slot, neighbor in enumerate(neighbors):
                target = heap.array_load(self.vertex_table.addr, neighbor)
                heap.array_store(adj_addr, slot, target)
        self._message_windows = []
        # Result history ring: one objArray per remembered iteration.
        self.history = [
            driver.handle(driver.allocate(
                "objArray", self.n_vertices).addr)
            for _ in range(self.history_iterations)
        ]

    # -- per-iteration building blocks --------------------------------------

    def process_shards(self, driver: MutatorDriver,
                       touched_fraction: float) -> None:
        """Stream the shards: buffers plus update messages referencing
        vertices (the GraphChi sliding-window I/O pattern)."""
        heap = driver.heap
        step = max(1, int(1.0 / max(touched_fraction, 0.01)))
        for shard in range(self.shards):
            buffer_handle = driver.handle(driver.allocate(
                "typeArray", self.shard_buffer_bytes).addr)
            message_table = driver.handle(driver.allocate(
                "objArray", self.messages_per_shard).addr)
            base = shard * (self.n_vertices // self.shards)
            # The bulk of shard traffic is primitive edge data (the
            # sliding-window chunks); a smaller stream of Message
            # objects carries vertex-targeted updates and produces the
            # old-to-young card traffic.
            chunk_ring = driver.handle(driver.allocate(
                "objArray", self.edge_chunks_per_shard).addr)
            for chunk in range(self.edge_chunks_per_shard):
                data = driver.allocate("typeArray",
                                       self.edge_chunk_bytes)
                heap.array_store(chunk_ring.addr, chunk, data.addr)
            for slot in range(self.messages_per_shard):
                message = driver.allocate("Message")
                target_id = (base + slot * step) % self.n_vertices
                target = heap.array_load(self.vertex_table.addr,
                                         target_id)
                heap.set_field(message, 0, target)
                heap.array_store(message_table.addr, slot, message.addr)
            # Messages and edge chunks stay in flight for a window of
            # shards (the sliding window), surviving scavenges and
            # feeding the premature-promotion churn real GraphChi runs
            # exhibit.
            self._message_windows.append(message_table)
            self._message_windows.append(chunk_ring)
            while len(self._message_windows) > 2 * self.message_windows:
                driver.release(self._message_windows.pop(0))
            driver.release(buffer_handle)

    def publish_results(self, driver: MutatorDriver, iteration: int,
                        fraction: float = 1.0) -> None:
        """Allocate fresh per-vertex results into the history ring.

        Stores into the (old) history array dirty cards, and keeping
        ``history_iterations`` of results alive drives promotions.
        """
        heap = driver.heap
        ring = self.history[iteration % self.history_iterations]
        count = int(self.n_vertices * fraction)
        for vertex_id in range(count):
            result = driver.allocate("Record")
            target = heap.array_load(self.vertex_table.addr, vertex_id)
            heap.set_field(result, 0, target)
            heap.array_store(ring.addr, vertex_id, result.addr)


class ConnectedComponents(GraphWorkload):
    """Label propagation: message-heavy, touching fewer vertices as the
    labels converge (Table 3: 4 GB heap)."""

    name = "graphchi-cc"
    messages_per_shard = 768
    iterations = 16

    def iteration(self, driver: MutatorDriver, index: int) -> None:
        # Convergence: later iterations touch fewer vertices.
        active = max(0.15, 1.0 - 0.12 * index)
        self.process_shards(driver, touched_fraction=active)
        self.publish_results(driver, index, fraction=active * 0.5)


class PageRank(GraphWorkload):
    """Power iteration: every vertex gets a fresh rank every iteration
    (Table 3: 4 GB heap)."""

    name = "graphchi-pr"
    messages_per_shard = 512
    history_iterations = 4
    iterations = 16

    def iteration(self, driver: MutatorDriver, index: int) -> None:
        self.process_shards(driver, touched_fraction=0.6)
        self.publish_results(driver, index, fraction=1.0)


class AlternatingLeastSquares(Workload):
    """ALS over a Matrix Market 15000x15000 matrix (Table 3: 4 GB heap).

    "ALS ... takes a very large matrix data as a single object, which
    results in a huge copy" (Sec. 3.2) — the ratings matrix and the
    per-iteration factor matrices are single multi-hundred-KB arrays,
    so nearly all GC time is bulk Copy.
    """

    name = "graphchi-als"
    framework = "graphchi"
    dataset = "Matrix Market (15000x15000)"
    iterations = 8
    ratings_bytes = 1280 * KB
    factor_bytes = 1024 * KB
    solver_temp_bytes = 128 * KB
    solver_temps = 8
    compute_seconds_per_iteration = 0.0008

    def setup(self, driver: MutatorDriver) -> None:
        heap = driver.heap
        self.holder = driver.handle(
            driver.allocate("objArray", 4).addr)
        ratings = driver.allocate("typeArray", self.ratings_bytes)
        heap.array_store(self.holder.addr, 0, ratings.addr)
        ratings_t = driver.allocate("typeArray", self.ratings_bytes)
        heap.array_store(self.holder.addr, 1, ratings_t.addr)

    def iteration(self, driver: MutatorDriver, index: int) -> None:
        heap = driver.heap
        # New factor matrices replace the previous iteration's (which
        # become garbage only after surviving at least one scavenge).
        users = driver.allocate("typeArray", self.factor_bytes)
        heap.array_store(self.holder.addr, 2, users.addr)
        items = driver.allocate("typeArray", self.factor_bytes)
        heap.array_store(self.holder.addr, 3, items.addr)
        for _ in range(self.solver_temps):
            temp = driver.handle(driver.allocate(
                "typeArray", self.solver_temp_bytes).addr)
            driver.release(temp)
