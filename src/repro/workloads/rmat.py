"""R-MAT graph generation (Chakrabarti et al.), the paper's CC/PR input.

The paper uses R-MAT scale 22 (~4M vertices); we generate the same
distribution at a scale matched to the 1/256 heap scaling.  The
recursive quadrant descent uses the GraphChallenge defaults
(a, b, c, d) = (0.57, 0.19, 0.19, 0.05), yielding the usual skewed
power-law-ish degree distribution that makes PageRank/CC traversal
irregular.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from repro.errors import ConfigError


def generate_rmat(scale: int, edge_factor: int = 6,
                  a: float = 0.57, b: float = 0.19, c: float = 0.19,
                  seed: int = 42,
                  deduplicate: bool = True) -> List[Tuple[int, int]]:
    """Generate ``edge_factor * 2**scale`` R-MAT edges.

    Returns (src, dst) pairs over ``2**scale`` vertices; self-loops are
    dropped and duplicates removed when ``deduplicate``.
    """
    if scale < 1 or scale > 26:
        raise ConfigError("scale out of supported range")
    if not 0 < a + b + c < 1:
        raise ConfigError("quadrant probabilities must leave room for d")
    rng = random.Random(seed)
    n_vertices = 1 << scale
    n_edges = edge_factor * n_vertices
    edges: List[Tuple[int, int]] = []
    seen: Set[Tuple[int, int]] = set()
    ab = a + b
    abc = a + b + c
    attempts = 0
    while len(edges) < n_edges and attempts < n_edges * 4:
        attempts += 1
        src = dst = 0
        for _ in range(scale):
            r = rng.random()
            if r < a:
                quadrant = (0, 0)
            elif r < ab:
                quadrant = (0, 1)
            elif r < abc:
                quadrant = (1, 0)
            else:
                quadrant = (1, 1)
            src = (src << 1) | quadrant[0]
            dst = (dst << 1) | quadrant[1]
        if src == dst:
            continue
        key = (src, dst)
        if deduplicate:
            if key in seen:
                continue
            seen.add(key)
        edges.append(key)
    return edges


def adjacency_lists(edges: List[Tuple[int, int]],
                    n_vertices: int,
                    max_degree: int = 64) -> Dict[int, List[int]]:
    """Out-adjacency lists, capped at ``max_degree`` per vertex.

    The cap bounds the worst hub objects so scaled heaps stay
    proportionate; R-MAT hubs at full scale would dwarf the scaled
    survivor spaces.
    """
    adjacency: Dict[int, List[int]] = {}
    for src, dst in edges:
        if src >= n_vertices or dst >= n_vertices:
            raise ConfigError("edge endpoint out of range")
        neighbors = adjacency.setdefault(src, [])
        if len(neighbors) < max_degree:
            neighbors.append(dst)
    return adjacency


def degree_histogram(adjacency: Dict[int, List[int]]) -> Dict[int, int]:
    """Degree -> vertex count (used by tests to sanity-check skew)."""
    histogram: Dict[int, int] = {}
    for neighbors in adjacency.values():
        degree = len(neighbors)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram
