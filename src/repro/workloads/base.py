"""Workload base class and shared klass definitions."""

from __future__ import annotations

from typing import Optional

from repro.config import HeapConfig, scaled_heap_bytes
from repro.heap.heap import JavaHeap
from repro.heap.klass import KlassTable, standard_klass_table
from repro.workloads.mutator import MutatorDriver, WorkloadRun


def workload_klasses() -> KlassTable:
    """The application klasses every workload shares.

    * ``Record`` — a small data-carrying instance (2 refs + 2 prims),
      the sample/tuple objects of the Spark workloads;
    * ``Vertex`` — a graph vertex (value, adjacency and payload refs);
    * ``Box`` — a boxed value (1 ref + 1 prim), PageRank ranks and CC
      labels;
    * ``Message`` — a GraphChi update message (target + payload refs);
    * plus the standard ``objArray`` / ``typeArray``.
    """
    table = standard_klass_table()
    table.define_instance("Record", ref_fields=2, prim_fields=2)
    table.define_instance("Vertex", ref_fields=3, prim_fields=2)
    table.define_instance("Box", ref_fields=1, prim_fields=1)
    table.define_instance("Message", ref_fields=2, prim_fields=1)
    return table


class Workload:
    """One application: a setup phase plus iterations over the data."""

    name = "workload"
    framework = "none"
    dataset = ""
    iterations = 1
    #: per-iteration computation (seconds) added to the mutator-time
    #: proxy on top of allocation throughput.
    compute_seconds_per_iteration = 0.0

    @property
    def default_heap_bytes(self) -> int:
        return scaled_heap_bytes(self.name)

    def build_heap(self, heap_bytes: Optional[int] = None) -> JavaHeap:
        config = HeapConfig(
            heap_bytes=heap_bytes or self.default_heap_bytes)
        return JavaHeap(config, klasses=workload_klasses())

    def setup(self, driver: MutatorDriver) -> None:
        """Allocate the long-lived state (caches, graphs, matrices)."""

    def iteration(self, driver: MutatorDriver, index: int) -> None:
        """One epoch of the application."""

    def run(self, heap_bytes: Optional[int] = None) -> WorkloadRun:
        """Execute the full workload; returns its run record."""
        heap = self.build_heap(heap_bytes)
        driver = MutatorDriver(heap, run_name=self.name)
        self.setup(driver)
        for index in range(self.iterations):
            self.iteration(driver, index)
        compute = self.compute_seconds_per_iteration * self.iterations
        return driver.finish(compute_seconds=compute)
