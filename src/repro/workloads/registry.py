"""Workload registry and top-level runner (Table 3)."""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.errors import ConfigError
from repro.workloads.base import Workload
from repro.workloads.concurrent_demo import ConcurrentMarkDemo
from repro.workloads.graphchi import (AlternatingLeastSquares,
                                      ConnectedComponents, PageRank)
from repro.workloads.mutator import WorkloadRun
from repro.workloads.spark import (BayesianClassifier, KMeansClustering,
                                   LogisticRegression)

_WORKLOADS: Dict[str, Type[Workload]] = {
    cls.name: cls
    for cls in (BayesianClassifier, KMeansClustering, LogisticRegression,
                ConnectedComponents, PageRank, AlternatingLeastSquares,
                ConcurrentMarkDemo)
}

WORKLOAD_NAMES = tuple(_WORKLOADS)

#: the six Table 3 application workloads (the paper's benchmark set);
#: the synthetic collector demos are excluded from figure sweeps.
TABLE3_WORKLOADS = tuple(
    name for name in WORKLOAD_NAMES if name != ConcurrentMarkDemo.name)

#: Table 3 abbreviations used in the paper's figures, plus the
#: concurrent-marking demo's shorthand.
WORKLOAD_ABBREV = {
    "spark-bs": "BS",
    "spark-km": "KM",
    "spark-lr": "LR",
    "graphchi-cc": "CC",
    "graphchi-pr": "PR",
    "graphchi-als": "ALS",
    "concurrent-mark": "CM",
}


def get_workload(name: str) -> Workload:
    """Instantiate the named workload."""
    try:
        return _WORKLOADS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; choose from "
            f"{sorted(_WORKLOADS)}") from None


def run_workload(name: str,
                 heap_bytes: Optional[int] = None) -> WorkloadRun:
    """Run a workload to completion; returns its traces and stats."""
    return get_workload(name).run(heap_bytes=heap_bytes)
