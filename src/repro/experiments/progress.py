"""Sweep progress monitor: live shard-level state, rates, and ETA.

Layered on :mod:`repro.experiments.shard_journal`, which already makes
every grid cell durable — this module only *derives* progress from
what is on disk, so the view survives crashes and resumes for free:

* the sweep parent writes a ``sweep.json`` **manifest** beside the
  journal (:func:`write_sweep_manifest`) naming every shard of the
  current grid — key, platform, workload, heap, threads, and the
  simulated event count the throughput-weighted ETA weighs by;
* :func:`progress_snapshot` scans the journal directory and classifies
  each manifest shard as ``done`` (its ``.shard.json`` exists),
  ``claimed`` (a ``.claim`` file names the owner pid) or ``pending``,
  then aggregates completion % (shard- and event-weighted), per-worker
  rates from the execution metadata the journal stores with each
  result, and an ETA from this session's observed events/sec;
* :func:`refresh_progress` persists the snapshot atomically as
  ``progress.json`` beside the journal (the journal refreshes it after
  every store), so ``repro sweep status`` and the ``/progress``
  endpoint of :mod:`repro.obs.live` read one serializer's output
  whether the sweep is alive, crashed, or finished.

Because state is re-derived from the journal, killing a sweep and
resuming it continues the completion %/ETA exactly where the journal
left off — done shards count once, never twice.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Bump when the manifest/progress payload layout changes.
PROGRESS_SCHEMA_VERSION = 1

SWEEP_MANIFEST = "sweep.json"
PROGRESS_FILE = "progress.json"


def _atomic_write_json(path: Path, payload: dict) -> None:
    temp = path.with_name(path.name + f".tmp{os.getpid():x}")
    temp.write_text(json.dumps(payload, sort_keys=True))
    temp.replace(path)


# -- the sweep manifest ----------------------------------------------------

def write_sweep_manifest(directory: Union[str, Path],
                         shards: Dict[str, dict]) -> Path:
    """Describe the current grid for the progress monitor.

    ``shards`` maps shard key -> ``{"platform", "workload",
    "heap_bytes", "threads", "events"}``.  ``started_at`` stamps this
    *session* — a resumed sweep rewrites the manifest, so the ETA is
    computed from the current session's throughput, not the crashed
    one's wall clock.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / SWEEP_MANIFEST
    _atomic_write_json(path, {
        "schema": PROGRESS_SCHEMA_VERSION,
        "started_at": round(time.time(), 6),
        "parent_pid": os.getpid(),
        "shards": shards,
    })
    return path


def load_sweep_manifest(directory: Union[str, Path]) -> Optional[dict]:
    path = Path(directory) / SWEEP_MANIFEST
    if not path.exists():
        return None
    try:
        manifest = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return None
    if manifest.get("schema") != PROGRESS_SCHEMA_VERSION:
        return None
    return manifest


# -- deriving progress from the journal ------------------------------------

def _read_claim(path: Path) -> dict:
    """Owner info from a claim file (tolerates the bare-pid form)."""
    try:
        raw = path.read_text().strip()
    except OSError:
        return {}
    try:
        info = json.loads(raw)
        return info if isinstance(info, dict) else {"pid": int(info)}
    except (json.JSONDecodeError, ValueError):
        try:
            return {"pid": int(raw)}
        except ValueError:
            return {}


def _shard_result_meta(path: Path) -> dict:
    """The execution metadata stored beside a shard result."""
    try:
        payload = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return {}
    meta = payload.get("meta")
    return meta if isinstance(meta, dict) else {}


def progress_snapshot(directory: Union[str, Path, None] = None
                      ) -> dict:
    """The current sweep's progress, derived purely from disk state.

    Returns ``{"available": False}`` when no manifest exists (no sweep
    has announced itself in this journal).  Otherwise the document the
    ``/progress`` endpoint, ``progress.json`` and ``repro sweep
    status --format json`` all share — see ``docs/OBSERVABILITY.md``
    for the field reference.
    """
    from repro.experiments import shard_journal
    directory = shard_journal.journal_dir(directory)
    if directory is None:
        return {"available": False, "reason": "no journal configured"}
    manifest = load_sweep_manifest(directory)
    if manifest is None:
        return {"available": False,
                "reason": f"no {SWEEP_MANIFEST} in {directory}"}
    now = time.time()
    started_at = float(manifest.get("started_at") or now)
    shards: List[dict] = []
    done = claimed = 0
    events_total = events_done = 0
    session_events = 0
    session_host_seconds = 0.0
    workers: Dict[str, dict] = {}
    for key, spec in sorted(manifest.get("shards", {}).items()):
        events = int(spec.get("events") or 0)
        events_total += events
        result_path = directory / f"{key}.shard.json"
        claim_path = directory / f"{key}.claim"
        entry = {
            "key": key,
            "platform": spec.get("platform"),
            "workload": spec.get("workload"),
            "threads": spec.get("threads"),
            "events": events,
        }
        if result_path.exists():
            done += 1
            events_done += events
            entry["state"] = "done"
            meta = _shard_result_meta(result_path)
            host_seconds = meta.get("host_seconds")
            if host_seconds is not None:
                entry["host_seconds"] = host_seconds
                if host_seconds > 0:
                    entry["events_per_sec"] = events / host_seconds
            if meta.get("pid") is not None:
                entry["pid"] = meta["pid"]
                worker = workers.setdefault(str(meta["pid"]), {
                    "shards": 0, "events": 0, "host_seconds": 0.0})
                worker["shards"] += 1
                worker["events"] += events
                worker["host_seconds"] += host_seconds or 0.0
            completed_at = meta.get("completed_at")
            if completed_at is None:
                try:
                    completed_at = result_path.stat().st_mtime
                except OSError:
                    completed_at = None
            # Only shards finished by *this* session feed the ETA —
            # resumed-from-journal shards were free, and counting
            # their events would inflate the observed rate.
            if completed_at is not None and completed_at >= started_at:
                session_events += events
                session_host_seconds += host_seconds or 0.0
        elif claim_path.exists():
            claimed += 1
            entry["state"] = "claimed"
            claim = _read_claim(claim_path)
            if claim.get("pid") is not None:
                entry["pid"] = claim["pid"]
            if claim.get("claimed_at") is not None:
                entry["running_seconds"] = round(
                    max(0.0, now - float(claim["claimed_at"])), 3)
        else:
            entry["state"] = "pending"
        shards.append(entry)
    total = len(shards)
    pending = total - done - claimed
    events_remaining = events_total - events_done
    elapsed = max(1e-9, now - started_at)
    # Throughput-weighted ETA: prefer this session's wall-clock rate
    # (events the session completed over time it has been running);
    # before the first completion, fall back to the summed per-shard
    # execution rate from the journal metadata, if any.
    rate = session_events / elapsed if session_events else 0.0
    if rate <= 0.0 and session_host_seconds > 0.0:
        rate = session_events / session_host_seconds
    eta_seconds = (events_remaining / rate
                   if rate > 0.0 and events_remaining else None)
    for worker in workers.values():
        if worker["host_seconds"] > 0:
            worker["events_per_sec"] = round(
                worker["events"] / worker["host_seconds"], 1)
    return {
        "available": True,
        "schema": PROGRESS_SCHEMA_VERSION,
        "generated_at": round(now, 6),
        "started_at": started_at,
        "elapsed_seconds": round(elapsed, 3),
        "journal": str(directory),
        "shards_total": total,
        "shards_done": done,
        "shards_claimed": claimed,
        "shards_pending": pending,
        "completion_pct": round(100.0 * done / total, 2) if total
        else 100.0,
        "events_total": events_total,
        "events_done": events_done,
        "events_completion_pct": round(
            100.0 * events_done / events_total, 2) if events_total
        else 100.0,
        "events_per_sec": round(rate, 1),
        "eta_seconds": round(eta_seconds, 1)
        if eta_seconds is not None else None,
        "workers": workers,
        "shards": shards,
    }


def refresh_progress(directory: Union[str, Path]) -> Optional[Path]:
    """Re-derive and persist ``progress.json``; returns its path (or
    ``None`` when no manifest announces a sweep here)."""
    directory = Path(directory)
    snapshot = progress_snapshot(directory)
    if not snapshot.get("available"):
        return None
    path = directory / PROGRESS_FILE
    _atomic_write_json(path, snapshot)
    return path


def attach_live(directory: Union[str, Path]) -> None:
    """Point the live server's ``/progress`` at this journal (no-op
    when the server is not running)."""
    from repro.obs.live import get_live_server
    server = get_live_server()
    if not server.running:
        return
    directory = Path(directory)
    server.set_progress_provider(lambda: progress_snapshot(directory))


# -- terminal renderers ----------------------------------------------------

def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def _progress_bar(pct: float, width: int = 30) -> str:
    filled = int(width * pct / 100.0)
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def format_status(snapshot: dict, verbose: bool = False) -> str:
    """``repro sweep status``'s table view of a progress snapshot."""
    if not snapshot.get("available"):
        return ("no sweep progress available"
                + (f" ({snapshot['reason']})"
                   if snapshot.get("reason") else ""))
    lines = [
        f"sweep @ {snapshot['journal']}",
        "  {bar} {pct:6.2f}%  {done}/{total} shards "
        "({claimed} running, {pending} pending)".format(
            bar=_progress_bar(snapshot["completion_pct"]),
            pct=snapshot["completion_pct"],
            done=snapshot["shards_done"],
            total=snapshot["shards_total"],
            claimed=snapshot["shards_claimed"],
            pending=snapshot["shards_pending"]),
        "  events {done:,}/{total:,} ({pct:.2f}%)  "
        "rate {rate:,.0f} ev/s  elapsed {elapsed}  eta {eta}".format(
            done=snapshot["events_done"],
            total=snapshot["events_total"],
            pct=snapshot["events_completion_pct"],
            rate=snapshot["events_per_sec"],
            elapsed=_fmt_duration(snapshot["elapsed_seconds"]),
            eta=_fmt_duration(snapshot["eta_seconds"])),
    ]
    if snapshot["workers"]:
        lines.append("  workers:")
        for pid, worker in sorted(snapshot["workers"].items()):
            lines.append(
                "    pid {pid}: {shards} shards, {events:,} events"
                "{rate}".format(
                    pid=pid, shards=worker["shards"],
                    events=worker["events"],
                    rate=(f", {worker['events_per_sec']:,.0f} ev/s"
                          if "events_per_sec" in worker else "")))
    if verbose:
        for shard in snapshot["shards"]:
            marker = {"done": "+", "claimed": ">",
                      "pending": "."}[shard["state"]]
            extra = ""
            if shard["state"] == "claimed":
                extra = (f"  pid={shard.get('pid', '?')}"
                         f" {_fmt_duration(shard.get('running_seconds'))}")
            elif "events_per_sec" in shard:
                extra = f"  {shard['events_per_sec']:,.0f} ev/s"
            lines.append(
                f"  {marker} {shard['platform']}/{shard['workload']}"
                f" t={shard['threads']}{extra}")
    return "\n".join(lines)


def format_top(snapshot: dict) -> str:
    """``repro top``'s one-screen view (curses-free: redrawn whole)."""
    if not snapshot.get("available"):
        return format_status(snapshot)
    lines = [format_status(snapshot), "", "  active shards:"]
    active = [shard for shard in snapshot["shards"]
              if shard["state"] == "claimed"]
    if not active:
        lines.append("    (none)")
    for shard in active:
        lines.append(
            "    pid {pid:>7}  {cell:<40} {running}".format(
                pid=shard.get("pid", "?"),
                cell=f"{shard['platform']}/{shard['workload']}"
                     f" t={shard['threads']}",
                running=_fmt_duration(shard.get("running_seconds"))))
    recent = [shard for shard in snapshot["shards"]
              if shard["state"] == "done"][-5:]
    if recent:
        lines.append("  recently finished:")
        for shard in recent:
            rate = (f"{shard['events_per_sec']:,.0f} ev/s"
                    if "events_per_sec" in shard else "")
            lines.append(
                "    {cell:<40} {rate}".format(
                    cell=f"{shard['platform']}/{shard['workload']}"
                         f" t={shard['threads']}",
                    rate=rate))
    return "\n".join(lines)
