"""Content-addressed on-disk cache of stage-1 replay products.

The batched replay kernels (:mod:`repro.platform.batched`) split every
replay into a trace-pure numpy precompute (**stage 1**) and the
order-dependent recurrence (**stage 2**).  Stage-1 products are pure
functions of the compiled trace and a small, hashable parameter key —
the same arrays are recomputed by every fresh process of a sweep, every
worker of a pool, and every repeat of a benchmark.  This module
persists them beside the trace cache so a warm sweep skips stage-1
precompute entirely.

Entries are keyed by a hash of exactly the inputs that determine the
arrays:

* the **compiled-trace content** (kind, heap size, phase names and the
  raw event columns — see :func:`trace_content_key`),
* the **kernel product id and its parameter key** (e.g. the host-cost
  constants ``host_event_columns`` prices with),
* :data:`~repro.gcalgo.columnar.TRACE_SCHEMA_VERSION` and
  :data:`STAGE1_SCHEMA_VERSION` (the array layouts).

Entries are ``<sha256>.stage1.npz`` files written atomically, so
concurrent sweep processes can share a directory (it may be the trace
cache directory; the distinct suffix keeps the two namespaces apart).
A stale entry is rejected loudly, deleted, and regenerated.  The cache
lives wherever :data:`REPRO_STAGE1_CACHE` points (or an explicit
``directory=``); without either, :func:`fetch` just runs the producer.

Set :data:`REPRO_STAGE1_CACHE_REQUIRE` (or ``require=True``) to turn a
miss into a hard :class:`Stage1CacheMiss` — ``bench_sweep`` uses this
shape of guarantee to prove a warm repeat sweep recomputes nothing.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
import zipfile
from pathlib import Path
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import STAGE1_CACHE_ENV, STAGE1_CACHE_REQUIRE_ENV
from repro.errors import ReproError
from repro.experiments.trace_cache import CacheStats
from repro.gcalgo.columnar import CompiledTrace, TRACE_SCHEMA_VERSION
from repro.obs.eventlog import get_eventlog

#: Bump when the stored array tuples change meaning or layout for the
#: same trace/kernel/parameters, so older entries are regenerated.
STAGE1_SCHEMA_VERSION = 1

#: Environment variable naming the cache directory (unset = no cache).
REPRO_STAGE1_CACHE = STAGE1_CACHE_ENV

#: Environment variable: any non-empty value makes a miss an error.
REPRO_STAGE1_CACHE_REQUIRE = STAGE1_CACHE_REQUIRE_ENV


class Stage1Stats(CacheStats):
    """Fork-shared tally of stage-1 cache behaviour (worker processes
    of a sweep pool report into the same counters the parent prints)."""

    FIELDS = ("hits", "misses", "stale", "stores")


#: Cumulative cache behaviour for this process tree.
STATS = Stage1Stats()


class Stage1CacheMiss(ReproError):
    """Required a cached stage-1 product (``require``) but none was
    stored."""


def reset_stats() -> None:
    STATS.update(hits=0, misses=0, stale=0, stores=0)


def stats_line() -> str:
    """One-line summary, e.g. for a benchmark session footer."""
    return ("stage-1 cache: {hits} hit(s), {misses} miss(es), "
            "{stale} stale, {stores} store(s)".format(**STATS.snapshot()))


def cache_dir(directory: Union[str, Path, None] = None) -> Optional[Path]:
    """Resolve the cache directory (explicit arg beats the environment);
    ``None`` means caching is disabled."""
    if directory is None:
        directory = os.environ.get(REPRO_STAGE1_CACHE) or None
    return None if directory is None else Path(directory)


def trace_content_key(compiled: CompiledTrace) -> str:
    """Content hash of a compiled trace (memoized on the trace).

    Hashes the trace *content* — kind, heap size, phase names, schema
    version, and the raw bytes of the event columns — so the key is
    stable across processes, machines and codecs: the same captured
    trace loaded from the trace cache, streamed from a chunked file, or
    attached from shared memory resolves to the same stage-1 entries.
    """
    key = compiled.__dict__.get("_content_key")
    if key is None:
        head = json.dumps({
            "kind": compiled.kind,
            "heap_bytes": compiled.heap_bytes,
            "phases": list(compiled.phase_names),
            "schema": TRACE_SCHEMA_VERSION,
        }, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(head.encode())
        digest.update(b"\x00")
        digest.update(np.ascontiguousarray(compiled.events).tobytes())
        key = compiled.__dict__["_content_key"] = digest.hexdigest()
    return key


def product_key(trace_key: str, kernel_id: str,
                params: Sequence) -> str:
    """Entry key for one kernel product of one trace.

    ``params`` is the kernel's parameter tuple (plain scalars);
    ``repr`` canonicalizes each element the same way the shard journal
    canonicalizes replay keys.
    """
    payload = {
        "trace": trace_key,
        "kernel": kernel_id,
        "params": [repr(value) for value in params],
        "stage1": STAGE1_SCHEMA_VERSION,
    }
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _entry_path(directory: Path, key: str) -> Path:
    return directory / f"{key}.stage1.npz"


def store(directory: Union[str, Path], key: str,
          arrays: Sequence[np.ndarray]) -> Path:
    """Write a product's array tuple under ``key`` (atomically)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = _entry_path(directory, key)
    members = {f"a{i}": np.ascontiguousarray(array)
               for i, array in enumerate(arrays)}
    meta = json.dumps({"stage1": STAGE1_SCHEMA_VERSION,
                       "count": len(members)})
    tmp = path.with_name(path.name + f".tmp{os.getpid():x}")
    try:
        with open(tmp, "wb") as handle:
            np.savez(handle, meta=np.array(meta), **members)
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)
    STATS.add("stores")
    return path


def load(directory: Union[str, Path],
         key: str) -> Optional[Tuple[np.ndarray, ...]]:
    """Fetch ``key``'s array tuple, or ``None``.  A stale or unreadable
    entry warns, is deleted, and reads as a miss."""
    path = _entry_path(Path(directory), key)
    if not path.exists():
        return None
    try:
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            if meta.get("stage1") != STAGE1_SCHEMA_VERSION:
                raise ValueError(
                    f"stage-1 schema {meta.get('stage1')} != "
                    f"{STAGE1_SCHEMA_VERSION}")
            arrays = tuple(data[f"a{i}"]
                           for i in range(int(meta["count"])))
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        warnings.warn(f"discarding stale stage1-cache entry "
                      f"{path.name}: {exc}", stacklevel=2)
        STATS.add("stale")
        path.unlink(missing_ok=True)
        return None
    return arrays


def fetch(compiled: CompiledTrace, kernel_id: str, params: Sequence,
          produce: Callable[[], Sequence[np.ndarray]],
          directory: Union[str, Path, None] = None,
          require: Optional[bool] = None) -> Tuple[np.ndarray, ...]:
    """The read-through/write-through entry point.

    Returns the product's array tuple — from disk on a hit, from
    ``produce()`` (then stored) on a miss.  With no cache directory
    configured this degrades to calling ``produce`` (still honouring
    ``require``).  The per-trace in-memory memo in ``batched.py`` sits
    in front of this, so a process pays at most one disk read per
    (trace, product).
    """
    if require is None:
        require = bool(os.environ.get(REPRO_STAGE1_CACHE_REQUIRE))
    directory = cache_dir(directory)
    key = product_key(trace_content_key(compiled), kernel_id, params)
    eventlog = get_eventlog()
    if directory is not None:
        cached = load(directory, key)
        if cached is not None:
            STATS.add("hits")
            if eventlog.enabled:
                eventlog.emit("stage1_hit", kernel=kernel_id,
                              key=key[:12])
            return cached
        STATS.add("misses")
        if eventlog.enabled:
            eventlog.emit("stage1_miss", kernel=kernel_id,
                          key=key[:12])
    if require:
        raise Stage1CacheMiss(
            f"no cached stage-1 product for kernel {kernel_id!r} (key "
            f"{key[:12]}…) and {REPRO_STAGE1_CACHE_REQUIRE} forbids "
            f"recomputing it")
    arrays = tuple(np.asarray(array) for array in produce())
    if directory is not None:
        store(directory, key, arrays)
    return arrays


def clear(directory: Union[str, Path, None] = None) -> int:
    """Delete every cache entry; returns how many were removed."""
    directory = cache_dir(directory)
    if directory is None or not directory.exists():
        return 0
    removed = 0
    for path in directory.glob("*.stage1.npz"):
        path.unlink(missing_ok=True)
        removed += 1
    return removed
