"""Generators for the paper's tables (1-4)."""

from __future__ import annotations

from typing import Dict, List

from repro.config import (PAPER_HEAP_BYTES, PAPER_HEAP_SCALE, default_config,
                          scaled_heap_bytes)
from repro.core.area_power import (CHARON_AVG_POWER_W, CHARON_TOTAL_AREA_MM2,
                                   charon_area_report, charon_total_area,
                                   logic_layer_fraction,
                                   max_power_density_mw_per_mm2)
from repro.experiments.runner import collect_run
from repro.gcalgo.mark_sweep import MarkSweepGC
from repro.gcalgo.trace import Primitive
from repro.units import GB, MB
from repro.workloads.registry import TABLE3_WORKLOADS, WORKLOAD_ABBREV, \
    get_workload


def table1() -> List[Dict[str, object]]:
    """Primitive applicability across collectors (Table 1).

    ParallelScavenge rows are demonstrated by this repo's MinorGC and
    MajorGC; the CMS row by the mark-sweep collector in
    :mod:`repro.gcalgo.mark_sweep` (Copy/Search via its young-gen
    scavenges, Scan&Push in marking, no Bitmap Count — it never
    compacts).  G1 is classified per the paper's analysis.  The final
    row extends the paper's matrix with this repo's SATB
    concurrent-marking collector: non-moving (no Copy), no card
    scanning (no Search — the logged write barrier replaces the
    remembered-set rebuild), Scan&Push for marking and barrier drains,
    Bitmap Count for per-region liveness.
    """
    return [
        {"collector": "ParallelScavenge", "copy_search": "vv",
         "scan_push": "vv", "bitmap_count": "v",
         "remarks": "High throughput"},
        {"collector": "G1", "copy_search": "vv", "scan_push": "vv",
         "bitmap_count": "v", "remarks": "Low latency"},
        {"collector": "CMS", "copy_search": "vv", "scan_push": "vv",
         "bitmap_count": "x", "remarks": "No compaction"},
        {"collector": "Concurrent (SATB)", "copy_search": "x",
         "scan_push": "vv", "bitmap_count": "v",
         "remarks": "Repo extension; non-moving"},
    ]


def table1_demonstration(workload: str = "graphchi-cc"
                         ) -> Dict[str, object]:
    """Executable evidence behind the Table 1 rows.

    * the CMS row: the mark-sweep collector's traces contain Scan&Push
      but never Bitmap Count or Copy, while its young generation keeps
      the scavenger's Copy/Search;
    * the G1 row: the regional collector's traces contain all four
      primitives, with Bitmap Count applied "with minor fix" to
      per-region liveness accounting;
    * the concurrent row: the SATB collector's traces (from the
      ``concurrent-mark`` demo workload) contain Scan&Push and Bitmap
      Count but never Copy (non-moving) or Search (no card scanning).
    """
    run = collect_run(workload)
    # Young generation: ParallelScavenge minors (Copy + Search).
    minor_counts = {
        "copy": sum(t.count(Primitive.COPY) for t in run.minor_traces),
        "search": sum(t.count(Primitive.SEARCH)
                      for t in run.minor_traces),
    }
    # Old generation handled by mark-sweep on a fresh workload heap.
    workload_obj = get_workload(workload)
    heap = workload_obj.build_heap()
    from repro.workloads.mutator import MutatorDriver
    driver = MutatorDriver(heap, run_name=workload)
    workload_obj.setup(driver)
    workload_obj.iteration(driver, 0)
    sweep = MarkSweepGC(heap).collect()

    # The G1 demonstration on its own region-managed heap.
    from repro.gcalgo.g1 import G1Collector
    from repro.heap.heap import JavaHeap
    from repro.config import HeapConfig
    from repro.workloads.base import workload_klasses
    g1_heap = JavaHeap(HeapConfig(heap_bytes=8 * 1024 * 1024),
                       klasses=workload_klasses())
    g1 = G1Collector(g1_heap, region_bytes=64 * 1024)
    previous = 0
    for index in range(1200):
        view = g1.allocate("Record")
        g1_heap.set_field(view, 0, previous)
        previous = view.addr
        if index % 3 == 0:
            g1.allocate("typeArray", 256)  # garbage
    g1_heap.roots.append(previous)
    g1_trace = g1.collect()

    # The concurrent-marking demonstration: the registered synthetic
    # workload, so its (cached) traces are the same ones ``repro run
    # concurrent-mark`` replays.
    concurrent_run = collect_run("concurrent-mark")
    concurrent_counts = {
        primitive: sum(t.count(primitive)
                       for t in concurrent_run.traces)
        for primitive in Primitive
    }

    return {
        "minor_copy_events": minor_counts["copy"],
        "minor_search_events": minor_counts["search"],
        "sweep_scan_push_events": sweep.count(Primitive.SCAN_PUSH),
        "sweep_bitmap_count_events": sweep.count(Primitive.BITMAP_COUNT),
        "sweep_copy_events": sweep.count(Primitive.COPY),
        "sweep_bytes_freed": sweep.bytes_freed,
        "g1_copy_events": g1_trace.count(Primitive.COPY),
        "g1_search_events": g1_trace.count(Primitive.SEARCH),
        "g1_scan_push_events": g1_trace.count(Primitive.SCAN_PUSH),
        "g1_bitmap_count_events": g1_trace.count(
            Primitive.BITMAP_COUNT),
        "concurrent_scan_push_events": concurrent_counts[
            Primitive.SCAN_PUSH],
        "concurrent_bitmap_count_events": concurrent_counts[
            Primitive.BITMAP_COUNT],
        "concurrent_copy_events": concurrent_counts[Primitive.COPY],
        "concurrent_search_events": concurrent_counts[
            Primitive.SEARCH],
    }


def table2() -> List[Dict[str, object]]:
    """The architectural parameters actually configured (Table 2)."""
    config = default_config()
    rows = [
        {"parameter": "host cores",
         "value": config.host.num_cores},
        {"parameter": "host frequency (GHz)",
         "value": config.host.freq_hz / 1e9},
        {"parameter": "instruction window",
         "value": config.host.instruction_window},
        {"parameter": "ROB entries", "value": config.host.rob_entries},
        {"parameter": "L1D (KB)",
         "value": config.caches.l1d.size_bytes // 1024},
        {"parameter": "L2 (KB)",
         "value": config.caches.l2.size_bytes // 1024},
        {"parameter": "L3 (MB)",
         "value": config.caches.l3.size_bytes // MB},
        {"parameter": "DDR4 channels", "value": config.ddr4.channels},
        {"parameter": "DDR4 bandwidth (GB/s)",
         "value": config.ddr4.total_bandwidth / 1e9},
        {"parameter": "DDR4 energy (pJ/bit)",
         "value": config.ddr4.energy_pj_per_bit},
        {"parameter": "HMC cubes", "value": config.hmc.cubes},
        {"parameter": "HMC vaults per cube",
         "value": config.hmc.vaults_per_cube},
        {"parameter": "HMC internal BW per cube (GB/s)",
         "value": config.hmc.internal_bandwidth_per_cube / 1e9},
        {"parameter": "HMC link BW (GB/s)",
         "value": config.hmc.link_bandwidth / 1e9},
        {"parameter": "HMC link latency (ns)",
         "value": config.hmc.link_latency_s * 1e9},
        {"parameter": "HMC energy (pJ/bit)",
         "value": config.hmc.energy_pj_per_bit},
        {"parameter": "Copy/Search units",
         "value": config.charon.copy_search_units},
        {"parameter": "Bitmap Count units",
         "value": config.charon.bitmap_count_units},
        {"parameter": "Scan&Push units",
         "value": config.charon.scan_push_units},
        {"parameter": "bitmap cache (KB)",
         "value": config.charon.bitmap_cache_bytes // 1024},
        {"parameter": "MAI entries per cube",
         "value": config.charon.mai_entries_per_cube},
    ]
    return rows


def table3() -> List[Dict[str, object]]:
    """Workloads, datasets and heap sizes (Table 3), with the scale."""
    rows = []
    for name in TABLE3_WORKLOADS:
        workload = get_workload(name)
        rows.append({
            "workload": WORKLOAD_ABBREV[name],
            "framework": workload.framework,
            "dataset": workload.dataset,
            "paper_heap_gb": PAPER_HEAP_BYTES[name] / GB,
            "scaled_heap_mb": scaled_heap_bytes(name) / MB,
            "scale": f"1/{PAPER_HEAP_SCALE}",
        })
    return rows


def table4() -> List[Dict[str, object]]:
    """Charon component areas (Table 4)."""
    return charon_area_report()


def table4_summary() -> Dict[str, float]:
    """Headline area/power numbers (Sec. 5.3)."""
    return {
        "total_area_mm2": round(charon_total_area(), 4),
        "paper_total_area_mm2": CHARON_TOTAL_AREA_MM2,
        "logic_layer_fraction_pct": round(
            logic_layer_fraction() * 100.0, 2),
        "avg_power_w": CHARON_AVG_POWER_W,
        "max_power_density_mw_mm2": round(
            max_power_density_mw_per_mm2(), 1),
    }
