"""Ablation studies for the design choices DESIGN.md calls out.

The paper motivates several micro-architectural decisions without
sweeping them; these studies quantify each on the reproduced system:

* **bitmap cache** (Sec. 4.5) — how much of the Bitmap Count and
  marking speedup the 8 KB cache provides;
* **Scan&Push placement** (Sec. 4.4) — central cube (the paper's
  choice) vs. the scanned object's cube;
* **unit count** (Sec. 4.6, "Scalability of Charon") — GC throughput
  as units per cube scale;
* **offload dispatch cost** (Sec. 4.1) — sensitivity of the overall
  speedup to the host-side intrinsic overhead, which bounds how fine an
  offload granularity can pay off.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.runner import replay_platform, workload_config
from repro.gcalgo.trace import Primitive
from repro.workloads.registry import WORKLOAD_ABBREV

#: Default study workloads: one Bitmap-Count/Scan&Push-heavy graph
#: workload and one Copy-heavy Spark workload.
DEFAULT_WORKLOADS = ("graphchi-cc", "spark-bs")


def _names(workloads: Optional[Iterable[str]]) -> List[str]:
    return list(workloads) if workloads is not None \
        else list(DEFAULT_WORKLOADS)


def bitmap_cache_ablation(workloads: Optional[Iterable[str]] = None
                          ) -> List[Dict[str, object]]:
    """Charon with and without the bitmap cache."""
    rows = []
    for name in _names(workloads):
        base = workload_config(name)
        with_cache = replay_platform("charon", name, config=base)
        without = replay_platform(
            "charon", name, config=base.with_bitmap_cache(False))
        bc_with = with_cache.primitive_seconds.get(
            Primitive.BITMAP_COUNT, 0.0)
        bc_without = without.primitive_seconds.get(
            Primitive.BITMAP_COUNT, 0.0)
        rows.append({
            "workload": WORKLOAD_ABBREV[name],
            "hit_rate_pct": round(
                100 * (with_cache.bitmap_cache_hit_rate or 0.0), 1),
            "bitmap_slowdown_without": round(
                bc_without / bc_with, 2) if bc_with else None,
            "gc_slowdown_without": round(
                without.wall_seconds / with_cache.wall_seconds, 3),
        })
    return rows


def scan_push_placement_ablation(
        workloads: Optional[Iterable[str]] = None
        ) -> List[Dict[str, object]]:
    """Scan&Push at the central cube vs. at the object's cube."""
    rows = []
    for name in _names(workloads):
        base = workload_config(name)
        central = replay_platform("charon", name, config=base)
        local = replay_platform(
            "charon", name, config=base.with_scan_push_local(True))
        sp_central = central.primitive_seconds.get(
            Primitive.SCAN_PUSH, 0.0)
        sp_local = local.primitive_seconds.get(Primitive.SCAN_PUSH, 0.0)
        rows.append({
            "workload": WORKLOAD_ABBREV[name],
            "scan_push_central_ms": round(sp_central * 1e3, 3),
            "scan_push_local_ms": round(sp_local * 1e3, 3),
            "central_advantage": round(
                sp_local / sp_central, 3) if sp_central else None,
            "local_fraction_central": round(
                100 * (central.local_fraction or 0), 1),
            "local_fraction_local": round(
                100 * (local.local_fraction or 0), 1),
        })
    return rows


def unit_count_sweep(workloads: Optional[Iterable[str]] = None,
                     factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0)
                     ) -> List[Dict[str, object]]:
    """GC speedup over cpu-ddr4 as the unit count scales."""
    rows = []
    for name in _names(workloads):
        baseline = replay_platform("cpu-ddr4", name).wall_seconds
        row: Dict[str, object] = {"workload": WORKLOAD_ABBREV[name]}
        for factor in factors:
            config = workload_config(name).scaled_charon_units(factor)
            wall = replay_platform("charon", name,
                                   config=config).wall_seconds
            units = config.charon.copy_search_units \
                + config.charon.bitmap_count_units \
                + config.charon.scan_push_units
            row[f"units_{units}"] = round(baseline / wall, 2)
        rows.append(row)
    return rows


def topology_ablation(workloads: Optional[Iterable[str]] = None
                      ) -> List[Dict[str, object]]:
    """Star vs fully-connected inter-cube links (Sec. 4.6 future work).

    Spoke-to-spoke traffic takes one hop instead of two and no longer
    funnels through the central cube's links, which matters exactly as
    much as the workload's remote fraction says it should.
    """
    rows = []
    for name in _names(workloads):
        base = workload_config(name)
        star = replay_platform("charon", name, config=base)
        full = replay_platform(
            "charon", name,
            config=base.with_topology("fully-connected"))
        rows.append({
            "workload": WORKLOAD_ABBREV[name],
            "star_ms": round(star.wall_seconds * 1e3, 3),
            "fully_connected_ms": round(full.wall_seconds * 1e3, 3),
            "speedup": round(star.wall_seconds / full.wall_seconds, 3),
            "remote_pct": round(
                100 * (1 - (star.local_fraction or 1.0)), 1),
        })
    return rows


def dispatch_overhead_sweep(
        workloads: Optional[Iterable[str]] = None,
        overheads_ns: Sequence[float] = (0.0, 20.0, 100.0, 500.0)
        ) -> List[Dict[str, object]]:
    """Sensitivity of the Charon speedup to the intrinsic's host cost.

    The paper's fine-grained offload only works because dispatch is
    cheap; this sweep shows where a heavier runtime interface (e.g. a
    syscall) would erase the wins on small-object workloads.
    """
    rows = []
    for name in _names(workloads):
        baseline = replay_platform("cpu-ddr4", name).wall_seconds
        row: Dict[str, object] = {"workload": WORKLOAD_ABBREV[name]}
        for overhead in overheads_ns:
            config = workload_config(name).with_dispatch_overhead(
                overhead * 1e-9)
            wall = replay_platform("charon", name,
                                   config=config).wall_seconds
            row[f"{overhead:g}ns"] = round(baseline / wall, 2)
        rows.append(row)
    return rows
