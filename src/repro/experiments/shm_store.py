"""Zero-copy shared-memory store for compiled traces.

``replay_grid`` captures every workload run in the parent, but pool
workers that did not inherit those pages — a spawn-started pool, or a
warm pool forked before the traces existed — historically re-loaded
(and re-decompressed) the same columnar ``.npz`` per worker.  This
module publishes each compiled trace's event columns **once** into
:mod:`multiprocessing.shared_memory` segments; workers reconstruct
read-only numpy views over the same physical pages, so a trace costs
one copy system-wide no matter how many workers replay it (and the
``bench_scale`` RSS contract keeps holding: shared pages are counted
once).

Lifecycle:

* :func:`publish` creates the segments for a trace list under a key
  (idempotent per key — republishing bumps a refcount and returns the
  existing handles).  Handles are small picklable dicts (segment name,
  event count, trace metadata) that travel to workers inside job
  payloads.
* :func:`attach` (worker side) maps the named segments and rebuilds
  :class:`~repro.gcalgo.columnar.CompiledTrace` objects whose
  ``events`` are zero-copy views; attachments are memoized per segment
  so repeated cells on a warm worker reuse the mapping.
* :func:`release` decrements a key's refcount and unlinks at zero;
  :func:`shutdown` (registered ``atexit`` in the owning process)
  closes and unlinks everything this process published, so ``/dev/shm``
  is left clean even after an aborted sweep.  Workers only ever
  ``close`` their mappings — POSIX keeps an unlinked segment alive
  until the last mapping drops, so the parent may unlink eagerly while
  warm workers stay attached.
"""

from __future__ import annotations

import atexit
import os
import threading
from multiprocessing import shared_memory
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.trace_cache import CacheStats
from repro.gcalgo.columnar import (CompiledTrace, EVENT_DTYPE,
                                   STAT_FIELDS, TRACE_SCHEMA_VERSION)
from repro.gcalgo.trace import ResidualWork
from repro.obs.eventlog import get_eventlog


class ShmStats(CacheStats):
    """Fork-shared tally of the store's lifecycle events."""

    FIELDS = ("publishes", "attaches", "releases", "unlinks")


#: Cumulative store behaviour for this process tree.
STATS = ShmStats()


class _Publication:
    """One published trace list: its handles, segments and refcount."""

    def __init__(self, handles: List[dict],
                 segments: List[shared_memory.SharedMemory]) -> None:
        self.handles = handles
        self.segments = segments
        self.refs = 1


#: Publications owned by this process, by caller key.
_PUBLISHED: Dict[tuple, _Publication] = {}
#: Worker-side mappings, by segment name (kept open between cells).
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}
_LOCK = threading.Lock()
_SEQUENCE = 0


def reset_stats() -> None:
    STATS.update(publishes=0, attaches=0, releases=0, unlinks=0)


def _segment_name() -> str:
    global _SEQUENCE
    _SEQUENCE += 1
    return f"repro_shm_{os.getpid():x}_{_SEQUENCE:x}"


def publish(key: tuple,
            traces: Sequence[CompiledTrace]) -> Tuple[dict, ...]:
    """Publish ``traces`` under ``key``; returns the picklable handles.

    Idempotent per key: a repeat publish bumps the refcount and returns
    the existing handles without copying anything.
    """
    with _LOCK:
        publication = _PUBLISHED.get(key)
        if publication is not None:
            publication.refs += 1
            return tuple(publication.handles)
        handles: List[dict] = []
        segments: List[shared_memory.SharedMemory] = []
        try:
            for trace in traces:
                events = np.ascontiguousarray(trace.events)
                segment = shared_memory.SharedMemory(
                    name=_segment_name(), create=True,
                    size=max(1, events.nbytes))
                segments.append(segment)
                view = np.ndarray(len(events), dtype=EVENT_DTYPE,
                                  buffer=segment.buf)
                view[:] = events
                handles.append({
                    "segment": segment.name,
                    "events": len(events),
                    "kind": trace.kind,
                    "heap_bytes": trace.heap_bytes,
                    "phase_names": list(trace.phase_names),
                    "residuals": {
                        phase: (work.instructions, work.bytes_accessed)
                        for phase, work in trace.residuals.items()},
                    "stats": {name: getattr(trace, name)
                              for name in STAT_FIELDS},
                    "schema": TRACE_SCHEMA_VERSION,
                })
        except BaseException:
            for segment in segments:
                segment.close()
                segment.unlink()
            raise
        _PUBLISHED[key] = _Publication(handles, segments)
    STATS.add("publishes")
    eventlog = get_eventlog()
    if eventlog.enabled:
        eventlog.emit("shm_publish", traces=len(handles),
                      bytes=sum(max(1, h["events"])
                                * EVENT_DTYPE.itemsize for h in handles))
    return tuple(handles)


def attach(handles: Sequence[dict]) -> List[CompiledTrace]:
    """Rebuild the published traces as zero-copy views (worker side).

    Each segment is mapped once per process and kept open, so a warm
    worker replaying many cells pays one ``shm_open`` per trace total.
    """
    traces: List[CompiledTrace] = []
    for handle in handles:
        if handle.get("schema") != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"shared trace schema {handle.get('schema')} != "
                f"{TRACE_SCHEMA_VERSION}")
        with _LOCK:
            segment = _ATTACHED.get(handle["segment"])
            if segment is None:
                segment = _attach_untracked(handle["segment"])
                _ATTACHED[handle["segment"]] = segment
                STATS.add("attaches")
        events = np.ndarray(handle["events"], dtype=EVENT_DTYPE,
                            buffer=segment.buf)
        events.flags.writeable = False
        residuals = {
            phase: ResidualWork(instructions=instructions,
                                bytes_accessed=accessed)
            for phase, (instructions, accessed)
            in handle["residuals"].items()}
        traces.append(CompiledTrace(
            handle["kind"], handle["heap_bytes"], events,
            handle["phase_names"], residuals, **handle["stats"]))
    return traces


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Map ``name`` without registering it with the resource tracker.

    Attaching normally registers the segment with the process tree's
    *shared* tracker process (an opt-out ``track=False`` exists only in
    newer Pythons).  Left in place, the tracker would warn about — and
    try to unlink — segments the owning parent already manages; and
    unregistering after the fact from several workers trips the
    tracker's set-based cache on the duplicates.  Suppressing the
    registration at map time sidesteps both: ownership stays with the
    publisher, and workers never tear segments down behind it.  The
    monkeypatch window is serialized by ``_LOCK`` (every caller holds
    it).
    """
    from multiprocessing import resource_tracker
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _unlink(publication: _Publication) -> None:
    for segment in publication.segments:
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - raced external cleanup
            pass
        STATS.add("unlinks")


def release(key: tuple) -> None:
    """Drop one reference to ``key``; unlink its segments at zero."""
    with _LOCK:
        publication = _PUBLISHED.get(key)
        if publication is None:
            return
        publication.refs -= 1
        done = publication.refs <= 0
        if done:
            del _PUBLISHED[key]
    STATS.add("releases")
    if done:
        _unlink(publication)


def published_segments() -> List[str]:
    """Names of every segment this process currently owns (tests and
    the leak check)."""
    with _LOCK:
        return [segment.name for publication in _PUBLISHED.values()
                for segment in publication.segments]


def shutdown() -> None:
    """Unlink everything this process published and close every
    attachment.  Safe to call repeatedly; forked children inherit the
    registry but only ever *close* (the publisher pid owns unlinking —
    each publication's segments were created by the process that holds
    them in ``_PUBLISHED``, which fork-copies into children that then
    re-publish under new names if they ever publish at all)."""
    with _LOCK:
        published = list(_PUBLISHED.values())
        _PUBLISHED.clear()
        attached = list(_ATTACHED.values())
        _ATTACHED.clear()
    for segment in attached:
        try:
            segment.close()
        except OSError:  # pragma: no cover - best-effort close
            pass
    for publication in published:
        _unlink(publication)


atexit.register(shutdown)
