"""Run workloads, cache their traces, and replay them on platforms.

This module is the capture-once/replay-many hub of the experiment
pipeline:

* functional runs are memoised in-process (``_RUN_CACHE``) *and*
  persisted through the content-addressed
  :mod:`~repro.experiments.trace_cache`, so a warmed cache directory
  lets a whole benchmark session replay without executing a collector;
* each run's traces are compiled once to columnar form
  (``_COMPILED_CACHE``) for the vectorized fast-path replayer, which
  :func:`replay_platform` selects automatically per platform via
  :func:`repro.platform.fast_replay.make_replayer`;
* :func:`replay_grid` fans the platform x workload grid out over
  worker processes with a deterministic merge.  With a shard journal
  configured (``REPRO_SHARD_JOURNAL`` or ``journal=``), the grid
  decomposes into durable per-cell shards: workers *steal* pending
  shards through :mod:`~repro.experiments.shard_journal` claim files,
  every finished cell persists immediately, and an interrupted sweep
  resumes from the completed shards with a byte-identical merge.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.config import (REPLAY_JOBS_ENV, SystemConfig, default_config,
                          default_replay_config)
from repro.errors import OutOfMemoryError
from repro.experiments import (progress, shard_journal, shm_store,
                               trace_cache, workers)
from repro.gcalgo.columnar import CompiledTrace, compile_traces
from repro.heap.heap import JavaHeap
from repro.obs import provenance
from repro.obs.adapters import timing_metrics
from repro.obs.metrics import global_metrics
from repro.obs.tracer import get_tracer
from repro.platform import build_platform
from repro.platform.fast_replay import FastTraceReplayer, make_replayer
from repro.platform.timing import GCTimingResult
from repro.workloads import get_workload, run_workload
from repro.workloads.base import workload_klasses
from repro.workloads.mutator import WorkloadRun

_RUN_CACHE: Dict[Tuple[str, int], WorkloadRun] = {}
_COMPILED_CACHE: Dict[Tuple[str, int], List[CompiledTrace]] = {}
_REPLAY_CACHE: Dict[tuple, GCTimingResult] = {}


def default_heap_bytes(name: str) -> int:
    """The registered workload's default heap size.

    For the Table 3 applications this is the paper heap scaled by
    1/256; synthetic workloads (like ``concurrent-mark``) declare
    their own sizes, which ``scaled_heap_bytes`` knows nothing about.
    """
    return get_workload(name).default_heap_bytes


def workload_config(name: str,
                    heap_bytes: Optional[int] = None) -> SystemConfig:
    """The Table 2 system configuration sized for ``name``'s heap."""
    resolved = heap_bytes or default_heap_bytes(name)
    return default_config().with_heap_bytes(resolved)


def collect_run(name: str,
                heap_bytes: Optional[int] = None) -> WorkloadRun:
    """Run (or fetch the cached run of) a workload.

    The functional execution is deterministic, so traces are safely
    memoised per (workload, heap size) — in this process and, when
    ``REPRO_TRACE_CACHE`` names a directory, on disk through the
    content-addressed trace cache.
    """
    resolved = heap_bytes or default_heap_bytes(name)
    key = (name, resolved)
    if key not in _RUN_CACHE:
        config = workload_config(name, resolved)
        started = time.perf_counter()
        with get_tracer().span("collect-run", cat="runner",
                               workload=name):
            run, compiled = trace_cache.fetch_run(
                name, config,
                lambda: run_workload(name, heap_bytes=resolved))
        provenance.record_run(
            workload=name, heap_bytes=resolved,
            config_hash=trace_cache.run_cache_key(name, config),
            cache="hit" if compiled is not None else "generated",
            host_seconds=time.perf_counter() - started)
        _RUN_CACHE[key] = run
        if compiled is not None:
            _COMPILED_CACHE[key] = compiled
    return _RUN_CACHE[key]


def compiled_run_traces(name: str,
                        heap_bytes: Optional[int] = None
                        ) -> List[CompiledTrace]:
    """A workload run's traces in columnar form (compiled once)."""
    resolved = heap_bytes or default_heap_bytes(name)
    key = (name, resolved)
    if key not in _COMPILED_CACHE:
        run = collect_run(name, resolved)
        # collect_run may have filled it from a disk-cache hit.
        if key not in _COMPILED_CACHE:
            _COMPILED_CACHE[key] = compile_traces(run.traces)
    return _COMPILED_CACHE[key]


def clear_cache() -> None:
    _RUN_CACHE.clear()
    _COMPILED_CACHE.clear()
    _REPLAY_CACHE.clear()


def layout_heap(name: str,
                heap_bytes: Optional[int] = None) -> JavaHeap:
    """A heap with the same address layout the cached run used.

    Platforms only need the layout/metadata addresses, which depend
    solely on the heap configuration.
    """
    config = workload_config(name, heap_bytes)
    return JavaHeap(config.heap, klasses=workload_klasses())


def _replay_key(platform_name: str, name: str, config: SystemConfig,
                threads: Optional[int]) -> tuple:
    """Memo key: the parameters that affect replay timing."""
    charon = config.charon
    return (platform_name, name, config.heap.heap_bytes,
            threads, config.gc_threads, charon.distributed,
            charon.copy_search_units, charon.bitmap_count_units,
            charon.scan_push_units, charon.bitmap_cache_enabled,
            charon.scan_push_local, config.hmc.topology,
            config.costs.charon_dispatch_overhead_s)


def replay_platform(platform_name: str, name: str,
                    heap_bytes: Optional[int] = None,
                    config: Optional[SystemConfig] = None,
                    threads: Optional[int] = None) -> GCTimingResult:
    """Replay a workload's full GC history on one platform.

    Results are memoised on the parameters that affect timing (platform,
    heap, thread count, Charon organisation/unit counts).  Platforms
    that declare the vectorized fast path equivalent replay the
    compiled columnar traces; the rest replay event by event.
    """
    resolved_config = config or workload_config(name, heap_bytes)
    # REPRO_REPLAY_MODE pins the replayer for the whole pipeline:
    # "fast" turns silent fallbacks into hard errors (the CI coverage
    # check), "event" forces the golden path for A/B comparison.
    mode = default_replay_config().fast_path
    key = _replay_key(platform_name, name, resolved_config, threads) \
        + (mode,)
    if key not in _REPLAY_CACHE:
        heap = JavaHeap(resolved_config.heap,
                        klasses=workload_klasses())
        platform = build_platform(platform_name, resolved_config, heap)
        replayer = make_replayer(platform, threads=threads, mode=mode)
        # The compiled-trace path never needs the WorkloadRun itself,
        # so a warm worker whose _COMPILED_CACHE was primed (from the
        # trace cache or a shared-memory attachment) replays without
        # capturing — only the event-by-event path demands the run.
        if isinstance(replayer, FastTraceReplayer):
            traces: Iterable = compiled_run_traces(name, heap_bytes)
        else:
            traces = collect_run(name, heap_bytes).traces
        with get_tracer().span("replay", cat="runner", workload=name,
                               platform=platform_name):
            result = replayer.replay_all(traces)
        timing_metrics(global_metrics(), result, workload=name)
        _REPLAY_CACHE[key] = result
    return _REPLAY_CACHE[key]


# -- grid fan-out ----------------------------------------------------------

def _grid_worker(job: tuple) -> GCTimingResult:
    platform_name, name, heap_bytes, threads = job
    return replay_platform(platform_name, name, heap_bytes=heap_bytes,
                           threads=threads)


def _memo_key(job: tuple) -> tuple:
    """The _REPLAY_CACHE key a job resolves to (mode included)."""
    platform_name, name, heap_bytes, threads = job
    return _replay_key(platform_name, name,
                       workload_config(name, heap_bytes), threads) \
        + (default_replay_config().fast_path,)


def _journal_worker(payload: tuple) -> None:
    """One pool worker's work-stealing pass over the pending shards."""
    directory, items = payload
    shard_journal.sweep_shards(Path(directory), dict(items),
                               _grid_worker)


def _publish_runs(jobs: Iterable[tuple]) -> tuple:
    """Publish the jobs' compiled traces to the shared-memory store.

    Returns ``((run_key, handles), ...)`` for the warm-pool payloads;
    each distinct (workload, heap) publishes once, and repeat grids
    over the same runs reuse the existing segments.
    """
    published = []
    seen = set()
    for _, name, heap_bytes, _ in jobs:
        key = (name, heap_bytes or default_heap_bytes(name))
        if key in seen:
            continue
        seen.add(key)
        published.append((key,
                          shm_store.publish(key, _COMPILED_CACHE[key])))
    return tuple(published)


def replay_grid(platform_names: Iterable[str],
                workload_names: Iterable[str],
                heap_bytes: Optional[int] = None,
                threads: Optional[int] = None,
                processes: Optional[int] = None,
                journal: Union[str, Path, None] = None
                ) -> Dict[Tuple[str, str], GCTimingResult]:
    """Replay every platform x workload pair; returns the result grid.

    ``processes`` > 1 fans the pairs out over worker processes
    (default from ``REPRO_JOBS``).  Workload runs are captured in the
    parent first, so children inherit the traces instead of
    regenerating them; results merge back in job order, so the outcome
    — including the parent's replay memo — is identical to a serial
    sweep regardless of worker scheduling.  With ``REPRO_WARM_POOL``
    set (or on spawn-only platforms, always) the fan-out runs on the
    persistent pool from :mod:`~repro.experiments.workers`: compiled
    traces travel through the zero-copy shared-memory store and the
    workers stay warm across calls.

    With a journal directory (``journal=`` or ``REPRO_SHARD_JOURNAL``)
    the sweep becomes durable and work-stealing: each cell is a shard
    keyed on its replay parameters, completed shards persist the moment
    they finish and are *not* re-executed on a resumed sweep (they load
    back through :func:`~repro.experiments.shard_journal.load_shard`,
    counted as ``hits``), and pool workers claim pending shards
    first-come-first-served instead of a static partition.  The merged
    grid is byte-identical whether the sweep ran once or resumed.
    """
    platform_names = list(platform_names)
    workload_names = list(workload_names)
    if processes is None:
        processes = int(os.environ.get(REPLAY_JOBS_ENV) or 1)
    jobs = [(platform, name, heap_bytes, threads)
            for name in workload_names for platform in platform_names]
    for name in workload_names:
        collect_run(name, heap_bytes)
        compiled_run_traces(name, heap_bytes)
    journal_path = shard_journal.journal_dir(journal)
    if journal_path is not None:
        _sweep_journaled(journal_path, jobs, processes)
    else:
        pending = [job for job in jobs
                   if _memo_key(job) not in _REPLAY_CACHE]
        results = None
        if processes > 1 and len(pending) > 1:
            pool = (workers.get_pool(processes)
                    if workers.use_warm_pool() else None)
            if pool is not None:
                published = _publish_runs(pending)
                results = pool.map(workers._warm_cell,
                                   [(published, job)
                                    for job in pending])
            elif _fork_available():
                workers.note_start_method("fork")
                context = multiprocessing.get_context("fork")
                with context.Pool(min(processes,
                                      len(pending))) as forked:
                    # chunksize=1: cells are coarse and uneven, and
                    # contiguous chunking can serialize the most
                    # expensive ones onto a single worker.
                    results = forked.map(_grid_worker, pending,
                                         chunksize=1)
        if results is not None:
            for job, result in zip(pending, results):
                _REPLAY_CACHE[_memo_key(job)] = result
        else:
            for job in pending:
                _grid_worker(job)
    # Journal/memo hits return straight from the replay memo — the old
    # per-cell replay_platform rebuild re-derived every memo key (and
    # config) even when nothing was left to replay.
    grid: Dict[Tuple[str, str], GCTimingResult] = {}
    for job in jobs:
        platform, name, job_heap, job_threads = job
        result = _REPLAY_CACHE.get(_memo_key(job))
        if result is None:  # backstop: a worker died mid-cell
            result = replay_platform(platform, name,
                                     heap_bytes=job_heap,
                                     threads=job_threads)
        grid[(platform, name)] = result
    return grid


def _sweep_journaled(directory: Path, jobs: List[tuple],
                     processes: int) -> None:
    """Run the grid as durable shards, resuming completed ones.

    Fills ``_REPLAY_CACHE`` for every job.  Shards already in the
    journal load without executing a replay; the rest are swept with
    work-stealing claims — forked workers when ``processes`` allows,
    and always a final serial pass in the parent, which doubles as the
    backstop should a worker die mid-shard (its claim is released by
    ``reset_claims`` on the next sweep, its result simply missing now).

    The parent also announces the grid to the progress monitor
    (``sweep.json`` + ``progress.json`` beside the journal, and the
    live ``/progress`` endpoint when one is serving): every shard's
    state is thereafter derivable from the journal itself, so watchers
    see completion reach 100% exactly when the last shard persists —
    memo-served cells are backfilled into the journal so they count as
    done rather than lingering as phantom pendings.
    """
    shard_journal.reset_claims(directory)
    pending: Dict[str, tuple] = {}
    manifest: Dict[str, dict] = {}
    for job in jobs:
        platform_name, name, heap_bytes, threads = job
        memo_key = _memo_key(job)
        key = shard_journal.shard_key(memo_key)
        manifest[key] = {
            "platform": platform_name,
            "workload": name,
            "heap_bytes": heap_bytes,
            "threads": threads,
            "events": sum(len(trace) for trace
                          in compiled_run_traces(name, heap_bytes)),
        }
        if memo_key in _REPLAY_CACHE:
            if not shard_journal.has_shard(directory, key):
                shard_journal.store_shard(directory, key,
                                          _REPLAY_CACHE[memo_key])
            continue
        cached = shard_journal.load_shard(directory, key)
        if cached is not None:
            shard_journal.STATS.add("hits")
            _REPLAY_CACHE[memo_key] = cached
        else:
            pending[key] = job
    progress.write_sweep_manifest(directory, manifest)
    progress.attach_live(directory)
    progress.refresh_progress(directory)
    if processes > 1 and len(pending) > 1:
        stealers = min(processes, len(pending))
        pool = (workers.get_pool(processes)
                if workers.use_warm_pool() else None)
        if pool is not None:
            payload = (_publish_runs(pending.values()),
                       str(directory), tuple(pending.items()))
            pool.map(workers._warm_journal, [payload] * stealers)
        elif _fork_available():
            workers.note_start_method("fork")
            payload = (str(directory), tuple(pending.items()))
            context = multiprocessing.get_context("fork")
            with context.Pool(stealers) as forked:
                forked.map(_journal_worker, [payload] * stealers)
    shard_journal.sweep_shards(directory, pending, _grid_worker)
    for key, job in pending.items():
        result = shard_journal.load_shard(directory, key)
        if result is not None:
            _REPLAY_CACHE[_memo_key(job)] = result
    progress.refresh_progress(directory)


def _fork_available() -> bool:
    # Gates only the classic pool-per-call path: a fresh *spawn* pool
    # per grid would re-import cold every time, so spawn-only
    # platforms route through the persistent warm pool instead (see
    # workers.use_warm_pool) — never the old serial fallback.
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


def find_min_heap(name: str, granularity_fraction: float = 0.125,
                  lower_fraction: float = 0.25) -> int:
    """Smallest heap (to a granularity) at which the workload survives.

    The Fig. 2 methodology: shrink the heap until the run dies with an
    out-of-memory error, then report the smallest surviving size.
    Searches between ``lower_fraction`` and 1.0 of the Table 3 heap by
    bisection at ``granularity_fraction`` steps.
    """
    default_bytes = default_heap_bytes(name)
    granularity = max(1 << 20, int(default_bytes * granularity_fraction))

    def survives(heap_bytes: int) -> bool:
        try:
            collect_run(name, heap_bytes=heap_bytes)
            return True
        except OutOfMemoryError:
            return False

    low = int(default_bytes * lower_fraction) // granularity
    high = default_bytes // granularity
    if not survives(high * granularity):
        raise OutOfMemoryError(
            f"{name} does not survive its Table 3 heap; "
            "workload parameters are inconsistent")
    while low < high:
        mid = (low + high) // 2
        if survives(mid * granularity):
            high = mid
        else:
            low = mid + 1
    return high * granularity
