"""Run workloads, cache their traces, and replay them on platforms."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config import SystemConfig, default_config, scaled_heap_bytes
from repro.errors import OutOfMemoryError
from repro.heap.heap import JavaHeap
from repro.platform import TraceReplayer, build_platform
from repro.platform.timing import GCTimingResult
from repro.workloads import run_workload
from repro.workloads.base import workload_klasses
from repro.workloads.mutator import WorkloadRun

_RUN_CACHE: Dict[Tuple[str, int], WorkloadRun] = {}
_REPLAY_CACHE: Dict[tuple, GCTimingResult] = {}


def workload_config(name: str,
                    heap_bytes: Optional[int] = None) -> SystemConfig:
    """The Table 2 system configuration sized for ``name``'s heap."""
    resolved = heap_bytes or scaled_heap_bytes(name)
    return default_config().with_heap_bytes(resolved)


def collect_run(name: str,
                heap_bytes: Optional[int] = None) -> WorkloadRun:
    """Run (or fetch the cached run of) a workload.

    The functional execution is deterministic, so traces are safely
    memoised per (workload, heap size).
    """
    resolved = heap_bytes or scaled_heap_bytes(name)
    key = (name, resolved)
    if key not in _RUN_CACHE:
        _RUN_CACHE[key] = run_workload(name, heap_bytes=resolved)
    return _RUN_CACHE[key]


def clear_cache() -> None:
    _RUN_CACHE.clear()
    _REPLAY_CACHE.clear()


def layout_heap(name: str,
                heap_bytes: Optional[int] = None) -> JavaHeap:
    """A heap with the same address layout the cached run used.

    Platforms only need the layout/metadata addresses, which depend
    solely on the heap configuration.
    """
    config = workload_config(name, heap_bytes)
    return JavaHeap(config.heap, klasses=workload_klasses())


def replay_platform(platform_name: str, name: str,
                    heap_bytes: Optional[int] = None,
                    config: Optional[SystemConfig] = None,
                    threads: Optional[int] = None) -> GCTimingResult:
    """Replay a workload's full GC history on one platform.

    Results are memoised on the parameters that affect timing (platform,
    heap, thread count, Charon organisation/unit counts).
    """
    run = collect_run(name, heap_bytes)
    resolved_config = config or workload_config(name, heap_bytes)
    charon = resolved_config.charon
    key = (platform_name, name, resolved_config.heap.heap_bytes,
           threads, resolved_config.gc_threads, charon.distributed,
           charon.copy_search_units, charon.bitmap_count_units,
           charon.scan_push_units, charon.bitmap_cache_enabled,
           charon.scan_push_local, resolved_config.hmc.topology,
           resolved_config.costs.charon_dispatch_overhead_s)
    if key not in _REPLAY_CACHE:
        heap = JavaHeap(resolved_config.heap,
                        klasses=workload_klasses())
        platform = build_platform(platform_name, resolved_config, heap)
        replayer = TraceReplayer(platform, threads=threads)
        _REPLAY_CACHE[key] = replayer.replay_all(run.traces)
    return _REPLAY_CACHE[key]


def find_min_heap(name: str, granularity_fraction: float = 0.125,
                  lower_fraction: float = 0.25) -> int:
    """Smallest heap (to a granularity) at which the workload survives.

    The Fig. 2 methodology: shrink the heap until the run dies with an
    out-of-memory error, then report the smallest surviving size.
    Searches between ``lower_fraction`` and 1.0 of the Table 3 heap by
    bisection at ``granularity_fraction`` steps.
    """
    default_bytes = scaled_heap_bytes(name)
    granularity = max(1 << 20, int(default_bytes * granularity_fraction))

    def survives(heap_bytes: int) -> bool:
        try:
            collect_run(name, heap_bytes=heap_bytes)
            return True
        except OutOfMemoryError:
            return False

    low = int(default_bytes * lower_fraction) // granularity
    high = default_bytes // granularity
    if not survives(high * granularity):
        raise OutOfMemoryError(
            f"{name} does not survive its Table 3 heap; "
            "workload parameters are inconsistent")
    while low < high:
        mid = (low + high) // 2
        if survives(mid * granularity):
            high = mid
        else:
            low = mid + 1
    return high * granularity
