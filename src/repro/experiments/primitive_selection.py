"""Section 3.3 made executable: why these three primitives?

The paper's offload set is chosen by GC-time coverage *and* by what
actually benefits from near-memory execution.  It names two
counter-examples:

* *traverse linked list* — "relatively small benefits because of
  limited parallelism and latency-bound characteristics";
* *allocate / check mark* — "essentially single atomic instructions
  whose potential benefits from offloading are outweighed by the
  overheads due to their small offloading granularities".

These studies time both on the reproduced platforms, alongside a Copy
of equal byte volume, so the selection argument can be checked rather
than taken on faith.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import SystemConfig, default_config
from repro.gcalgo.trace import Primitive, TraceEvent
from repro.heap.heap import JavaHeap
from repro.mem.hmc import HMCSystem
from repro.platform.factory import build_platform
from repro.units import CACHE_LINE, MB
from repro.workloads.base import workload_klasses

HEAP_BYTES = 16 * MB


def _kit(config: SystemConfig = None):
    config = config or default_config().with_heap_bytes(HEAP_BYTES)
    heap = JavaHeap(config.heap, klasses=workload_klasses())
    host = build_platform("cpu-ddr4", config, heap)
    charon = build_platform("charon", config, heap)
    return config, heap, host, charon


def linked_list_study(nodes: int = 4096) -> List[Dict[str, object]]:
    """Pointer chasing: host vs a hypothetical full-traversal offload
    vs per-node offloads, vs a Copy of the same byte volume.

    The traversal is fully dependent, so the only near-memory win is
    the latency delta between a host access (DRAM + off-chip link) and
    a logic-layer access (TSV) — nothing like the bandwidth-parallel
    wins of the real primitives.
    """
    config, heap, host, charon = _kit()
    node_bytes = CACHE_LINE

    # Host: N dependent cold misses.
    host_seconds = nodes * (config.ddr4.access_latency_s
                            + 1.0 / config.host.freq_hz * 8)

    # Hypothetical unit: N dependent local HMC accesses plus one
    # offload round trip.
    hmc = HMCSystem(config.hmc)
    unit_seconds = (config.costs.charon_dispatch_overhead_s
                    + 2 * (hmc.host_link.latency)
                    + nodes * config.hmc.access_latency_s)

    # Per-node offloads: each hop pays the full offload round trip.
    per_node_seconds = nodes * (
        config.costs.charon_dispatch_overhead_s
        + 2 * hmc.host_link.latency
        + config.hmc.access_latency_s)

    # The same byte volume as a Copy primitive, for contrast.
    volume = nodes * node_bytes
    copy_event = TraceEvent(Primitive.COPY, "evacuate",
                            src=heap.layout.eden.start,
                            dst=heap.layout.old.start,
                            size_bytes=volume)
    host_copy = host.cost_model.event_finish(0.0, copy_event)
    charon_copy = charon.offload_finish(0.0, copy_event, "minor")

    return [
        {"operation": "traverse list (host)",
         "seconds_us": round(host_seconds * 1e6, 2), "speedup": 1.0},
        {"operation": "traverse list (charon, one offload)",
         "seconds_us": round(unit_seconds * 1e6, 2),
         "speedup": round(host_seconds / unit_seconds, 2)},
        {"operation": "traverse list (charon, per-node offloads)",
         "seconds_us": round(per_node_seconds * 1e6, 2),
         "speedup": round(host_seconds / per_node_seconds, 2)},
        {"operation": "copy of equal bytes (host)",
         "seconds_us": round(host_copy * 1e6, 2), "speedup": 1.0},
        {"operation": "copy of equal bytes (charon)",
         "seconds_us": round(charon_copy * 1e6, 2),
         "speedup": round(host_copy / charon_copy, 2)},
    ]


def check_mark_study() -> List[Dict[str, object]]:
    """A single mark-word check: offload round trip vs host access.

    The offload packet path alone dwarfs the operation, which is the
    paper's "small offloading granularity" point.
    """
    config, heap, host, charon = _kit()
    hmc = HMCSystem(config.hmc)

    host_seconds = config.ddr4.access_latency_s \
        + 4.0 / config.host.freq_hz
    # Host with a warm cache (the common case mid-GC).
    host_hit_seconds = config.costs.cache_hit_latency_s

    offload_seconds = (config.costs.charon_dispatch_overhead_s
                       + 2 * hmc.host_link.latency
                       + config.hmc.access_latency_s
                       + (config.charon.request_packet_bytes
                          + config.charon.response_packet_bytes)
                       / config.hmc.link_bandwidth)

    return [
        {"operation": "check mark (host, cold)",
         "seconds_ns": round(host_seconds * 1e9, 1)},
        {"operation": "check mark (host, cached)",
         "seconds_ns": round(host_hit_seconds * 1e9, 1)},
        {"operation": "check mark (offloaded)",
         "seconds_ns": round(offload_seconds * 1e9, 1)},
    ]


def selection_summary() -> Dict[str, object]:
    """The Sec. 3.3 conclusion in numbers."""
    traverse = linked_list_study()
    marks = check_mark_study()
    copy_speedup = traverse[-1]["speedup"]
    traversal_speedup = traverse[1]["speedup"]
    offload_ns = marks[-1]["seconds_ns"]
    host_cached_ns = marks[1]["seconds_ns"]
    return {
        "copy_speedup": copy_speedup,
        "traversal_speedup": traversal_speedup,
        # "relatively small benefits" (Sec. 3.3): the latency-bound
        # traversal gains a small constant factor while the
        # parallelism-rich primitives gain an order of magnitude.
        "traversal_benefit_small":
            traversal_speedup < copy_speedup / 3.0,
        "check_mark_offload_penalty": round(
            offload_ns / host_cached_ns, 1),
    }
