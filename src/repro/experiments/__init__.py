"""Experiment drivers: one entry point per results table and figure.

Each ``figure*``/``table*`` function returns structured rows; the
benchmark harness prints them via :mod:`repro.experiments.report` and
EXPERIMENTS.md records how they compare to the paper.  Workload runs
are expensive (they execute real collections), so
:mod:`repro.experiments.runner` memoises traces per (workload, heap).
"""

from repro.experiments.runner import (clear_cache, collect_run,
                                      find_min_heap, replay_platform,
                                      workload_config)
from repro.experiments import figures, tables
from repro.experiments.report import render_table

__all__ = [
    "clear_cache",
    "collect_run",
    "find_min_heap",
    "replay_platform",
    "workload_config",
    "figures",
    "tables",
    "render_table",
]
