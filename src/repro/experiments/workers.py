"""Persistent warm worker pool for sweep fan-out.

``replay_grid`` historically forked a fresh ``Pool`` per call: every
worker's stage-1 memos, trace attachments and imports died with the
call, and spawn-only platforms (no ``fork`` start method) silently fell
back to a serial sweep even with ``REPRO_JOBS>1``.  This module keeps
**one** long-lived pool per process, reused across ``replay_grid`` /
journaled-sweep / CLI invocations:

* lazy init on first use; explicit :func:`shutdown` plus an ``atexit``
  hook (which also unlinks the shared-memory trace store, so a warm
  session leaves ``/dev/shm`` clean);
* workers keep their per-trace stage-1 products and shm attachments
  hot between cells — the second grid over the same traces replays
  with zero stage-1 recompute and zero trace copies;
* the pool prefers ``fork`` but runs fine on ``spawn``: workers import
  once, receive compiled traces through
  :mod:`~repro.experiments.shm_store` handles in their job payloads,
  and stay warm, so spawn platforms parallelize instead of
  serializing.

The pool engages when :data:`~repro.config.WARM_POOL_ENV`
(``REPRO_WARM_POOL``) is set, or automatically when ``fork`` is
unavailable (the spawn routing fix); otherwise ``replay_grid`` keeps
its classic fork-pool-per-call behaviour.  The chosen start method is
noted once per process in the event log (``pool_start``) and the
metric registry.
"""

from __future__ import annotations

import atexit
import gc
import multiprocessing
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.config import WARM_POOL_ENV
from repro.obs.eventlog import get_eventlog
from repro.obs.metrics import global_metrics

#: Parent-side pool tally (mirrored into ``repro stats`` via
#: :func:`repro.obs.adapters.warm_sweep_metrics`).
_POOL_STATS: Dict[str, int] = {"starts": 0, "reuses": 0, "maps": 0}

_POOL: Optional["WarmPool"] = None
_POOL_PID: Optional[int] = None
_NOTED_METHOD: Optional[str] = None


class WarmPool:
    """A long-lived worker pool bound to one start method."""

    def __init__(self, processes: int, start_method: str) -> None:
        self.processes = processes
        self.start_method = start_method
        context = multiprocessing.get_context(start_method)
        self._pool = context.Pool(processes)

    def map(self, function, items: Sequence) -> List:
        """Distribute ``items``; worker exceptions propagate to the
        caller (the pool itself survives them).

        ``chunksize=1``: grid cells are coarse (a whole platform
        replay) and wildly uneven — the default contiguous chunking
        regularly lands the two most expensive cells on one worker,
        serializing most of the sweep.
        """
        _POOL_STATS["maps"] += 1
        return self._pool.map(function, items, chunksize=1)

    def close(self) -> None:
        # Graceful close: workers drain and exit through interpreter
        # shutdown, which lets them finalize (and unregister) the
        # semaphores their module imports created — terminate() would
        # strand those in the resource tracker as "leaked" noise.
        self._pool.close()
        self._pool.join()
        self._pool = None
        gc.collect()


def pool_stats() -> Dict[str, int]:
    return dict(_POOL_STATS)


def reset_stats() -> None:
    for name in _POOL_STATS:
        _POOL_STATS[name] = 0


def requested() -> bool:
    """``REPRO_WARM_POOL`` asked for the persistent pool."""
    return bool(os.environ.get(WARM_POOL_ENV))


def preferred_start_method() -> Optional[str]:
    """``fork`` where it exists, else ``spawn``, else ``None``."""
    for method in ("fork", "spawn"):
        try:
            multiprocessing.get_context(method)
            return method
        except ValueError:
            continue
    return None  # pragma: no cover - every supported platform has one


def use_warm_pool() -> bool:
    """Route this sweep through the warm pool?

    True when explicitly requested, and always on spawn-only platforms
    — there the per-call fork pool cannot exist and the warm pool
    (workers import once, stay warm) beats the old serial fallback.
    """
    if requested():
        return preferred_start_method() is not None
    return preferred_start_method() == "spawn"


def note_start_method(method: str) -> None:
    """One-time eventlog/metrics note of the sweep start method."""
    global _NOTED_METHOD
    if _NOTED_METHOD is not None:
        return
    _NOTED_METHOD = method
    global_metrics().counter(
        "pool.start_method", "sweep worker start method chosen "
        "(once per process)", method=method).add(1)
    eventlog = get_eventlog()
    if eventlog.enabled:
        eventlog.emit("pool_start", method=method)


def get_pool(processes: int) -> Optional[WarmPool]:
    """The process-wide warm pool, created (or grown) on demand.

    Returns ``None`` only when no start method exists.  A pool
    inherited across a fork is never reused — the child builds its
    own.  Reuse is counted (``pool.reuses`` metric, ``pool_reuse``
    event): that counter staying ahead of ``starts`` is the warmness
    witness ``bench_sweep`` checks.
    """
    global _POOL, _POOL_PID
    method = preferred_start_method()
    if method is None:  # pragma: no cover - no multiprocessing at all
        return None
    if _POOL is not None and _POOL_PID != os.getpid():
        _POOL = None  # inherited via fork; the parent owns it
    if _POOL is not None and _POOL.processes < processes:
        shutdown()
    if _POOL is None:
        _POOL = WarmPool(processes, method)
        _POOL_PID = os.getpid()
        _POOL_STATS["starts"] += 1
        note_start_method(method)
        global_metrics().counter(
            "pool.starts", "warm pool cold starts",
            method=method).add(1)
    else:
        _POOL_STATS["reuses"] += 1
        global_metrics().counter(
            "pool.reuses", "warm pool reuses across sweep "
            "invocations").add(1)
        eventlog = get_eventlog()
        if eventlog.enabled:
            eventlog.emit("pool_reuse", method=_POOL.start_method,
                          processes=_POOL.processes)
    return _POOL


def shutdown() -> None:
    """Tear the pool down and unlink the shared trace segments.

    Idempotent; also the ``atexit`` hook.  Only the owning process
    acts — a forked child inheriting the module state must not
    terminate its parent's workers.
    """
    global _POOL, _POOL_PID
    if _POOL is not None and _POOL_PID == os.getpid():
        _POOL.close()
    _POOL = None
    _POOL_PID = None
    from repro.experiments import shm_store
    shm_store.shutdown()


atexit.register(shutdown)


# -- worker bodies (module-level: picklable under spawn) -------------------

def _install_traces(published: Iterable) -> None:
    """Attach shm handles and prime the runner's compiled-trace memo,
    so ``replay_platform`` in this worker replays without loading (or
    regenerating) any trace."""
    from repro.experiments import runner, shm_store

    for key, handles in published:
        key = tuple(key)
        if key not in runner._COMPILED_CACHE:
            runner._COMPILED_CACHE[key] = shm_store.attach(handles)


def _warm_cell(payload: tuple):
    """One grid cell in a warm worker."""
    published, job = payload
    _install_traces(published)
    from repro.experiments.runner import _grid_worker

    return _grid_worker(job)


def _warm_journal(payload: tuple) -> None:
    """One warm worker's work-stealing pass over a shard journal."""
    published, directory, items = payload
    _install_traces(published)
    from repro.experiments import shard_journal
    from repro.experiments.runner import _grid_worker

    shard_journal.sweep_shards(Path(directory), dict(items),
                               _grid_worker)
