"""Sharded, resumable sweep journal: every grid cell is a durable shard.

:func:`repro.experiments.runner.replay_grid` decomposes a platform x
workload sweep into *shards* — one per grid cell, keyed by the same
parameters as the in-process replay memo.  With a journal directory
configured (``REPRO_SHARD_JOURNAL`` or an explicit ``journal=``), each
shard's :class:`~repro.platform.timing.GCTimingResult` is persisted as
an atomically-renamed JSON file the moment it finishes, so

* an **interrupted sweep resumes**: on the next run, completed shards
  load from the journal (counted in :data:`STATS` as ``hits``) and only
  the missing cells execute — the merged grid is byte-identical to an
  uninterrupted sweep because JSON round-trips every int exactly and
  every float through its shortest-repr form;
* **workers steal work** instead of receiving a static partition: each
  forked worker walks the full shard list and claims cells with
  ``O_CREAT | O_EXCL`` claim files, so a slow shard never idles the
  rest of the pool and two workers never replay the same cell;
* a **torn entry is harmless**: the atomic rename means a crash
  mid-write leaves only a temp file; an unreadable or version-skewed
  entry is deleted and re-executed (``stale``), never half-read.

Claim files coordinate the workers of *one* sweep; the parent clears
leftovers (:func:`reset_claims`) before fanning out, so a crashed
sweep's orphaned claims cannot block the resume.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
import warnings
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Tuple, Union

from repro.config import SHARD_JOURNAL_ENV
from repro.gcalgo.trace import Primitive
from repro.obs.eventlog import get_eventlog
from repro.platform.timing import GCTimingResult, PlatformEnergy

#: Bump when the journal payload layout changes; skewed entries are
#: discarded and re-executed, never misread.
SHARD_FORMAT_VERSION = 1

SHARD_FORMAT = "repro-shard-result"

#: Environment variable naming the journal directory (unset = off).
REPRO_SHARD_JOURNAL = SHARD_JOURNAL_ENV


class ShardStats:
    """Fork-shared tally of journal behaviour (see ``CacheStats``).

    ``hits`` — shards served from the journal without re-execution
    (the crash/resume tests use this as the no-rework witness);
    ``runs`` — shards actually executed; ``stolen`` — claim races lost
    to another worker; ``stale`` — discarded unreadable/skewed entries;
    ``stores`` — journal writes.
    """

    FIELDS = ("hits", "runs", "stolen", "stale", "stores")

    def __init__(self) -> None:
        self._lock = multiprocessing.RLock()
        self._values = {name: multiprocessing.Value("q", 0, lock=False)
                        for name in self.FIELDS}

    def add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._values[name].value += amount

    def __getitem__(self, name: str) -> int:
        return int(self._values[name].value)

    def keys(self) -> Tuple[str, ...]:
        return self.FIELDS

    def __iter__(self) -> Iterator[str]:
        return iter(self.FIELDS)

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self.snapshot().items())

    def update(self, **values: int) -> None:
        with self._lock:
            for name, value in values.items():
                self._values[name].value = int(value)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {name: int(value.value)
                    for name, value in self._values.items()}


#: Cumulative journal behaviour for this process tree.
STATS = ShardStats()


def reset_stats() -> None:
    STATS.update(hits=0, runs=0, stolen=0, stale=0, stores=0)


def stats_line() -> str:
    """One-line summary, e.g. for a sweep footer."""
    return ("shard journal: {hits} resumed, {runs} executed, "
            "{stolen} stolen, {stale} stale, {stores} stored"
            .format(**STATS.snapshot()))


def journal_dir(directory: Union[str, Path, None] = None
                ) -> Optional[Path]:
    """Resolve the journal directory (explicit arg beats the
    environment); ``None`` means journaling is off."""
    if directory is None:
        directory = os.environ.get(REPRO_SHARD_JOURNAL) or None
    return None if directory is None else Path(directory)


def shard_key(parts: tuple) -> str:
    """Content hash of the parameters that determine one shard."""
    canonical = json.dumps([repr(part) for part in parts],
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# -- result payloads -------------------------------------------------------

def result_to_dict(result: GCTimingResult,
                   meta: Optional[dict] = None) -> dict:
    """A JSON-ready payload that round-trips the result exactly.

    Ints are exact in JSON and floats survive through their shortest
    repr, so ``result_from_dict(result_to_dict(r)) == r`` field for
    field — the property the byte-identical resume guarantee rests on.

    ``meta`` is an optional side-channel of *execution* metadata (owner
    pid, host wall time) the progress monitor reads; it never feeds
    back into the :class:`GCTimingResult`, so adding it needs no
    format-version bump — :func:`result_from_dict` reads only the
    result fields.
    """
    payload_meta = {"meta": dict(meta)} if meta else {}
    return {
        **payload_meta,
        "format": SHARD_FORMAT,
        "version": SHARD_FORMAT_VERSION,
        "platform": result.platform,
        "gc_kind": result.gc_kind,
        "wall_seconds": result.wall_seconds,
        "primitive_seconds": {
            primitive.value: seconds
            for primitive, seconds in result.primitive_seconds.items()
        },
        "residual_seconds": result.residual_seconds,
        "flush_seconds": result.flush_seconds,
        "dram_bytes": result.dram_bytes,
        "link_bytes": result.link_bytes,
        "tsv_bytes": result.tsv_bytes,
        "local_fraction": result.local_fraction,
        "bitmap_cache_hits": result.bitmap_cache_hits,
        "bitmap_cache_accesses": result.bitmap_cache_accesses,
        "energy": {
            "host_j": result.energy.host_j,
            "memory_j": result.energy.memory_j,
            "charon_j": result.energy.charon_j,
        },
        "replay_kernel": result.replay_kernel,
    }


def result_from_dict(payload: dict) -> GCTimingResult:
    """Inverse of :func:`result_to_dict`; raises on a foreign payload."""
    if payload.get("format") != SHARD_FORMAT:
        raise ValueError("not a shard result payload")
    if payload.get("version") != SHARD_FORMAT_VERSION:
        raise ValueError(
            f"shard format version {payload.get('version')}, "
            f"expected {SHARD_FORMAT_VERSION}")
    energy = payload["energy"]
    return GCTimingResult(
        platform=payload["platform"],
        gc_kind=payload["gc_kind"],
        wall_seconds=payload["wall_seconds"],
        primitive_seconds={
            Primitive(name): seconds
            for name, seconds in payload["primitive_seconds"].items()
        },
        residual_seconds=payload["residual_seconds"],
        flush_seconds=payload["flush_seconds"],
        dram_bytes=payload["dram_bytes"],
        link_bytes=payload["link_bytes"],
        tsv_bytes=payload["tsv_bytes"],
        local_fraction=payload["local_fraction"],
        bitmap_cache_hits=payload["bitmap_cache_hits"],
        bitmap_cache_accesses=payload["bitmap_cache_accesses"],
        energy=PlatformEnergy(host_j=energy["host_j"],
                              memory_j=energy["memory_j"],
                              charon_j=energy["charon_j"]),
        replay_kernel=payload["replay_kernel"],
    )


# -- the journal on disk ---------------------------------------------------

def _result_path(directory: Path, key: str) -> Path:
    return directory / f"{key}.shard.json"


def _claim_path(directory: Path, key: str) -> Path:
    return directory / f"{key}.claim"


def store_shard(directory: Union[str, Path], key: str,
                result: GCTimingResult,
                meta: Optional[dict] = None) -> Path:
    """Persist one shard's result atomically; returns the entry path.

    ``meta`` (owner pid, host wall time, completion stamp) rides along
    in the payload for the progress monitor; resumes ignore it.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = _result_path(directory, key)
    temp = path.with_name(path.name + f".tmp{os.getpid():x}")
    temp.write_text(json.dumps(result_to_dict(result, meta=meta),
                               separators=(",", ":")))
    temp.replace(path)
    STATS.add("stores")
    return path


def has_shard(directory: Union[str, Path], key: str) -> bool:
    """Whether the journal already holds a (possibly stale) entry."""
    return _result_path(Path(directory), key).exists()


def load_shard(directory: Union[str, Path],
               key: str) -> Optional[GCTimingResult]:
    """Fetch one shard from the journal.

    An unreadable or version-skewed entry warns, is deleted, and reads
    as a miss — it will simply re-execute.
    """
    path = _result_path(Path(directory), key)
    if not path.exists():
        return None
    try:
        return result_from_dict(json.loads(path.read_text()))
    except (ValueError, KeyError, TypeError, OSError) as exc:
        warnings.warn(f"discarding stale shard entry {path.name}: "
                      f"{exc}", stacklevel=2)
        STATS.add("stale")
        path.unlink(missing_ok=True)
        return None


def claim_shard(directory: Union[str, Path], key: str) -> bool:
    """Atomically claim a shard for this worker.

    ``O_CREAT | O_EXCL`` makes the filesystem the arbiter: exactly one
    concurrent claimant wins.  Returns False when another worker
    already holds (or finished) the shard.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    try:
        fd = os.open(_claim_path(directory, key),
                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    with os.fdopen(fd, "w") as handle:
        # Owner info for the progress monitor ("who holds this shard,
        # since when"); the claim's *existence* is what arbitrates.
        handle.write(json.dumps({"pid": os.getpid(),
                                 "claimed_at": round(time.time(), 6)}))
    return True


def release_claim(directory: Union[str, Path], key: str) -> None:
    _claim_path(Path(directory), key).unlink(missing_ok=True)


def reset_claims(directory: Union[str, Path, None] = None) -> int:
    """Remove leftover claim files (a crashed sweep's orphans);
    returns how many were removed."""
    directory = journal_dir(directory)
    if directory is None or not directory.exists():
        return 0
    removed = 0
    for path in directory.glob("*.claim"):
        path.unlink(missing_ok=True)
        removed += 1
    return removed


def clear(directory: Union[str, Path, None] = None) -> int:
    """Delete every journal entry and claim; returns how many."""
    directory = journal_dir(directory)
    if directory is None or not directory.exists():
        return 0
    removed = 0
    for pattern in ("*.shard.json", "*.claim"):
        for path in directory.glob(pattern):
            path.unlink(missing_ok=True)
            removed += 1
    return removed


def sweep_shards(directory: Union[str, Path],
                 shards: Dict[str, object],
                 execute: Callable[[object], GCTimingResult]) -> None:
    """One worker's work-stealing pass over ``shards``.

    ``shards`` maps shard key -> job.  The worker walks the whole list:
    a journaled shard is skipped, an unclaimed one is claimed, executed
    and stored, a lost claim race is counted as ``stolen`` and left to
    its winner.  Called concurrently from every pool worker (and once
    from the parent as the serial path / completeness backstop).

    Each store carries execution metadata (owner pid, host seconds)
    and, when a ``sweep.json`` manifest announces a monitored sweep,
    re-derives ``progress.json`` so watchers see the shard land.
    Claims and completions also land in the run-event log when armed.
    """
    from repro.experiments import progress as progress_mod
    directory = Path(directory)
    eventlog = get_eventlog()
    if not eventlog.enabled:
        eventlog = None
    monitored = (directory / progress_mod.SWEEP_MANIFEST).exists()
    for key, job in shards.items():
        if _result_path(directory, key).exists():
            continue
        if not claim_shard(directory, key):
            STATS.add("stolen")
            continue
        if eventlog:
            eventlog.emit("shard_claimed", shard=key)
        try:
            started = time.perf_counter()
            result = execute(job)
            host_seconds = time.perf_counter() - started
            STATS.add("runs")
            store_shard(directory, key, result, meta={
                "pid": os.getpid(),
                "host_seconds": round(host_seconds, 6),
                "completed_at": round(time.time(), 6),
            })
            if eventlog:
                eventlog.emit("shard_done", shard=key,
                              platform=result.platform,
                              host_seconds=round(host_seconds, 6))
            if monitored:
                progress_mod.refresh_progress(directory)
        finally:
            release_claim(directory, key)
