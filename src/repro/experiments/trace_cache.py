"""Content-addressed on-disk trace cache: capture once, replay many.

Every experiment and benchmark replays the *same* GC traces across the
platform grid, yet historically each process regenerated them by
re-running the functional collectors.  This module keys a captured
:class:`~repro.workloads.mutator.WorkloadRun` by a hash of exactly the
inputs that determine its traces:

* the workload name (its parameters are code, versioned below),
* the heap configuration (geometry decides when collections happen and
  what they move),
* :data:`~repro.gcalgo.columnar.TRACE_SCHEMA_VERSION` (the columnar
  layout) and :data:`GENERATOR_VERSION` (the collectors' recording
  semantics).

Timing-side parameters — platform, GC thread count, Charon unit
organisation — deliberately do **not** enter the key: one captured
trace set serves the whole platform grid.

Entries are ``<sha256>.npz`` files written atomically, so concurrent
experiment processes can share a cache directory.  A stale entry (any
version mismatch) is rejected loudly, deleted, and regenerated — never
misreplayed.  The cache lives wherever :data:`REPRO_TRACE_CACHE`
points (or an explicit ``directory=``); without either, caching is off
and :func:`fetch_run` just runs the producer.

Set :data:`REPRO_TRACE_CACHE_REQUIRE` (or pass ``require=True``) to
turn a cache miss into a hard :class:`TraceCacheMiss` — the benchmark
smoke job uses this to prove a warmed cache serves a whole run with
zero collector re-execution.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import warnings
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.config import (SystemConfig, TRACE_CACHE_ENV,
                          TRACE_CACHE_REQUIRE_ENV)
from repro.errors import ConfigError, ReproError
from repro.gcalgo.columnar import CompiledTrace, TRACE_SCHEMA_VERSION
from repro.gcalgo.trace_io import load_compiled, save_traces_npz
from repro.obs.eventlog import get_eventlog
from repro.workloads.mutator import WorkloadRun

#: Bump when the functional collectors' *recording* changes (what events
#: or residuals they emit for the same workload/heap), so cached traces
#: from older code are regenerated.
GENERATOR_VERSION = 1

#: Environment variable naming the cache directory (unset = no cache).
REPRO_TRACE_CACHE = TRACE_CACHE_ENV

#: Environment variable: any non-empty value makes a miss an error.
REPRO_TRACE_CACHE_REQUIRE = TRACE_CACHE_REQUIRE_ENV

#: WorkloadRun stats stored alongside the traces (everything but the
#: trace list itself).
_RUN_FIELDS = ("name", "heap_bytes", "allocated_bytes",
               "allocated_objects", "mutator_seconds", "minor_count",
               "major_count", "sweep_count")


class CacheStats:
    """The cumulative cache tally, safe across threads *and* forked
    workers.

    Each field is a ``multiprocessing.Value`` in fork-shared memory
    guarded by one shared lock, so :func:`fetch_run` calls from
    :func:`repro.experiments.runner.replay_grid` worker processes (and
    from threads) all land in the same tally the parent reports.  The
    mapping protocol (``keys``/``__getitem__``/``items``) is kept so
    existing ``dict(STATS)``-style consumers read it like the plain
    dict it used to be.
    """

    FIELDS = ("hits", "misses", "stale", "stores", "generated")

    def __init__(self) -> None:
        self._lock = multiprocessing.RLock()
        self._values = {name: multiprocessing.Value("q", 0, lock=False)
                        for name in self.FIELDS}

    def add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._values[name].value += amount

    def __getitem__(self, name: str) -> int:
        return int(self._values[name].value)

    def __setitem__(self, name: str, value: int) -> None:
        with self._lock:
            self._values[name].value = int(value)

    def keys(self) -> Tuple[str, ...]:
        return self.FIELDS

    def __iter__(self) -> Iterator[str]:
        return iter(self.FIELDS)

    def items(self) -> Iterator[Tuple[str, int]]:
        snapshot = self.snapshot()
        return iter(snapshot.items())

    def update(self, **values: int) -> None:
        with self._lock:
            for name, value in values.items():
                self._values[name].value = int(value)

    def snapshot(self) -> Dict[str, int]:
        """A consistent point-in-time copy of the tally."""
        with self._lock:
            return {name: int(value.value)
                    for name, value in self._values.items()}


#: Cumulative cache behaviour for this process tree (see
#: :func:`stats_line`).
STATS = CacheStats()


class TraceCacheMiss(ReproError):
    """Required a cached trace set (``require``) but none was stored."""


def reset_stats() -> None:
    STATS.update(hits=0, misses=0, stale=0, stores=0, generated=0)


def stats_line() -> str:
    """One-line summary, e.g. for a benchmark session footer."""
    return ("trace cache: {hits} hit(s), {misses} miss(es), "
            "{stale} stale, {stores} store(s), {generated} run(s) "
            "generated".format(**STATS.snapshot()))


def cache_dir(directory: Union[str, Path, None] = None) -> Optional[Path]:
    """Resolve the cache directory (explicit arg beats the environment);
    ``None`` means caching is disabled."""
    if directory is None:
        directory = os.environ.get(REPRO_TRACE_CACHE) or None
    return None if directory is None else Path(directory)


def run_cache_key(workload: str, config: SystemConfig) -> str:
    """Content hash of everything that determines the captured traces."""
    payload = {
        "workload": workload,
        "heap": dataclasses.asdict(config.heap),
        "schema": TRACE_SCHEMA_VERSION,
        "generator": GENERATOR_VERSION,
    }
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _entry_path(directory: Path, key: str) -> Path:
    return directory / f"{key}.npz"


def store_run(directory: Union[str, Path], key: str,
              run: WorkloadRun) -> Path:
    """Write a captured run under ``key``; returns the entry path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = _entry_path(directory, key)
    save_traces_npz(run.traces, path, extra={
        "run": {name: getattr(run, name) for name in _RUN_FIELDS}})
    STATS.add("stores")
    return path


def load_run(directory: Union[str, Path], key: str
             ) -> Optional[Tuple[WorkloadRun, List[CompiledTrace]]]:
    """Fetch ``key`` from the cache.

    Returns ``(run, compiled_traces)``: the run carries decompiled
    :class:`~repro.gcalgo.trace.GCTrace` objects (what the event-by-
    event replayer and every functional consumer expect) while the
    compiled columnar traces ride alongside for the fast replayer, so
    neither side pays a conversion it does not need.  A stale or
    unreadable entry warns, is deleted, and reads as a miss.
    """
    path = _entry_path(Path(directory), key)
    if not path.exists():
        return None
    try:
        compiled, extra = load_compiled(path)
        stats = dict(extra["run"])
        run = WorkloadRun(traces=[trace.to_trace() for trace in compiled],
                          **stats)
    except (ConfigError, KeyError, TypeError) as exc:
        warnings.warn(f"discarding stale trace-cache entry {path.name}: "
                      f"{exc}", stacklevel=2)
        STATS.add("stale")
        path.unlink(missing_ok=True)
        return None
    return run, compiled


def fetch_run(workload: str, config: SystemConfig,
              produce: Callable[[], WorkloadRun],
              directory: Union[str, Path, None] = None,
              require: Optional[bool] = None
              ) -> Tuple[WorkloadRun, Optional[List[CompiledTrace]]]:
    """The capture-once/replay-many entry point.

    Returns ``(run, compiled)`` where ``compiled`` is the cached
    columnar trace list on a hit and ``None`` when the run was (re)
    generated by ``produce``.  With no cache directory configured this
    degrades to calling ``produce`` (still honouring ``require``).
    """
    if require is None:
        require = bool(os.environ.get(REPRO_TRACE_CACHE_REQUIRE))
    directory = cache_dir(directory)
    key = run_cache_key(workload, config)
    eventlog = get_eventlog()
    if directory is not None:
        cached = load_run(directory, key)
        if cached is not None:
            STATS.add("hits")
            if eventlog.enabled:
                eventlog.emit("cache_hit", workload=workload,
                              key=key[:12])
            return cached
        STATS.add("misses")
        if eventlog.enabled:
            eventlog.emit("cache_miss", workload=workload,
                          key=key[:12])
    if require:
        raise TraceCacheMiss(
            f"no cached traces for workload {workload!r} (key "
            f"{key[:12]}…) and {REPRO_TRACE_CACHE_REQUIRE} forbids "
            f"regenerating them")
    run = produce()
    STATS.add("generated")
    if directory is not None:
        store_run(directory, key, run)
    return run, None


def clear(directory: Union[str, Path, None] = None) -> int:
    """Delete every cache entry; returns how many were removed."""
    directory = cache_dir(directory)
    if directory is None or not directory.exists():
        return 0
    removed = 0
    for path in directory.glob("*.npz"):
        path.unlink(missing_ok=True)
        removed += 1
    return removed
