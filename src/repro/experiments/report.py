"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _format(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def render_table(rows: Sequence[Dict[str, object]],
                 title: Optional[str] = None,
                 columns: Optional[List[str]] = None) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[_format(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in cells))
              for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(widths[i])
                       for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(line[i].ljust(widths[i])
                               for i in range(len(columns)))
                     for line in cells)
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, separator, body])
    return "\n".join(parts)
