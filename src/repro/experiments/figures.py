"""Generators for every results figure in the paper's evaluation.

Each function returns a list of row dicts; the matching benchmark
prints them with :func:`repro.experiments.report.render_table` and
EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence

from repro.config import WORKLOADS_ENV
from repro.experiments.runner import (collect_run, find_min_heap,
                                      replay_grid, replay_platform,
                                      workload_config)
from repro.gcalgo.trace import Primitive
from repro.heap.heap import JavaHeap
from repro.platform import TraceReplayer, build_platform
from repro.units import align_up, geomean
from repro.workloads.base import workload_klasses
from repro.workloads.registry import TABLE3_WORKLOADS, WORKLOAD_ABBREV

ALL_WORKLOADS: Sequence[str] = TABLE3_WORKLOADS

#: The four platforms of Fig. 12, in the paper's bar order.
FIG12_PLATFORMS = ("cpu-ddr4", "cpu-hmc", "charon", "ideal")


def _names(workloads: Optional[Iterable[str]]) -> List[str]:
    """Resolve a figure's workload list.

    An explicit argument wins; otherwise ``REPRO_WORKLOADS`` (a
    comma-separated subset, used by the benchmark smoke job to shrink
    the grid) and finally the full Table 3 set.
    """
    if workloads is not None:
        return list(workloads)
    env = os.environ.get(WORKLOADS_ENV)
    if env:
        return [name.strip() for name in env.split(",") if name.strip()]
    return list(ALL_WORKLOADS)


# ---------------------------------------------------------------------------
# Figure 2: GC overhead vs heap over-provisioning
# ---------------------------------------------------------------------------

def figure2(workloads: Optional[Iterable[str]] = None,
            factors: Sequence[float] = (1.0, 1.25, 1.5, 2.0)
            ) -> List[Dict[str, object]]:
    """GC time normalized to mutator time across heap sizes.

    The paper's methodology: find the minimum viable heap, then
    overprovision by 25/50/100% and measure GC overhead on the host
    (Fig. 2 runs on a plain CPU system).
    """
    rows = []
    for name in _names(workloads):
        minimum = find_min_heap(name)
        row: Dict[str, object] = {
            "workload": WORKLOAD_ABBREV[name],
            "min_heap_mb": minimum / 2**20,
        }
        for factor in factors:
            heap_bytes = align_up(int(minimum * factor), 1 << 20)
            run = collect_run(name, heap_bytes=heap_bytes)
            timing = replay_platform("cpu-ddr4", name,
                                     heap_bytes=heap_bytes)
            overhead = timing.wall_seconds / run.mutator_seconds
            row[f"x{factor:g}"] = round(overhead * 100.0, 1)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 4: GC runtime breakdown on the host
# ---------------------------------------------------------------------------

def figure4(workloads: Optional[Iterable[str]] = None
            ) -> List[Dict[str, object]]:
    """Share of each operation in MinorGC/MajorGC time (cpu-ddr4)."""
    rows = []
    for name in _names(workloads):
        run = collect_run(name)
        config = workload_config(name)
        for kind, traces in (("minor", run.minor_traces),
                             ("major", run.major_traces)):
            if not traces:
                continue
            heap = JavaHeap(config.heap, klasses=workload_klasses())
            platform = build_platform("cpu-ddr4", config, heap)
            result = TraceReplayer(platform).replay_all(traces)
            total = (result.offloadable_seconds
                     + result.residual_seconds)
            if total <= 0:
                continue
            row: Dict[str, object] = {
                "workload": WORKLOAD_ABBREV[name],
                "gc": kind,
            }
            for primitive in Primitive:
                share = result.primitive_seconds.get(primitive, 0.0)
                row[primitive.value] = round(share / total * 100.0, 1)
            row["other"] = round(
                result.residual_seconds / total * 100.0, 1)
            row["offloadable_pct"] = round(
                result.offloadable_seconds / total * 100.0, 1)
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 12: overall GC speedup
# ---------------------------------------------------------------------------

def figure12(workloads: Optional[Iterable[str]] = None
             ) -> List[Dict[str, object]]:
    """GC throughput of each platform normalized to cpu-ddr4."""
    names = _names(workloads)
    # Pre-warm the whole grid (fans out over processes when REPRO_JOBS
    # asks for it); the loop below then reads the memoised results.
    replay_grid(FIG12_PLATFORMS, names)
    rows = []
    speedups: Dict[str, List[float]] = {p: [] for p in FIG12_PLATFORMS}
    for name in names:
        baseline = replay_platform("cpu-ddr4", name).wall_seconds
        row: Dict[str, object] = {"workload": WORKLOAD_ABBREV[name]}
        for platform in FIG12_PLATFORMS:
            wall = replay_platform(platform, name).wall_seconds
            speedup = baseline / wall if wall > 0 else float("inf")
            row[platform] = round(speedup, 2)
            speedups[platform].append(speedup)
        rows.append(row)
    geo: Dict[str, object] = {"workload": "geomean"}
    for platform in FIG12_PLATFORMS:
        geo[platform] = round(geomean(speedups[platform]), 2)
    rows.append(geo)
    return rows


# ---------------------------------------------------------------------------
# Figure 13: utilized bandwidth and locality
# ---------------------------------------------------------------------------

def figure13(workloads: Optional[Iterable[str]] = None
             ) -> List[Dict[str, object]]:
    """Average DRAM bandwidth during GC, plus Charon's local-access %."""
    rows = []
    for name in _names(workloads):
        row: Dict[str, object] = {"workload": WORKLOAD_ABBREV[name]}
        for platform in ("cpu-ddr4", "cpu-hmc", "charon"):
            result = replay_platform(platform, name)
            row[f"{platform}_gbps"] = round(
                result.utilized_bandwidth / 1e9, 2)
        charon = replay_platform("charon", name)
        if charon.local_fraction is not None:
            row["local_pct"] = round(charon.local_fraction * 100.0, 1)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 14: per-primitive speedup
# ---------------------------------------------------------------------------

_FIG14_ORDER = (Primitive.SEARCH, Primitive.SCAN_PUSH, Primitive.COPY,
                Primitive.BITMAP_COUNT)


def figure14(workloads: Optional[Iterable[str]] = None
             ) -> List[Dict[str, object]]:
    """Charon speedup over cpu-ddr4 per primitive (S, SP, C, BC)."""
    names = _names(workloads)
    rows = []
    collected: Dict[Primitive, List[float]] = {p: [] for p in
                                               _FIG14_ORDER}
    for name in names:
        host = replay_platform("cpu-ddr4", name)
        charon = replay_platform("charon", name)
        row: Dict[str, object] = {"workload": WORKLOAD_ABBREV[name]}
        for primitive in _FIG14_ORDER:
            host_s = host.primitive_seconds.get(primitive, 0.0)
            charon_s = charon.primitive_seconds.get(primitive, 0.0)
            if host_s > 0 and charon_s > 0:
                speedup = host_s / charon_s
                row[primitive.value] = round(speedup, 2)
                collected[primitive].append(speedup)
            else:
                row[primitive.value] = None
        rows.append(row)
    summary: Dict[str, object] = {"workload": "average"}
    peak: Dict[str, object] = {"workload": "max"}
    for primitive in _FIG14_ORDER:
        values = collected[primitive]
        summary[primitive.value] = round(
            sum(values) / len(values), 2) if values else None
        peak[primitive.value] = round(max(values), 2) if values else None
    rows.append(summary)
    rows.append(peak)
    return rows


# ---------------------------------------------------------------------------
# Figure 15: scalability with GC threads, unified vs distributed
# ---------------------------------------------------------------------------

def figure15(workloads: Optional[Iterable[str]] = None,
             thread_counts: Sequence[int] = (1, 2, 4, 8, 16)
             ) -> List[Dict[str, object]]:
    """GC throughput vs thread count for DDR4 and both Charon designs.

    Charon's unit count scales with the thread count, per Sec. 5.2
    ("we scale the number of corresponding Charon primitive units as
    we increase the number of GC threads").  Throughput is normalized
    to the single-threaded DDR4 run of the same workload.
    """
    rows = []
    for name in _names(workloads):
        base_config = workload_config(name)
        baseline = replay_platform(
            "cpu-ddr4", name,
            config=base_config.with_gc_threads(1), threads=1
        ).wall_seconds
        for threads in thread_counts:
            row: Dict[str, object] = {
                "workload": WORKLOAD_ABBREV[name],
                "threads": threads,
            }
            ddr4_cfg = base_config.with_gc_threads(threads)
            row["ddr4"] = round(baseline / replay_platform(
                "cpu-ddr4", name, config=ddr4_cfg,
                threads=threads).wall_seconds, 2)
            scaled = base_config.with_gc_threads(threads) \
                .scaled_charon_units(threads / 8.0)
            for label, distributed in (("charon_unified", False),
                                       ("charon_distributed", True)):
                config = scaled.with_distributed_charon(distributed)
                wall = replay_platform("charon", name, config=config,
                                       threads=threads).wall_seconds
                row[label] = round(baseline / wall, 2)
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 16: memory-side vs CPU-side Charon
# ---------------------------------------------------------------------------

def figure16(workloads: Optional[Iterable[str]] = None
             ) -> List[Dict[str, object]]:
    """Throughput of DDR4 / CPU-side Charon / memory-side Charon."""
    names = _names(workloads)
    rows = []
    ratios = []
    for name in names:
        baseline = replay_platform("cpu-ddr4", name).wall_seconds
        cpu_side = replay_platform("charon-cpuside", name).wall_seconds
        memory_side = replay_platform("charon", name).wall_seconds
        ratio = memory_side and cpu_side / memory_side
        rows.append({
            "workload": WORKLOAD_ABBREV[name],
            "cpu_ddr4": 1.0,
            "charon_cpuside": round(baseline / cpu_side, 2),
            "charon": round(baseline / memory_side, 2),
            "memside_vs_cpuside": round(ratio, 2),
        })
        ratios.append(ratio)
    rows.append({
        "workload": "geomean",
        "cpu_ddr4": 1.0,
        "charon_cpuside": None,
        "charon": None,
        "memside_vs_cpuside": round(geomean(ratios), 2),
    })
    return rows


# ---------------------------------------------------------------------------
# Figure 17: GC energy
# ---------------------------------------------------------------------------

def figure17(workloads: Optional[Iterable[str]] = None
             ) -> List[Dict[str, object]]:
    """Per-workload GC energy, normalized to the cpu-ddr4 run."""
    names = _names(workloads)
    rows = []
    charon_norm = []
    hmc_norm = []
    for name in names:
        base = replay_platform("cpu-ddr4", name).energy.total_j
        row: Dict[str, object] = {"workload": WORKLOAD_ABBREV[name]}
        for platform in ("cpu-ddr4", "cpu-hmc", "charon"):
            result = replay_platform(platform, name)
            row[platform] = round(result.energy.total_j / base, 3)
        charon = replay_platform("charon", name)
        row["charon_host_j"] = round(charon.energy.host_j, 4)
        row["charon_mem_j"] = round(charon.energy.memory_j, 4)
        row["charon_dev_j"] = round(charon.energy.charon_j, 4)
        rows.append(row)
        charon_norm.append(row["charon"])
        hmc_norm.append(row["cpu-hmc"])
    rows.append({
        "workload": "average",
        "cpu-ddr4": 1.0,
        "cpu-hmc": round(sum(hmc_norm) / len(hmc_norm), 3),
        "charon": round(sum(charon_norm) / len(charon_norm), 3),
    })
    return rows


def energy_savings_summary() -> Dict[str, float]:
    """The headline numbers: energy savings vs DDR4 and vs HMC."""
    rows = figure17()
    average = rows[-1]
    return {
        "savings_vs_ddr4_pct": round(
            (1.0 - float(average["charon"])) * 100.0, 1),
        "savings_vs_hmc_pct": round(
            (1.0 - float(average["charon"])
             / float(average["cpu-hmc"])) * 100.0, 1),
    }
