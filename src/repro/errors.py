"""Exception hierarchy for the Charon reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the simulator with a single handler while
still being able to discriminate (for example an
:class:`OutOfMemoryError` during a heap-sizing sweep is expected and is
handled by retrying with a larger heap).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class HeapError(ReproError):
    """Base class for managed-heap errors."""


class OutOfMemoryError(HeapError):
    """The managed heap could not satisfy an allocation.

    Mirrors the JVM ``java.lang.OutOfMemoryError`` raised when even a full
    collection cannot free enough space.  Workload drivers use this to find
    the minimum viable heap size (Figure 2 methodology).
    """


class InvalidObjectError(HeapError):
    """An address does not reference a well-formed heap object."""


class FuzzError(ReproError):
    """Base class for the differential-fuzzing subsystem's errors."""


class OracleViolation(FuzzError):
    """A collection broke a correctness invariant the oracle checks
    (a live object vanished, a reference dangles, field contents
    changed, or a primitive trace fails a conservation law)."""


class InfeasibleSchedule(FuzzError):
    """A fuzz schedule legitimately exhausted the heap (not a GC bug);
    the seed is skipped rather than reported as a failure."""


class ProtectionFault(ReproError):
    """A memory access violated virtual-memory protection (wrong PCID or
    an unmapped page)."""


class PacketError(ReproError):
    """An offload request/response packet failed validation."""


class DeviceBusyError(ReproError):
    """No processing unit could accept an offload request and the command
    queue overflowed."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistency (time reversal,
    unhandled event type, deadlock)."""
