"""The host processor: cores, cache hierarchy summary, and the cache
flush Charon performs at GC start (Sec. 4.6, "Effect on Host Cache")."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CostModelConfig, HostCacheConfig, HostCoreConfig
from repro.cpu.core import CoreModel


@dataclass
class HostProcessor:
    """An ``num_cores``-way multiprocessor of identical :class:`CoreModel`s."""

    config: HostCoreConfig = field(default_factory=HostCoreConfig)
    caches: HostCacheConfig = field(default_factory=HostCacheConfig)
    costs: CostModelConfig = field(default_factory=CostModelConfig)

    def __post_init__(self) -> None:
        self.core = CoreModel(self.config, self.costs)

    @property
    def num_cores(self) -> int:
        return self.config.num_cores

    @property
    def freq_hz(self) -> float:
        return self.config.freq_hz

    def per_core_mlp(self) -> float:
        return self.core.mlp

    def aggregate_mlp(self, threads: int) -> float:
        """MLP of ``threads`` GC threads (one per core, capped)."""
        active = min(threads, self.num_cores)
        return self.core.mlp * active

    def llc_flush_seconds(self, drain_bandwidth: float) -> float:
        """Time to bulk-flush the LLC into memory before offloading.

        The paper's example: flushing a 24 MB LLC at 80 GB/s takes
        ~300 us, negligible against GC durations; we charge the same
        cost for our 8 MB LLC at the platform's drain bandwidth.
        """
        return self.caches.l3.size_bytes / drain_bandwidth

    def clflush_probe_seconds(self, probes: int) -> float:
        """Host-side cost of coherence probes from Charon units.

        Each offloaded read/write sends a clflush to the host hierarchy
        (Sec. 4.1).  Probes are pipelined on the host link; only a small
        per-probe occupancy lands on the host, and after the initial
        bulk flush almost all probes miss.
        """
        per_probe = 2.0 / self.freq_hz  # ~2 cycles of tag lookup
        return probes * per_probe
