"""Host-processor models.

The host is the 8-core out-of-order Westmere-class machine of Table 2.
GC primitives running on it are costed with a roofline-style model: a
primitive's duration is the maximum of its compute time (instructions at
the observed GC IPC, plus cache-hit service) and its memory time (the
miss stream pushed through the attached memory system under the core's
MLP limit).  This reproduces the two properties the paper leans on —
bounded MLP from the small instruction window / MSHR file, and
bandwidth saturation on DDR4.
"""

from repro.cpu.cache import SetAssociativeCache
from repro.cpu.core import CoreModel
from repro.cpu.host import HostProcessor

__all__ = ["SetAssociativeCache", "CoreModel", "HostProcessor"]
