"""Analytic out-of-order core model.

A GC primitive on the host is characterised by an instruction count, a
cache-hit count, and a miss stream; its duration is

``max(compute time, memory time)``

* compute time = instructions / (GC IPC x frequency) plus hit service,
  with ~4 hits overlapping (load pipe depth);
* memory time = the miss stream pushed through the memory system with
  the core's MLP window.

The MLP window is ``min(MSHRs, instruction-window slots available for
loads)`` — the paper's central claim about why GC underperforms on
general-purpose cores (Sec. 1, Sec. 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CostModelConfig, HostCoreConfig


@dataclass(frozen=True)
class CoreModel:
    """Per-core timing parameters derived from the host configuration."""

    config: HostCoreConfig
    costs: CostModelConfig

    @property
    def mlp(self) -> float:
        """Outstanding-miss limit of one core.

        Bounded by the line-fill buffers (MSHRs) and by how many loads
        the 36-entry instruction window can expose: with roughly one
        load per three GC instructions, the window holds ~12 loads.
        """
        window_loads = self.config.instruction_window / 3.0
        return float(min(self.config.mshrs_per_core, window_loads))

    def compute_seconds(self, instructions: float, cache_hits: float = 0.0
                        ) -> float:
        """Time to retire ``instructions`` with ``cache_hits`` hit stalls."""
        retire = instructions / (self.config.gc_ipc * self.config.freq_hz)
        # ~4 overlapping in-flight hits (load pipeline depth).
        hit_service = cache_hits * self.costs.cache_hit_latency_s / 4.0
        return retire + hit_service

    def primitive_seconds(self, instructions: float, cache_hits: float,
                          memory_seconds: float) -> float:
        """Roofline combination of compute and memory time."""
        return max(self.compute_seconds(instructions, cache_hits),
                   memory_seconds)
