"""A functional set-associative write-back cache.

Used in two places:

* the Charon **bitmap cache** (8 KB, 8-way, 32 B lines, Sec. 4.5) is
  simulated functionally — the ~90% hit rate the paper reports must
  *emerge* from the access stream, so we model real sets, tags and LRU;
* host-side spot checks in tests (the host hierarchy itself is costed
  analytically with hit fractions, per :mod:`repro.cpu.core`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from repro.errors import ConfigError


class SetAssociativeCache:
    """LRU set-associative cache with write-back, write-allocate policy."""

    def __init__(self, size_bytes: int, ways: int, line_bytes: int,
                 name: str = "cache") -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ConfigError("cache geometry must be positive")
        if size_bytes % (ways * line_bytes):
            raise ConfigError("cache size must divide into ways * lines")
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError("number of sets must be a power of two")
        # set index -> OrderedDict tag -> dirty flag (LRU order: oldest first)
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def _index_tag(self, addr: int) -> Tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Access the line holding ``addr``; returns True on a hit.

        On a miss the line is allocated, evicting the LRU way if the set
        is full (counting a write-back if the victim is dirty).
        """
        index, tag = self._index_tag(addr)
        ways = self._sets[index]
        if tag in ways:
            self.hits += 1
            dirty = ways.pop(tag)
            ways[tag] = dirty or is_write
            return True
        self.misses += 1
        if len(ways) >= self.ways:
            _, victim_dirty = ways.popitem(last=False)
            self.evictions += 1
            if victim_dirty:
                self.writebacks += 1
        ways[tag] = is_write
        return False

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines
        written back (Charon flushes the bitmap cache after each MajorGC
        phase for coherence, Sec. 4.5)."""
        dirty = 0
        for ways in self._sets:
            dirty += sum(1 for flag in ways.values() if flag)
            ways.clear()
        self.writebacks += dirty
        return dirty

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def contains(self, addr: int) -> bool:
        """Non-destructive lookup (no LRU update)."""
        index, tag = self._index_tag(addr)
        return tag in self._sets[index]

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
