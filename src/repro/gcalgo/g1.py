"""A simplified Garbage-First (G1) regional collector.

Table 1 of the paper classifies G1 as "Low latency" and marks every
Charon primitive applicable — Copy/Search and Scan&Push as is, Bitmap
Count "with minor fix", because *"it scans the bitmap to identify the
state of the entire heap"* (Sec. 4.6).  This collector demonstrates
that claim executably on the same heap substrate:

* the heap is carved into fixed-size **regions** (Eden / Survivor /
  Old / Humongous / Free) with bump allocation per region;
* a **marking pass** traverses the object graph (*Scan&Push*) into the
  begin/end bitmaps, then accounts per-region liveness with one
  *Bitmap Count* over each region's range — the "minor fix" use of the
  primitive;
* an **evacuation pause** picks a collection set (all young regions
  plus the old regions with the most garbage), finds external
  references into it by scanning the card table (*Search*) and the
  remembered slots, then copies live objects out (*Copy*) and recycles
  the emptied regions.

Compared with real G1 this keeps the structure and the primitive mix
but simplifies the concurrency (the cycle is stop-the-world here) and
the remembered sets (rebuilt by card scanning rather than maintained
incrementally); see DESIGN.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ConfigError, OutOfMemoryError
from repro.gcalgo.stack import ObjectStack
from repro.gcalgo.trace import (FIXED_GC_INSTRUCTIONS, GCTrace,
                                RESIDUAL_COSTS, chunk_refs)
from repro.heap import fast_kernels
from repro.heap.heap import JavaHeap
from repro.heap.object_model import MarkWord, ObjectView
from repro.obs.tracer import get_tracer
from repro.units import CACHE_LINE, KB, WORD, align_up

#: ``(addr, klass_id, length, size)`` — the fast paths carry decoded
#: headers instead of :class:`ObjectView` wrappers.
LiveRec = Tuple[int, int, int, int]


class RegionType(enum.Enum):
    FREE = "free"
    EDEN = "eden"
    SURVIVOR = "survivor"
    OLD = "old"
    HUMONGOUS = "humongous"


@dataclass
class Region:
    """One fixed-size heap region."""

    index: int
    start: int
    end: int
    region_type: RegionType = RegionType.FREE
    top: int = 0
    live_bytes: int = 0  #: from the last marking pass

    def __post_init__(self) -> None:
        self.top = self.start

    @property
    def capacity(self) -> int:
        return self.end - self.start

    @property
    def used(self) -> int:
        return self.top - self.start

    @property
    def garbage_bytes(self) -> int:
        return max(0, self.used - self.live_bytes)

    def can_allocate(self, size: int) -> bool:
        return self.top + size <= self.end

    def allocate(self, size: int) -> int:
        if not self.can_allocate(size):
            raise OutOfMemoryError(
                f"region {self.index} cannot fit {size} bytes")
        addr = self.top
        self.top += size
        return addr

    def reset(self) -> None:
        self.region_type = RegionType.FREE
        self.top = self.start
        self.live_bytes = 0


class G1Collector:
    """Region manager plus the mark/evacuate cycle."""

    def __init__(self, heap: JavaHeap, region_bytes: int = 64 * KB,
                 young_target_regions: int = 8,
                 mixed_old_regions: int = 4) -> None:
        if region_bytes <= 0 or region_bytes % WORD:
            raise ConfigError("region size must be a positive multiple "
                              "of 8")
        self.heap = heap
        self.region_bytes = region_bytes
        self.young_target_regions = young_target_regions
        self.mixed_old_regions = mixed_old_regions
        span = heap.layout.heap_end - heap.layout.heap_start
        count = span // region_bytes
        if count < 4:
            raise ConfigError("heap too small for G1 regions")
        self.regions: List[Region] = [
            Region(index=i,
                   start=heap.layout.heap_start + i * region_bytes,
                   end=heap.layout.heap_start + (i + 1) * region_bytes)
            for i in range(count)
        ]
        self._allocation_region: Optional[Region] = None
        self._old_allocation_region: Optional[Region] = None
        self.collections = 0
        self.traces: List[GCTrace] = []
        #: observers fired around every cycle (including the implicit
        #: ones the allocation slow path triggers); the fuzzing oracle
        #: hangs its live-graph checks here.
        self.pre_collect_hooks: List[
            Callable[[JavaHeap, str], None]] = []
        self.post_collect_hooks: List[
            Callable[[JavaHeap, str, GCTrace], None]] = []

    # -- region bookkeeping ---------------------------------------------------

    def region_of(self, addr: int) -> Region:
        index = (addr - self.heap.layout.heap_start) // self.region_bytes
        if not 0 <= index < len(self.regions):
            raise ConfigError(f"address {addr:#x} outside the region "
                              "space")
        return self.regions[index]

    def regions_of_type(self, *types: RegionType) -> List[Region]:
        return [r for r in self.regions if r.region_type in types]

    def _take_free_region(self, region_type: RegionType) -> Region:
        for region in self.regions:
            if region.region_type is RegionType.FREE:
                region.region_type = region_type
                region.top = region.start
                return region
        raise OutOfMemoryError("no free G1 regions")

    @property
    def free_region_count(self) -> int:
        return sum(1 for r in self.regions
                   if r.region_type is RegionType.FREE)

    # -- allocation -------------------------------------------------------------

    def allocate(self, klass_name: str,
                 length: Optional[int] = None) -> ObjectView:
        """Allocate in the current Eden region (or as humongous)."""
        klass = self.heap.klasses.by_name(klass_name)
        size = align_up(klass.instance_bytes(length), WORD)
        if size > self.region_bytes // 2:
            return self._allocate_humongous(klass_name, size, length)
        for attempt in range(2):
            region = self._allocation_region
            if region is None or not region.can_allocate(size):
                eden_count = len(self.regions_of_type(RegionType.EDEN))
                if attempt or (eden_count >= self.young_target_regions
                               and self.free_region_count <= 2):
                    self.collect()
                try:
                    region = self._take_free_region(RegionType.EDEN)
                except OutOfMemoryError:
                    self.collect()
                    region = self._take_free_region(RegionType.EDEN)
                self._allocation_region = region
            if region.can_allocate(size):
                addr = region.allocate(size)
                return self.heap.format_object(addr, klass, length)
        raise OutOfMemoryError("G1 allocation failed after collection")

    def _allocate_humongous(self, klass_name: str, size: int,
                            length: Optional[int]) -> ObjectView:
        """Contiguous free regions for an oversized object."""
        needed = -(-size // self.region_bytes)
        for first in range(len(self.regions) - needed + 1):
            window = self.regions[first:first + needed]
            if all(r.region_type is RegionType.FREE for r in window):
                for region in window:
                    region.region_type = RegionType.HUMONGOUS
                    region.top = region.end
                window[0].top = window[0].start + min(
                    size, window[0].capacity)
                klass = self.heap.klasses.by_name(klass_name)
                return self.heap.format_object(window[0].start, klass,
                                               length)
        raise OutOfMemoryError("no contiguous regions for a humongous "
                               "allocation")

    # -- the GC cycle -------------------------------------------------------------

    def collect(self) -> GCTrace:
        """One stop-the-world mark + evacuate cycle."""
        for hook in self.pre_collect_hooks:
            hook(self.heap, "g1")
        obs = get_tracer()
        fast = fast_kernels.fast_enabled(self.heap)
        fast_kernels.record_call("g1",
                                 kernel="fast" if fast else "scalar")
        trace = GCTrace("g1", heap_bytes=self.heap.config.heap_bytes)
        trace.residual("setup", FIXED_GC_INSTRUCTIONS["major"],
                       96 * 1024)
        with obs.span("collect", cat="collector", gc="g1"):
            if fast:
                with obs.span("mark", cat="collector", gc="g1"):
                    live_by_region = self._mark_fast(trace)
                with obs.span("liveness", cat="collector", gc="g1"):
                    self._account_liveness_fast(trace)
                with obs.span("evacuate", cat="collector", gc="g1"):
                    self._evacuate_fast(trace, live_by_region)
            else:
                with obs.span("mark", cat="collector", gc="g1"):
                    live_by_region = self._mark(trace)
                with obs.span("liveness", cat="collector", gc="g1"):
                    self._account_liveness(trace, live_by_region)
                with obs.span("evacuate", cat="collector", gc="g1"):
                    self._evacuate(trace, live_by_region)
        self.collections += 1
        self.traces.append(trace)
        self._allocation_region = None
        self._old_allocation_region = None
        for hook in self.post_collect_hooks:
            hook(self.heap, "g1", trace)
        return trace

    # -- marking ---------------------------------------------------------------------

    def _mark(self, trace: GCTrace) -> Dict[int, List[ObjectView]]:
        heap = self.heap
        heap.bitmaps.clear()
        stack: ObjectStack[int] = ObjectStack()
        marked: Set[int] = set()
        live_by_region: Dict[int, List[ObjectView]] = {}

        for addr in heap.roots:
            trace.residual("mark", RESIDUAL_COSTS["root"], CACHE_LINE)
            if addr and addr not in marked:
                marked.add(addr)
                stack.push(addr)
        while stack:
            addr = stack.pop()
            trace.residual("mark", RESIDUAL_COSTS["pop"])
            view = heap.object_at(addr)
            trace.objects_visited += 1
            heap.bitmaps.mark_object(addr, view.size_bytes)
            live_by_region.setdefault(self.region_of(addr).index,
                                      []).append(view)
            slots = view.reference_slots()
            pushes = 0
            for slot in slots:
                target = heap.load_ref(slot)
                trace.residual("mark", RESIDUAL_COSTS["check_mark"])
                if target and target not in marked:
                    marked.add(target)
                    stack.push(target)
                    pushes += 1
            if slots:
                for refs, chunk_pushes in chunk_refs(len(slots), pushes):
                    trace.scan_push("mark", addr, refs, chunk_pushes)
            else:
                trace.residual("mark", RESIDUAL_COSTS["scan_trivial"])
        for views in live_by_region.values():
            views.sort(key=lambda v: v.addr)
        return live_by_region

    def _account_liveness(self, trace: GCTrace,
                          live_by_region: Dict[int, List[ObjectView]]
                          ) -> None:
        """Per-region live bytes via Bitmap Count over each region.

        This is the "minor fix" application of the primitive the paper
        describes for G1: scanning the bitmap to learn the state of the
        entire heap.
        """
        for region in self.regions:
            if region.region_type is RegionType.FREE:
                region.live_bytes = 0
                continue
            words = self.heap.bitmaps.live_words_in_range_fast(
                region.start, region.end)
            trace.bitmap_count("liveness", region.start,
                               bits=self.region_bytes // WORD)
            region.live_bytes = words * WORD

    # -- evacuation ---------------------------------------------------------------------

    def _choose_collection_set(self) -> List[Region]:
        cset = self.regions_of_type(RegionType.EDEN,
                                    RegionType.SURVIVOR)
        old_candidates = sorted(
            self.regions_of_type(RegionType.OLD),
            key=lambda r: r.garbage_bytes, reverse=True)
        for region in old_candidates[:self.mixed_old_regions]:
            if region.garbage_bytes > region.capacity // 4:
                cset.append(region)
        return cset

    def _evacuate(self, trace: GCTrace,
                  live_by_region: Dict[int, List[ObjectView]]) -> None:
        heap = self.heap
        cset = self._choose_collection_set()
        cset_indices = {region.index for region in cset}

        # Remembered-set scan: Search the card table, then collect
        # slots outside the collection set that point into it.
        stack: ObjectStack[int] = ObjectStack()
        for table_addr, n_cards, found in \
                heap.card_table.search_blocks():
            trace.search("remset", table_addr, n_cards, found)
        for index in range(len(heap.roots)):
            stack.push(-(index + 1))
            trace.residual("remset", RESIDUAL_COSTS["root"], CACHE_LINE)
        for region_index, views in live_by_region.items():
            if region_index in cset_indices:
                continue
            for view in views:
                slots = view.reference_slots()
                pushes = 0
                for slot in slots:
                    target = heap.load_ref(slot)
                    if target and self.region_of(target).index \
                            in cset_indices:
                        stack.push(slot)
                        pushes += 1
                if pushes:
                    for refs, chunk_pushes in chunk_refs(len(slots),
                                                         pushes):
                        trace.scan_push("remset", view.addr, refs,
                                        chunk_pushes)

        # Drain: evacuate collection-set objects, updating slots.
        while stack:
            slot = stack.pop()
            trace.residual("evacuate", RESIDUAL_COSTS["pop"])
            ref = self._read_slot(slot)
            if ref == 0 or self.region_of(ref).index not in cset_indices:
                continue
            mark = heap.mark_word(ref)
            trace.residual("evacuate", RESIDUAL_COSTS["check_mark"],
                           CACHE_LINE)
            if mark.is_forwarded:
                new_addr = mark.forwarding_address
            else:
                new_addr = self._copy_out(trace, stack, ref,
                                          cset_indices)
            self._write_slot(slot, new_addr)
            trace.residual("evacuate", RESIDUAL_COSTS["forward_update"])

        # Recycle the emptied regions.
        freed = 0
        for region in cset:
            freed += region.used
            region.reset()
        trace.bytes_freed = freed
        heap.bitmaps.clear()
        heap.card_table.clear()
        self._rebuild_cards(trace, cset_indices)

    def _copy_out(self, trace: GCTrace, stack: ObjectStack, addr: int,
                  cset_indices: Set[int]) -> int:
        heap = self.heap
        view = heap.object_at(addr)
        size = view.size_bytes
        dest_region = self._old_allocation_region
        if dest_region is None or not dest_region.can_allocate(size):
            dest_region = self._take_free_region(RegionType.OLD)
            self._old_allocation_region = dest_region
        dst = dest_region.allocate(size)
        heap.copy_bytes(addr, dst, size)
        trace.copy("evacuate", addr, dst, size)
        trace.objects_copied += 1
        trace.bytes_copied += size
        heap.set_mark_word(dst, MarkWord.fresh())
        heap.set_mark_word(addr, MarkWord.fresh().forwarded_to(dst))
        dest_region.live_bytes += size

        new_view = heap.object_at(dst)
        slots = new_view.reference_slots()
        pushes = 0
        for slot in slots:
            target = heap.load_ref(slot)
            if target and self.region_of(target).index in cset_indices:
                stack.push(slot)
                pushes += 1
                trace.residual("evacuate", RESIDUAL_COSTS["push"])
        if slots:
            for refs, chunk_pushes in chunk_refs(len(slots), pushes):
                trace.scan_push("evacuate", dst, refs, chunk_pushes)
        else:
            trace.residual("evacuate", RESIDUAL_COSTS["scan_trivial"])
        return dst

    def _rebuild_cards(self, trace: GCTrace,
                       cset_indices: Set[int]) -> None:
        """Re-dirty cards for old-region slots referencing young data.

        The shared card table only covers the classic layout's old
        space, so only slots inside it are tracked (the G1 demo heap
        places its regions over the whole range; coverage of the rest
        is a remembered-set detail real G1 handles per region).
        """
        heap = self.heap
        old_space = heap.layout.old
        for region in self.regions_of_type(RegionType.OLD):
            if not old_space.contains(region.start):
                continue
            cursor = region.start
            while cursor < region.top:
                view = heap.object_at(cursor)
                trace.residual("card-rebuild",
                               RESIDUAL_COSTS["card_clean"])
                for slot in view.reference_slots():
                    target = heap.load_ref(slot)
                    if target and old_space.contains(slot) \
                            and not old_space.contains(target):
                        heap.card_table.dirty(slot)
                cursor = view.end_addr

    # -- fast-path phases ----------------------------------------------------------------

    def _mark_fast(self, trace: GCTrace) -> Dict[int, List[LiveRec]]:
        """The scalar traversal with raw-word decode and the bitmap
        marks deferred into one bulk write."""
        heap = self.heap
        heap.bitmaps.clear()
        ops = fast_kernels.HeapOps(heap)
        stack: ObjectStack[int] = ObjectStack()
        marked: Set[int] = set()
        live_by_region: Dict[int, List[LiveRec]] = {}
        heap_start = heap.layout.heap_start
        region_bytes = self.region_bytes

        n_roots = len(heap.roots)
        if n_roots:
            trace.residual("mark", RESIDUAL_COSTS["root"] * n_roots,
                           CACHE_LINE * n_roots)
        for addr in heap.roots:
            if addr and addr not in marked:
                marked.add(addr)
                stack.push(addr)
        pop_cost = RESIDUAL_COSTS["pop"]
        check_cost = RESIDUAL_COSTS["check_mark"]
        trivial_cost = RESIDUAL_COSTS["scan_trivial"]
        all_addrs: List[int] = []
        all_sizes: List[int] = []
        while stack:
            addr = stack.pop()
            trace.residual("mark", pop_cost)
            kid, length, size = ops.decode(addr)
            trace.objects_visited += 1
            all_addrs.append(addr)
            all_sizes.append(size)
            live_by_region.setdefault(
                (addr - heap_start) // region_bytes,
                []).append((addr, kid, length, size))
            slots = ops.ref_slots(addr, kid, length)
            if slots:
                trace.residual("mark", check_cost * len(slots))
                pushes = 0
                for slot in slots:
                    target = ops.read_word(slot)
                    if target and target not in marked:
                        marked.add(target)
                        stack.push(target)
                        pushes += 1
                for refs, chunk_pushes in chunk_refs(len(slots),
                                                     pushes):
                    trace.scan_push("mark", addr, refs, chunk_pushes)
            else:
                trace.residual("mark", trivial_cost)
        if all_addrs:
            fast_kernels.mark_objects_bulk(
                heap.bitmaps, np.asarray(all_addrs, dtype=np.int64),
                np.asarray(all_sizes, dtype=np.int64))
        for recs in live_by_region.values():
            recs.sort()
        return live_by_region

    def _account_liveness_fast(self, trace: GCTrace) -> None:
        """Per-region Bitmap Count via one O(1) coverage-index query
        each, same events as :meth:`_account_liveness`."""
        index = fast_kernels.CoverageIndex(self.heap.bitmaps)
        bits = self.region_bytes // WORD
        for region in self.regions:
            if region.region_type is RegionType.FREE:
                region.live_bytes = 0
                continue
            words = index.live_words(region.start, region.end)
            trace.bitmap_count("liveness", region.start, bits=bits)
            region.live_bytes = words * WORD

    def _evacuate_fast(self, trace: GCTrace,
                       live_by_region: Dict[int, List[LiveRec]]
                       ) -> None:
        heap = self.heap
        ops = fast_kernels.HeapOps(heap)
        cset = self._choose_collection_set()
        cset_indices = {region.index for region in cset}
        heap_start = heap.layout.heap_start
        region_bytes = self.region_bytes
        n_regions = len(self.regions)

        stack: ObjectStack[int] = ObjectStack()
        for table_addr, n_cards, found in \
                fast_kernels.search_blocks_fast(heap.card_table):
            trace.search("remset", table_addr, n_cards, found)
        n_roots = len(heap.roots)
        if n_roots:
            trace.residual("remset", RESIDUAL_COSTS["root"] * n_roots,
                           CACHE_LINE * n_roots)
        for index in range(n_roots):
            stack.push(-(index + 1))

        # Remembered-set scan, one gathered batch per non-cset region:
        # the flattened cset-membership mask replays the scalar push
        # order, and per-object prefix sums recover the pushes counts
        # the scan_push events need.
        cset_mask = np.zeros(n_regions, dtype=bool)
        cset_mask[list(cset_indices)] = True
        for region_index, recs in live_by_region.items():
            if region_index in cset_indices:
                continue
            columns = np.asarray(recs, dtype=np.int64)
            batch = fast_kernels.gather_ref_slots(
                heap, columns[:, 0], columns[:, 1], columns[:, 2])
            if not len(batch):
                continue
            targets = batch.targets
            target_region = (targets - heap_start) // region_bytes
            valid = ((targets != 0) & (target_region >= 0)
                     & (target_region < n_regions))
            into_cset = np.zeros(len(batch), dtype=bool)
            into_cset[valid] = cset_mask[target_region[valid]]
            for slot in batch.slots[into_cset].tolist():
                stack.push(slot)
            counts = batch.counts
            boundaries = np.concatenate(
                ([0], np.cumsum(counts))).astype(np.int64)
            push_cum = np.concatenate(
                ([0], np.cumsum(into_cset))).astype(np.int64)
            addr_list = columns[:, 0].tolist()
            count_list = counts.tolist()
            for obj in np.flatnonzero(counts).tolist():
                pushes = int(push_cum[boundaries[obj + 1]]
                             - push_cum[boundaries[obj]])
                if pushes:
                    for refs, chunk_pushes in chunk_refs(
                            int(count_list[obj]), pushes):
                        trace.scan_push("remset", addr_list[obj],
                                        refs, chunk_pushes)

        # Drain: identical to the scalar loop with raw-word decode.
        pop_cost = RESIDUAL_COSTS["pop"]
        check_cost = RESIDUAL_COSTS["check_mark"]
        forward_cost = RESIDUAL_COSTS["forward_update"]
        while stack:
            slot = stack.pop()
            trace.residual("evacuate", pop_cost)
            ref = self._read_slot(slot)
            if ref == 0 or (ref - heap_start) // region_bytes \
                    not in cset_indices:
                continue
            mark = heap.mark_word(ref)
            trace.residual("evacuate", check_cost, CACHE_LINE)
            if mark.is_forwarded:
                new_addr = mark.forwarding_address
            else:
                new_addr = self._copy_out_fast(trace, stack, ref,
                                               cset_indices, ops)
            self._write_slot(slot, new_addr)
            trace.residual("evacuate", forward_cost)

        freed = 0
        for region in cset:
            freed += region.used
            region.reset()
        trace.bytes_freed = freed
        heap.bitmaps.clear()
        heap.card_table.clear()
        self._rebuild_cards_fast(trace)

    def _copy_out_fast(self, trace: GCTrace, stack: ObjectStack,
                       addr: int, cset_indices: Set[int],
                       ops: "fast_kernels.HeapOps") -> int:
        heap = self.heap
        kid, length, size = ops.decode(addr)
        dest_region = self._old_allocation_region
        if dest_region is None or not dest_region.can_allocate(size):
            dest_region = self._take_free_region(RegionType.OLD)
            self._old_allocation_region = dest_region
        dst = dest_region.allocate(size)
        heap.copy_bytes(addr, dst, size)
        trace.copy("evacuate", addr, dst, size)
        trace.objects_copied += 1
        trace.bytes_copied += size
        heap.set_mark_word(dst, MarkWord.fresh())
        heap.set_mark_word(addr, MarkWord.fresh().forwarded_to(dst))
        dest_region.live_bytes += size

        heap_start = heap.layout.heap_start
        region_bytes = self.region_bytes
        push_cost = RESIDUAL_COSTS["push"]
        slots = ops.ref_slots(dst, kid, length)
        pushes = 0
        for slot in slots:
            target = ops.read_word(slot)
            if target and (target - heap_start) // region_bytes \
                    in cset_indices:
                stack.push(slot)
                pushes += 1
                trace.residual("evacuate", push_cost)
        if slots:
            for refs, chunk_pushes in chunk_refs(len(slots), pushes):
                trace.scan_push("evacuate", dst, refs, chunk_pushes)
        else:
            trace.residual("evacuate", RESIDUAL_COSTS["scan_trivial"])
        return dst

    def _rebuild_cards_fast(self, trace: GCTrace) -> None:
        """One parse + gather per surviving old region, then a
        vectorized old→elsewhere slot mask dirtied in one store."""
        heap = self.heap
        old_space = heap.layout.old
        for region in self.regions_of_type(RegionType.OLD):
            if not old_space.contains(region.start):
                continue
            parsed = fast_kernels.parse_space(heap, region.start,
                                              region.top)
            n_objects = len(parsed)
            if not n_objects:
                continue
            trace.residual("card-rebuild",
                           RESIDUAL_COSTS["card_clean"] * n_objects)
            batch = fast_kernels.gather_ref_slots(
                heap, parsed.addrs, parsed.kids, parsed.lengths)
            if not len(batch):
                continue
            slots, targets = batch.slots, batch.targets
            dirty = ((targets != 0)
                     & (slots >= old_space.start)
                     & (slots < old_space.end)
                     & ~((targets >= old_space.start)
                         & (targets < old_space.end)))
            heap.card_table.dirty_slots(slots[dirty])

    # -- slot helpers ----------------------------------------------------------------------

    def _read_slot(self, slot: int) -> int:
        if slot < 0:
            return self.heap.roots[-slot - 1]
        return self.heap.load_ref(slot)

    def _write_slot(self, slot: int, value: int) -> None:
        if slot < 0:
            self.heap.roots[-slot - 1] = value
        else:
            self.heap.write_u64(slot, value)

    # -- reporting ----------------------------------------------------------------------------

    def occupancy_summary(self) -> Dict[str, int]:
        summary: Dict[str, int] = {t.value: 0 for t in RegionType}
        for region in self.regions:
            summary[region.region_type.value] += 1
        return summary
