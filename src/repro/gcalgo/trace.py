"""Primitive traces: what a GC run looked like, platform-independently.

Collectors record every invocation of the four offloadable primitives
(Search, Copy, Scan&Push, Bitmap Count) as :class:`TraceEvent`\\ s with
real addresses and sizes, and accumulate the *residual* work — pops,
mark checks, allocation, linked-list walks — as per-phase instruction
and byte counts (the paper explicitly keeps those on the host,
Sec. 3.3).  The timing layer replays a :class:`GCTrace` on a platform
model to produce durations, bandwidth and energy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


class Primitive(enum.Enum):
    """The offloadable GC primitives (Sec. 3.3)."""

    SEARCH = "search"
    COPY = "copy"
    SCAN_PUSH = "scan_push"
    BITMAP_COUNT = "bitmap_count"


#: Offload-request type encodings used in the 4-bit packet field.
PRIMITIVE_TYPE_CODES = {
    Primitive.COPY: 0x1,
    Primitive.SEARCH: 0x2,
    Primitive.SCAN_PUSH: 0x3,
    Primitive.BITMAP_COUNT: 0x4,
}


@dataclass
class TraceEvent:
    """One offloadable primitive invocation.

    Field meaning depends on the primitive:

    * ``COPY`` — ``src``/``dst``/``size_bytes``;
    * ``SEARCH`` — ``src`` (range start), ``size_bytes`` (range length),
      ``found`` (early-exit hit);
    * ``SCAN_PUSH`` — ``src`` (object), ``refs`` (reference slots
      scanned), ``pushes`` (new objects pushed);
    * ``BITMAP_COUNT`` — ``src`` (bitmap range start address in heap
      terms), ``bits`` (range length in bitmap bits).
    """

    primitive: Primitive
    phase: str
    src: int = 0
    dst: int = 0
    size_bytes: int = 0
    refs: int = 0
    pushes: int = 0
    bits: int = 0
    #: for BITMAP_COUNT: bits the *software* baseline actually walks.
    #: HotSpot's ``live_words_in_range`` keeps a per-thread query cache
    #: (ParMarkBitMap), so a query extending the previous one in the
    #: same region only walks the delta — which is what the sequential
    #: compact-phase queries hit.  ``None`` means no cache hit (full
    #: range).  Charon always receives the full range; its bitmap cache
    #: captures the same locality in hardware.
    bits_cached: int = None
    found: bool = False


@dataclass
class ResidualWork:
    """Non-offloaded host work accumulated for one phase."""

    instructions: float = 0.0
    bytes_accessed: int = 0

    def add(self, instructions: float, bytes_accessed: int = 0) -> None:
        self.instructions += instructions
        self.bytes_accessed += bytes_accessed


class GCTrace:
    """The full record of one collection."""

    def __init__(self, kind: str, heap_bytes: int = 0) -> None:
        if kind not in ("minor", "major", "sweep", "g1", "concurrent"):
            raise ValueError(f"unknown GC kind {kind!r}")
        self.kind = kind
        self.heap_bytes = heap_bytes
        self.events: List[TraceEvent] = []
        self.residuals: Dict[str, ResidualWork] = {}
        # Functional outcome summaries, filled by the collector.
        self.objects_visited = 0
        self.objects_copied = 0
        self.bytes_copied = 0
        self.objects_promoted = 0
        self.bytes_freed = 0

    # -- recording ---------------------------------------------------------

    def copy(self, phase: str, src: int, dst: int, size_bytes: int) -> None:
        self.events.append(TraceEvent(Primitive.COPY, phase, src=src,
                                      dst=dst, size_bytes=size_bytes))

    def search(self, phase: str, start: int, length: int,
               found: bool) -> None:
        self.events.append(TraceEvent(Primitive.SEARCH, phase, src=start,
                                      size_bytes=length, found=found))

    def scan_push(self, phase: str, obj: int, refs: int,
                  pushes: int) -> None:
        self.events.append(TraceEvent(Primitive.SCAN_PUSH, phase, src=obj,
                                      refs=refs, pushes=pushes))

    def bitmap_count(self, phase: str, range_start: int, bits: int,
                     bits_cached: int = None) -> None:
        self.events.append(TraceEvent(Primitive.BITMAP_COUNT, phase,
                                      src=range_start, bits=bits,
                                      bits_cached=bits_cached))

    def residual(self, phase: str, instructions: float,
                 bytes_accessed: int = 0) -> None:
        self.residuals.setdefault(phase, ResidualWork()).add(
            instructions, bytes_accessed)

    # -- summaries ------------------------------------------------------------

    def events_of(self, primitive: Primitive) -> Iterator[TraceEvent]:
        return (e for e in self.events if e.primitive is primitive)

    def count(self, primitive: Primitive) -> int:
        return sum(1 for _ in self.events_of(primitive))

    def copy_bytes_total(self) -> int:
        return sum(e.size_bytes for e in self.events_of(Primitive.COPY))

    def search_bytes_total(self) -> int:
        return sum(e.size_bytes for e in self.events_of(Primitive.SEARCH))

    def scan_refs_total(self) -> int:
        return sum(e.refs for e in self.events_of(Primitive.SCAN_PUSH))

    def bitmap_bits_total(self) -> int:
        return sum(e.bits for e in self.events_of(Primitive.BITMAP_COUNT))

    def residual_instructions_total(self) -> float:
        return sum(r.instructions for r in self.residuals.values())

    def summary(self) -> Dict[str, float]:
        """Compact description used by reports and tests."""
        return {
            "kind": self.kind,
            "events": len(self.events),
            "copy_events": self.count(Primitive.COPY),
            "copy_bytes": self.copy_bytes_total(),
            "search_events": self.count(Primitive.SEARCH),
            "scan_push_events": self.count(Primitive.SCAN_PUSH),
            "scan_refs": self.scan_refs_total(),
            "bitmap_events": self.count(Primitive.BITMAP_COUNT),
            "bitmap_bits": self.bitmap_bits_total(),
            "residual_instructions": self.residual_instructions_total(),
            "objects_copied": self.objects_copied,
            "bytes_copied": self.bytes_copied,
            "objects_promoted": self.objects_promoted,
        }


#: Rough host instruction costs of the residual operations, used by the
#: collectors when they record residual work.  These are small constant
#: code sequences in HotSpot (pop, null/forward checks, bump allocation,
#: stack maintenance); the exact values only shift the non-offloadable
#: fraction slightly and are held here in one place.
RESIDUAL_COSTS = {
    "pop": 12.0,           # pop + depth/termination checks
    "check_mark": 8.0,     # load mark word, decode, test
    "forward_update": 10.0, # store updated reference + barrier
    "allocate": 20.0,       # PLAB bump + overflow/refill test
    "push": 8.0,
    "card_clean": 4.0,
    "card_lookup": 25.0,   # block-offset-table walk per dirty card
    "summary_region": 20.0,
    "sweep_step": 14.0,
    "root": 10.0,
    # Reference-free objects (type arrays) have a no-op iterate
    # strategy: the collector only dispatches on the klass.
    "scan_trivial": 6.0,
    # SATB write barrier: read the old value, test for null, append to
    # the thread-local log buffer (G1/Shenandoah's pre-write barrier).
    "barrier_log": 10.0,
}

#: Fixed per-collection host work that never offloads: VM operation
#: setup, thread root scanning (stacks, JNI handles, string table),
#: parallel-task termination, adaptive-sizing policy.  Fig. 4 folds all
#: of this into the "other" slice, which averages ~25% of GC time.
#: A concurrent cycle pays two short safepoints (initial/final mark)
#: instead of one long one, but the combined VM-operation work lands
#: between the minor and major figures.
FIXED_GC_INSTRUCTIONS = {"minor": 60_000.0, "major": 100_000.0,
                         "sweep": 60_000.0, "concurrent": 80_000.0}

#: Phase names whose SCAN_PUSH events are *marking* scans (cold
#: mark-bitmap checks, two dependent accesses per slot) as opposed to
#: evacuation/remset scans.  Concurrent-mark traces suffix their
#: per-pause phases with ``-<n>`` so the replayers' per-phase-run
#: residual accounting stays exact; the prefixes cover those.
_MARKING_PHASE_PREFIXES = ("concurrent-mark", "final-mark", "barrier")


def is_marking_phase(name: str) -> bool:
    """True when SCAN_PUSH events in phase ``name`` are marking scans."""
    return name == "mark" or name.startswith(_MARKING_PHASE_PREFIXES)

#: HotSpot scans large object arrays in chunks of this many elements
#: (ParGCArrayScanChunk's order of magnitude), so one Scan&Push
#: invocation — host or offloaded — never covers an unbounded array.
ARRAY_SCAN_CHUNK = 50


def chunk_refs(refs: int, pushes: int):
    """Split an object's reference scan into array-scan chunks.

    Yields ``(chunk_refs, chunk_pushes)`` pairs; pushes are spread
    proportionally with the remainder on the first chunk.
    """
    if refs <= ARRAY_SCAN_CHUNK:
        yield refs, pushes
        return
    full, tail = divmod(refs, ARRAY_SCAN_CHUNK)
    counts = [ARRAY_SCAN_CHUNK] * full + ([tail] if tail else [])
    # Greedy front-loading: pushes never exceed refs, so every push is
    # placed, and the per-chunk bound chunk_pushes <= chunk_refs holds.
    # (Where pushes land within the array does not affect timing.)
    remaining = pushes
    for count in counts:
        share = min(count, remaining)
        yield count, share
        remaining -= share
