"""MinorGC: the ParallelScavenge copying collection (Fig. 3a).

Operation flow, exactly as the paper describes:

1. push the root set into the object stack;
2. *Search* the card table for dirty cards and push the old-generation
   slots that may reference young objects;
3. drain the stack: *Pop* a slot, check the referee's mark word; if not
   yet forwarded, *Copy* it to the To survivor space (or promote it to
   Old when aged enough or when To overflows), install a forwarding
   pointer, and *Scan&Push* the copy's references;
4. clean Eden and From, then swap the survivor semispaces.

The collector performs these steps functionally on the real heap while
recording Search / Copy / Scan&Push events and residual work into a
:class:`~repro.gcalgo.trace.GCTrace`.
"""

from __future__ import annotations


import numpy as np

from repro.errors import OutOfMemoryError
from repro.gcalgo.stack import ObjectStack
from repro.gcalgo.trace import (FIXED_GC_INSTRUCTIONS, GCTrace,
                                RESIDUAL_COSTS, chunk_refs)
from repro.heap import fast_kernels
from repro.heap.heap import JavaHeap
from repro.heap.object_model import MarkWord
from repro.obs.tracer import get_tracer
from repro.units import CACHE_LINE


class MinorGC:
    """One-shot scavenger; construct per heap and call :meth:`collect`."""

    def __init__(self, heap: JavaHeap,
                 tenuring_threshold: int = None) -> None:
        self.heap = heap
        self.tenuring_threshold = (
            heap.config.tenuring_threshold if tenuring_threshold is None
            else tenuring_threshold)

    # -- preconditions ----------------------------------------------------

    def promotion_safe(self) -> bool:
        """True when Old can absorb a worst-case full promotion.

        ParallelScavenge performs the same check and falls back to a
        full collection when it fails, so a scavenge never dies halfway.
        """
        layout = self.heap.layout
        worst_case = layout.eden.used + layout.survivor_from.used
        return layout.old.free >= worst_case

    # -- collection --------------------------------------------------------

    def collect(self) -> GCTrace:
        """Run the scavenge; returns the primitive trace."""
        if not self.promotion_safe():
            raise OutOfMemoryError(
                "scavenge refused: old generation cannot guarantee "
                "promotion; run a MajorGC first")
        heap = self.heap
        layout = heap.layout
        obs = get_tracer()
        fast = fast_kernels.fast_enabled(heap)
        fast_kernels.record_call("minor",
                                 kernel="fast" if fast else "scalar")
        trace = GCTrace("minor", heap_bytes=heap.config.heap_bytes)
        stack: ObjectStack[int] = ObjectStack()
        # Fixed collection overheads: VM-op setup, thread-stack roots,
        # termination protocol, policy updates (the Fig. 4 "other").
        trace.residual("setup", FIXED_GC_INSTRUCTIONS["minor"],
                       64 * 1024)

        with obs.span("collect", cat="collector", gc="minor"):
            # Step 1: roots.  Root slot i is encoded as -(i + 1); heap
            # slots are their (positive) addresses.
            with obs.span("roots", cat="collector", gc="minor"):
                for index in range(len(heap.roots)):
                    stack.push(-(index + 1))
                    trace.residual("root", RESIDUAL_COSTS["root"],
                                   CACHE_LINE)

            # Step 2: Search the card table, then collect old slots on
            # dirty cards that hold young references.
            with obs.span("card-search", cat="collector", gc="minor"):
                if fast:
                    self._card_search_fast(trace, stack)
                else:
                    self._card_search(trace, stack)

            # Step 3: drain.
            with obs.span("drain", cat="collector", gc="minor"):
                if fast:
                    self._drain_fast(trace, stack)
                else:
                    self._drain(trace, stack)

            # Step 4: clean up and swap semispaces (Fig. 1).
            eden, from_space = layout.eden, layout.survivor_from
            with obs.span("cleanup", cat="collector", gc="minor"):
                freed = eden.used + from_space.used - trace.bytes_copied
                trace.bytes_freed = max(0, freed)
                eden.reset()
                from_space.reset()
                layout.swap_survivors()
        return trace

    def _drain(self, trace: GCTrace, stack: ObjectStack) -> None:
        """Scalar drain loop (the oracle path)."""
        heap = self.heap
        eden = heap.layout.eden
        from_space = heap.layout.survivor_from
        while stack:
            slot = stack.pop()
            trace.residual("drain", RESIDUAL_COSTS["pop"])
            ref = self._read_slot(slot)
            if ref == 0:
                continue
            if not (eden.contains(ref)
                    or from_space.contains(ref)):
                # null, old, or already-evacuated To-space object
                continue
            mark = heap.mark_word(ref)
            trace.residual("drain", RESIDUAL_COSTS["check_mark"],
                           CACHE_LINE)
            if mark.is_forwarded:
                new_addr = mark.forwarding_address
            else:
                new_addr = self._evacuate(ref, mark, trace,
                                          stack)
                trace.objects_visited += 1
            self._write_slot(slot, new_addr)
            trace.residual("drain",
                           RESIDUAL_COSTS["forward_update"])

    def _drain_fast(self, trace: GCTrace, stack: ObjectStack) -> None:
        """Drain with raw-word decode — same loop, O(1) per step."""
        heap = self.heap
        layout = heap.layout
        ops = fast_kernels.HeapOps(heap)
        roots = heap.roots
        eden, from_space = layout.eden, layout.survivor_from
        e_lo, e_hi = eden.start, eden.end
        f_lo, f_hi = from_space.start, from_space.end
        pop_cost = RESIDUAL_COSTS["pop"]
        check_cost = RESIDUAL_COSTS["check_mark"]
        forward_cost = RESIDUAL_COSTS["forward_update"]
        while stack:
            slot = stack.pop()
            trace.residual("drain", pop_cost)
            ref = roots[-slot - 1] if slot < 0 else ops.read_word(slot)
            if ref == 0:
                continue
            if not (e_lo <= ref < e_hi or f_lo <= ref < f_hi):
                # null, old, or already-evacuated To-space object
                continue
            mark = MarkWord(ops.read_word(ref))
            trace.residual("drain", check_cost, CACHE_LINE)
            if mark.is_forwarded:
                new_addr = mark.forwarding_address
            else:
                new_addr = self._evacuate_fast(ref, mark, trace, stack,
                                               ops)
                trace.objects_visited += 1
            if slot < 0:
                roots[-slot - 1] = new_addr
            else:
                heap.store_ref(slot, new_addr)
            trace.residual("drain", forward_cost)

    # -- internals ------------------------------------------------------------

    def _card_search(self, trace: GCTrace, stack: ObjectStack) -> None:
        heap = self.heap
        card_table = heap.card_table
        for table_addr, n_cards, found in card_table.search_blocks():
            trace.search("card-search", table_addr, n_cards, found)
        dirty = set(int(i) for i in card_table.dirty_card_indices())
        card_table.clear()
        if not dirty:
            return
        # Find the objects on dirty cards.  HotSpot resolves each dirty
        # card to its first object through the block-offset table; we
        # charge that lookup per dirty card, while (functionally) using
        # a parseable-space walk to locate the same objects.
        for _ in dirty:
            trace.residual("card-scan", RESIDUAL_COSTS["card_lookup"],
                           CACHE_LINE)
        for view in heap.iterate_space(heap.layout.old):
            if heap.is_filler(view):
                continue
            first = card_table.card_index(view.addr)
            last = card_table.card_index(view.end_addr - 1)
            if not any(card in dirty for card in range(first, last + 1)):
                continue
            slots = view.reference_slots()
            pushes = 0
            for slot in slots:
                target = heap.load_ref(slot)
                if target and heap.layout.in_young(target):
                    stack.push(slot)
                    pushes += 1
            if slots:
                for refs, chunk_pushes in chunk_refs(len(slots), pushes):
                    trace.scan_push("card-scan", view.addr, refs,
                                    chunk_pushes)
            else:
                trace.residual("card-scan",
                               RESIDUAL_COSTS["scan_trivial"])

    def _card_search_fast(self, trace: GCTrace,
                          stack: ObjectStack) -> None:
        """Vectorized Search: one pass over cards, batched candidate
        decode — identical events and pushes to :meth:`_card_search`."""
        heap = self.heap
        card_table = heap.card_table
        for table_addr, n_cards, found in \
                fast_kernels.search_blocks_fast(card_table):
            trace.search("card-search", table_addr, n_cards, found)
        dirty_indices = card_table.dirty_card_indices()
        card_table.clear()
        n_dirty = int(dirty_indices.shape[0])
        if not n_dirty:
            return
        trace.residual("card-scan",
                       RESIDUAL_COSTS["card_lookup"] * n_dirty,
                       CACHE_LINE * n_dirty)
        old = heap.layout.old
        parsed = fast_kernels.parse_space(heap, old.start, old.top)
        if not len(parsed):
            return
        not_filler = ((parsed.kids != heap.filler_klass.klass_id)
                      & (parsed.kids
                         != heap.filler_object_klass.klass_id))
        first = ((parsed.addrs - card_table.covered_start)
                 // card_table.card_bytes)
        last = ((parsed.end_addrs - 1 - card_table.covered_start)
                // card_table.card_bytes)
        flags = np.zeros(card_table.num_cards, dtype=np.int64)
        flags[dirty_indices] = 1
        cum = np.concatenate(([0], np.cumsum(flags)))
        candidates = np.flatnonzero(
            not_filler & (cum[last + 1] - cum[first] > 0))
        if not candidates.shape[0]:
            return
        batch = fast_kernels.gather_ref_slots(
            heap, parsed.addrs[candidates], parsed.kids[candidates],
            parsed.lengths[candidates])
        layout = heap.layout
        young = ((batch.targets != 0)
                 & (batch.targets >= layout.eden.start)
                 & (batch.targets < layout.survivor_b.end))
        # Flattened slot order equals the scalar per-object push order.
        for slot in batch.slots[np.flatnonzero(young)].tolist():
            stack.push(slot)
        push_cum = np.concatenate(
            ([0], np.cumsum(young.astype(np.int64))))
        seg = np.concatenate(([0], np.cumsum(batch.counts)))
        counts = batch.counts.tolist()
        addrs = parsed.addrs[candidates].tolist()
        for index, addr in enumerate(addrs):
            n_slots = counts[index]
            if not n_slots:
                trace.residual("card-scan",
                               RESIDUAL_COSTS["scan_trivial"])
                continue
            pushes = int(push_cum[seg[index + 1]]
                         - push_cum[seg[index]])
            for refs, chunk_pushes in chunk_refs(n_slots, pushes):
                trace.scan_push("card-scan", addr, refs, chunk_pushes)

    def _read_slot(self, slot: int) -> int:
        if slot < 0:
            return self.heap.roots[-slot - 1]
        return self.heap.load_ref(slot)

    def _write_slot(self, slot: int, value: int) -> None:
        if slot < 0:
            self.heap.roots[-slot - 1] = value
        else:
            self.heap.store_ref(slot, value)

    def _evacuate(self, addr: int, mark: MarkWord, trace: GCTrace,
                  stack: ObjectStack) -> int:
        """Copy ``addr`` to To (or promote to Old); returns the new address."""
        heap = self.heap
        layout = heap.layout
        view = heap.object_at(addr)
        size = view.size_bytes
        age = min(mark.age + 1, 15)
        promote = age >= self.tenuring_threshold
        if not promote and not layout.survivor_to.can_allocate(size):
            promote = True  # survivor overflow promotes early
        if promote:
            dst = layout.old.allocate(size)
            new_mark = MarkWord.fresh()
            trace.objects_promoted += 1
        else:
            dst = layout.survivor_to.allocate(size)
            new_mark = MarkWord.fresh().with_age(age)
        trace.residual("drain", RESIDUAL_COSTS["allocate"])

        heap.copy_bytes(addr, dst, size)
        trace.copy("evacuate", addr, dst, size)
        trace.objects_copied += 1
        trace.bytes_copied += size
        heap.set_mark_word(dst, new_mark)
        heap.set_mark_word(addr, mark.forwarded_to(dst))

        # Scan&Push the copy's references (push_contents, Fig. 11).
        # Reference-free klasses (type arrays) have a no-op iterate
        # strategy and are never offloaded; large object arrays are
        # scanned in bounded chunks as HotSpot does.
        new_view = heap.object_at(dst)
        pushes = 0
        slots = new_view.reference_slots()
        for slot in slots:
            target = heap.load_ref(slot)
            if target and layout.in_young(target):
                stack.push(slot)
                pushes += 1
                trace.residual("drain", RESIDUAL_COSTS["push"])
        if slots:
            for refs, chunk_pushes in chunk_refs(len(slots), pushes):
                trace.scan_push("evacuate", dst, refs, chunk_pushes)
        else:
            trace.residual("drain", RESIDUAL_COSTS["scan_trivial"])
        # A promoted object whose young references have not been updated
        # yet keeps its card dirty through the write barrier when the
        # drain updates each pushed slot.
        return dst

    def _evacuate_fast(self, addr: int, mark: MarkWord, trace: GCTrace,
                       stack: ObjectStack,
                       ops: "fast_kernels.HeapOps") -> int:
        """:meth:`_evacuate` with raw-word header decode."""
        heap = self.heap
        layout = heap.layout
        kid, length, size = ops.decode(addr)
        age = min(mark.age + 1, 15)
        promote = age >= self.tenuring_threshold
        if not promote and not layout.survivor_to.can_allocate(size):
            promote = True  # survivor overflow promotes early
        if promote:
            dst = layout.old.allocate(size)
            new_mark = MarkWord.fresh()
            trace.objects_promoted += 1
        else:
            dst = layout.survivor_to.allocate(size)
            new_mark = MarkWord.fresh().with_age(age)
        trace.residual("drain", RESIDUAL_COSTS["allocate"])

        heap.copy_bytes(addr, dst, size)
        trace.copy("evacuate", addr, dst, size)
        trace.objects_copied += 1
        trace.bytes_copied += size
        ops.write_word(dst, new_mark.raw)
        ops.write_word(addr, mark.forwarded_to(dst).raw)

        slots = ops.ref_slots(dst, kid, length)
        pushes = 0
        young_lo, young_hi = layout.eden.start, layout.survivor_b.end
        for slot in slots:
            target = ops.read_word(slot)
            if target and young_lo <= target < young_hi:
                stack.push(slot)
                pushes += 1
                trace.residual("drain", RESIDUAL_COSTS["push"])
        if slots:
            for refs, chunk_pushes in chunk_refs(len(slots), pushes):
                trace.scan_push("evacuate", dst, refs, chunk_pushes)
        else:
            trace.residual("drain", RESIDUAL_COSTS["scan_trivial"])
        return dst
