"""Trace (de)serialization.

Trace-driven simulators live and die by being able to capture a trace
once and replay it many times; this module round-trips
:class:`~repro.gcalgo.trace.GCTrace` objects through a compact JSON
format.  Events serialize positionally (the hot field set), residuals
and summaries as small maps.  The format is versioned so stored traces
fail loudly rather than silently misreplay after a schema change.

::

    from repro.gcalgo.trace_io import save_traces, load_traces
    save_traces(run.traces, "spark-bs.gctrace.json")
    traces = load_traces("spark-bs.gctrace.json")
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.errors import ConfigError
from repro.gcalgo.trace import GCTrace, Primitive, ResidualWork, TraceEvent

FORMAT_VERSION = 1

#: positional event encoding:
#: [primitive, phase, src, dst, size, refs, pushes, bits, bits_cached,
#:  found]
_EVENT_FIELDS = ("src", "dst", "size_bytes", "refs", "pushes", "bits")


def trace_to_dict(trace: GCTrace) -> dict:
    """One trace as a JSON-ready dict."""
    events = []
    for event in trace.events:
        row = [event.primitive.value, event.phase]
        row.extend(getattr(event, name) for name in _EVENT_FIELDS)
        row.append(event.bits_cached)
        row.append(1 if event.found else 0)
        events.append(row)
    return {
        "kind": trace.kind,
        "heap_bytes": trace.heap_bytes,
        "events": events,
        "residuals": {
            phase: [work.instructions, work.bytes_accessed]
            for phase, work in trace.residuals.items()
        },
        "stats": {
            "objects_visited": trace.objects_visited,
            "objects_copied": trace.objects_copied,
            "bytes_copied": trace.bytes_copied,
            "objects_promoted": trace.objects_promoted,
            "bytes_freed": trace.bytes_freed,
        },
    }


def trace_from_dict(payload: dict) -> GCTrace:
    """Inverse of :func:`trace_to_dict`."""
    trace = GCTrace(payload["kind"],
                    heap_bytes=payload.get("heap_bytes", 0))
    for row in payload["events"]:
        primitive = Primitive(row[0])
        values = dict(zip(_EVENT_FIELDS, row[2:2 + len(_EVENT_FIELDS)]))
        trace.events.append(TraceEvent(
            primitive=primitive, phase=row[1],
            bits_cached=row[2 + len(_EVENT_FIELDS)],
            found=bool(row[3 + len(_EVENT_FIELDS)]), **values))
    for phase, (instructions, bytes_accessed) in \
            payload.get("residuals", {}).items():
        trace.residuals[phase] = ResidualWork(
            instructions=instructions, bytes_accessed=bytes_accessed)
    stats = payload.get("stats", {})
    trace.objects_visited = stats.get("objects_visited", 0)
    trace.objects_copied = stats.get("objects_copied", 0)
    trace.bytes_copied = stats.get("bytes_copied", 0)
    trace.objects_promoted = stats.get("objects_promoted", 0)
    trace.bytes_freed = stats.get("bytes_freed", 0)
    return trace


def save_traces(traces: Iterable[GCTrace],
                path: Union[str, Path]) -> int:
    """Write a run's traces to ``path``; returns the event total."""
    traces = list(traces)
    document = {
        "format": "repro-gctrace",
        "version": FORMAT_VERSION,
        "traces": [trace_to_dict(trace) for trace in traces],
    }
    Path(path).write_text(json.dumps(document, separators=(",", ":")))
    return sum(len(trace.events) for trace in traces)


def load_traces(path: Union[str, Path]) -> List[GCTrace]:
    """Read traces written by :func:`save_traces`."""
    document = json.loads(Path(path).read_text())
    if document.get("format") != "repro-gctrace":
        raise ConfigError(f"{path} is not a gctrace file")
    if document.get("version") != FORMAT_VERSION:
        raise ConfigError(
            f"{path} has trace format version "
            f"{document.get('version')}, expected {FORMAT_VERSION}")
    return [trace_from_dict(payload) for payload in document["traces"]]
