"""Trace (de)serialization.

Trace-driven simulators live and die by being able to capture a trace
once and replay it many times; this module round-trips
:class:`~repro.gcalgo.trace.GCTrace` objects through two formats:

* a compact **JSON** codec (events positionally, residuals and
  summaries as small maps) — human-greppable, version-controlled
  reproducers;
* a **binary ``.npz``** codec that stores the columnar
  :class:`~repro.gcalgo.columnar.CompiledTrace` arrays directly — the
  capture-once/replay-many artifact the experiment pipeline and the
  content-addressed trace cache use.  Loading it hands structured
  arrays straight to the vectorized replayer without per-event Python
  work.

Both formats are versioned so stored traces fail loudly rather than
silently misreplay after a schema change.  :func:`save_traces` and
:func:`load_traces` dispatch on the ``.npz`` suffix.

::

    from repro.gcalgo.trace_io import save_traces, load_traces
    save_traces(run.traces, "spark-bs.gctrace.json")   # JSON
    save_traces(run.traces, "spark-bs.gctrace.npz")    # binary columnar
    traces = load_traces("spark-bs.gctrace.npz")
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigError
from repro.gcalgo.columnar import (CompiledTrace, EVENT_DTYPE,
                                   STAT_FIELDS, TRACE_SCHEMA_VERSION,
                                   compile_traces)
from repro.gcalgo.trace import GCTrace, Primitive, ResidualWork, TraceEvent

FORMAT_VERSION = 1

BINARY_FORMAT = "repro-gctrace-npz"

#: positional event encoding:
#: [primitive, phase, src, dst, size, refs, pushes, bits, bits_cached,
#:  found]
_EVENT_FIELDS = ("src", "dst", "size_bytes", "refs", "pushes", "bits")


def trace_to_dict(trace: GCTrace) -> dict:
    """One trace as a JSON-ready dict."""
    events = []
    for event in trace.events:
        row = [event.primitive.value, event.phase]
        row.extend(getattr(event, name) for name in _EVENT_FIELDS)
        row.append(event.bits_cached)
        row.append(1 if event.found else 0)
        events.append(row)
    return {
        "kind": trace.kind,
        "heap_bytes": trace.heap_bytes,
        "events": events,
        "residuals": {
            phase: [work.instructions, work.bytes_accessed]
            for phase, work in trace.residuals.items()
        },
        "stats": {
            "objects_visited": trace.objects_visited,
            "objects_copied": trace.objects_copied,
            "bytes_copied": trace.bytes_copied,
            "objects_promoted": trace.objects_promoted,
            "bytes_freed": trace.bytes_freed,
        },
    }


def trace_from_dict(payload: dict) -> GCTrace:
    """Inverse of :func:`trace_to_dict`."""
    trace = GCTrace(payload["kind"],
                    heap_bytes=payload.get("heap_bytes", 0))
    for row in payload["events"]:
        primitive = Primitive(row[0])
        values = dict(zip(_EVENT_FIELDS, row[2:2 + len(_EVENT_FIELDS)]))
        trace.events.append(TraceEvent(
            primitive=primitive, phase=row[1],
            bits_cached=row[2 + len(_EVENT_FIELDS)],
            found=bool(row[3 + len(_EVENT_FIELDS)]), **values))
    for phase, (instructions, bytes_accessed) in \
            payload.get("residuals", {}).items():
        trace.residuals[phase] = ResidualWork(
            instructions=instructions, bytes_accessed=bytes_accessed)
    stats = payload.get("stats", {})
    trace.objects_visited = stats.get("objects_visited", 0)
    trace.objects_copied = stats.get("objects_copied", 0)
    trace.bytes_copied = stats.get("bytes_copied", 0)
    trace.objects_promoted = stats.get("objects_promoted", 0)
    trace.bytes_freed = stats.get("bytes_freed", 0)
    return trace


def save_traces(traces: Iterable[GCTrace],
                path: Union[str, Path]) -> int:
    """Write a run's traces to ``path``; returns the event total.

    Dispatches on the suffix: ``.npz`` writes the binary columnar
    format, anything else the JSON format.
    """
    path = Path(path)
    if path.suffix == ".npz":
        return save_traces_npz(traces, path)
    traces = list(traces)
    document = {
        "format": "repro-gctrace",
        "version": FORMAT_VERSION,
        "traces": [trace_to_dict(trace) for trace in traces],
    }
    path.write_text(json.dumps(document, separators=(",", ":")))
    return sum(len(trace.events) for trace in traces)


def load_traces(path: Union[str, Path]) -> List[GCTrace]:
    """Read traces written by :func:`save_traces` (either format)."""
    path = Path(path)
    if path.suffix == ".npz":
        compiled, _ = load_compiled(path)
        return [trace.to_trace() for trace in compiled]
    document = json.loads(path.read_text())
    if document.get("format") != "repro-gctrace":
        raise ConfigError(f"{path} is not a gctrace file")
    if document.get("version") != FORMAT_VERSION:
        raise ConfigError(
            f"{path} has trace format version "
            f"{document.get('version')}, expected {FORMAT_VERSION}")
    return [trace_from_dict(payload) for payload in document["traces"]]


# -- binary columnar codec -------------------------------------------------

def _event_key(index: int) -> str:
    return f"events_{index:05d}"


def save_traces_npz(traces: Iterable[Union[GCTrace, CompiledTrace]],
                    path: Union[str, Path],
                    extra: Optional[Dict[str, object]] = None) -> int:
    """Write traces as compiled columnar arrays; returns the event total.

    ``extra`` is an optional JSON-serializable dict stored alongside
    (the trace cache uses it for the captured run's stats).  The write
    is atomic: a sibling temp file is renamed into place, so concurrent
    writers of the same content-addressed entry cannot tear it.
    """
    compiled = compile_traces(list(traces))
    manifest = {
        "format": BINARY_FORMAT,
        "version": TRACE_SCHEMA_VERSION,
        "traces": [
            {
                "kind": trace.kind,
                "heap_bytes": trace.heap_bytes,
                "phases": list(trace.phase_names),
                "residuals": {
                    phase: [work.instructions, work.bytes_accessed]
                    for phase, work in trace.residuals.items()
                },
                "stats": {name: getattr(trace, name)
                          for name in STAT_FIELDS},
            }
            for trace in compiled
        ],
    }
    if extra is not None:
        manifest["extra"] = extra
    arrays = {_event_key(i): trace.events
              for i, trace in enumerate(compiled)}
    path = Path(path)
    temp = path.with_name(path.name + f".tmp{id(arrays):x}")
    with open(temp, "wb") as handle:
        np.savez_compressed(
            handle,
            manifest=np.asarray(json.dumps(manifest,
                                           separators=(",", ":"))),
            **arrays)
    temp.replace(path)
    return sum(len(trace.events) for trace in compiled)


def load_compiled(path: Union[str, Path]
                  ) -> Tuple[List[CompiledTrace], Dict[str, object]]:
    """Read a binary trace file as compiled arrays.

    Returns ``(traces, extra)`` where ``extra`` is whatever dict
    :func:`save_traces_npz` stored (empty if none).  Raises
    :class:`ConfigError` loudly on a foreign file or a schema-version
    mismatch — a stale artifact must be regenerated, never misreplayed.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            if "manifest" not in archive:
                raise ConfigError(f"{path} is not a binary gctrace file")
            manifest = json.loads(str(archive["manifest"]))
            if manifest.get("format") != BINARY_FORMAT:
                raise ConfigError(f"{path} is not a binary gctrace file")
            if manifest.get("version") != TRACE_SCHEMA_VERSION:
                raise ConfigError(
                    f"{path} has trace schema version "
                    f"{manifest.get('version')}, expected "
                    f"{TRACE_SCHEMA_VERSION}; regenerate the trace")
            traces = []
            for index, entry in enumerate(manifest["traces"]):
                events = archive[_event_key(index)]
                if events.dtype != EVENT_DTYPE:
                    raise ConfigError(
                        f"{path} event layout does not match schema "
                        f"v{TRACE_SCHEMA_VERSION}; regenerate the trace")
                residuals = {
                    phase: ResidualWork(instructions=instructions,
                                        bytes_accessed=bytes_accessed)
                    for phase, (instructions, bytes_accessed)
                    in entry.get("residuals", {}).items()
                }
                traces.append(CompiledTrace(
                    entry["kind"], entry.get("heap_bytes", 0), events,
                    entry.get("phases", []), residuals,
                    **entry.get("stats", {})))
            return traces, manifest.get("extra", {})
    except (ValueError, KeyError, OSError, zipfile.BadZipFile) as exc:
        raise ConfigError(f"{path} is not a readable gctrace file: "
                          f"{exc}") from exc


def load_traces_npz(path: Union[str, Path]) -> List[GCTrace]:
    """Read a binary trace file back as :class:`GCTrace` objects."""
    compiled, _ = load_compiled(path)
    return [trace.to_trace() for trace in compiled]
