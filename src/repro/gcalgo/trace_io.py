"""Trace (de)serialization.

Trace-driven simulators live and die by being able to capture a trace
once and replay it many times; this module round-trips
:class:`~repro.gcalgo.trace.GCTrace` objects through two formats:

* a compact **JSON** codec (events positionally, residuals and
  summaries as small maps) — human-greppable, version-controlled
  reproducers;
* a **binary ``.npz``** codec that stores the columnar
  :class:`~repro.gcalgo.columnar.CompiledTrace` arrays directly — the
  capture-once/replay-many artifact the experiment pipeline and the
  content-addressed trace cache use.  Loading it hands structured
  arrays straight to the vectorized replayer without per-event Python
  work.

The binary layout is *chunked and streamed*: the writer compiles and
serializes one trace at a time, splitting each trace's event array
into members of at most ``REPRO_TRACE_CHUNK_EVENTS`` events (a trace
that fits one chunk keeps the original monolithic member name), so
writing never holds more than one trace in RAM.  On the way back,
:func:`stream_compiled` is a generator that materializes one trace at
a time, :func:`load_manifest` / :func:`load_summaries` answer
metadata/summary queries without decompressing a single event member
(``np.load`` reads zip members lazily), and :func:`load_compiled`
remains the eager convenience wrapper.

Both formats are versioned so stored traces fail loudly rather than
silently misreplay after a schema change.  :func:`save_traces` and
:func:`load_traces` dispatch on the ``.npz`` suffix.

::

    from repro.gcalgo.trace_io import save_traces, load_traces
    save_traces(run.traces, "spark-bs.gctrace.json")   # JSON
    save_traces(run.traces, "spark-bs.gctrace.npz")    # binary columnar
    traces = load_traces("spark-bs.gctrace.npz")
"""

from __future__ import annotations

import json
import math
import os
import zipfile
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, Optional, Tuple,
                    Union)

import numpy as np

from repro.config import default_trace_chunk_events
from repro.errors import ConfigError
from repro.gcalgo.columnar import (CompiledTrace, EVENT_DTYPE,
                                   STAT_FIELDS, TRACE_SCHEMA_VERSION,
                                   compile_trace)
from repro.gcalgo.trace import GCTrace, Primitive, ResidualWork, TraceEvent

FORMAT_VERSION = 1

BINARY_FORMAT = "repro-gctrace-npz"

#: positional event encoding:
#: [primitive, phase, src, dst, size, refs, pushes, bits, bits_cached,
#:  found]
_EVENT_FIELDS = ("src", "dst", "size_bytes", "refs", "pushes", "bits")


def trace_to_dict(trace: GCTrace) -> dict:
    """One trace as a JSON-ready dict."""
    events = []
    for event in trace.events:
        row = [event.primitive.value, event.phase]
        row.extend(getattr(event, name) for name in _EVENT_FIELDS)
        row.append(event.bits_cached)
        row.append(1 if event.found else 0)
        events.append(row)
    return {
        "kind": trace.kind,
        "heap_bytes": trace.heap_bytes,
        "events": events,
        "residuals": {
            phase: [work.instructions, work.bytes_accessed]
            for phase, work in trace.residuals.items()
        },
        "stats": {
            "objects_visited": trace.objects_visited,
            "objects_copied": trace.objects_copied,
            "bytes_copied": trace.bytes_copied,
            "objects_promoted": trace.objects_promoted,
            "bytes_freed": trace.bytes_freed,
        },
    }


def trace_from_dict(payload: dict) -> GCTrace:
    """Inverse of :func:`trace_to_dict`."""
    trace = GCTrace(payload["kind"],
                    heap_bytes=payload.get("heap_bytes", 0))
    for row in payload["events"]:
        primitive = Primitive(row[0])
        values = dict(zip(_EVENT_FIELDS, row[2:2 + len(_EVENT_FIELDS)]))
        trace.events.append(TraceEvent(
            primitive=primitive, phase=row[1],
            bits_cached=row[2 + len(_EVENT_FIELDS)],
            found=bool(row[3 + len(_EVENT_FIELDS)]), **values))
    for phase, (instructions, bytes_accessed) in \
            payload.get("residuals", {}).items():
        trace.residuals[phase] = ResidualWork(
            instructions=instructions, bytes_accessed=bytes_accessed)
    stats = payload.get("stats", {})
    trace.objects_visited = stats.get("objects_visited", 0)
    trace.objects_copied = stats.get("objects_copied", 0)
    trace.bytes_copied = stats.get("bytes_copied", 0)
    trace.objects_promoted = stats.get("objects_promoted", 0)
    trace.bytes_freed = stats.get("bytes_freed", 0)
    return trace


def save_traces(traces: Iterable[GCTrace],
                path: Union[str, Path]) -> int:
    """Write a run's traces to ``path``; returns the event total.

    Dispatches on the suffix: ``.npz`` writes the binary columnar
    format, anything else the JSON format.
    """
    path = Path(path)
    if path.suffix == ".npz":
        return save_traces_npz(traces, path)
    traces = list(traces)
    document = {
        "format": "repro-gctrace",
        "version": FORMAT_VERSION,
        "traces": [trace_to_dict(trace) for trace in traces],
    }
    path.write_text(json.dumps(document, separators=(",", ":")))
    return sum(len(trace.events) for trace in traces)


def load_traces(path: Union[str, Path]) -> List[GCTrace]:
    """Read traces written by :func:`save_traces` (either format)."""
    path = Path(path)
    if path.suffix == ".npz":
        compiled, _ = load_compiled(path)
        return [trace.to_trace() for trace in compiled]
    document = json.loads(path.read_text())
    if document.get("format") != "repro-gctrace":
        raise ConfigError(f"{path} is not a gctrace file")
    if document.get("version") != FORMAT_VERSION:
        raise ConfigError(
            f"{path} has trace format version "
            f"{document.get('version')}, expected {FORMAT_VERSION}")
    return [trace_from_dict(payload) for payload in document["traces"]]


# -- binary columnar codec -------------------------------------------------

def _event_key(index: int, chunk: Optional[int] = None) -> str:
    if chunk is None:
        return f"events_{index:05d}"
    return f"events_{index:05d}_{chunk:05d}"


def _write_member(archive: zipfile.ZipFile, name: str,
                  array: np.ndarray) -> None:
    with archive.open(name + ".npy", "w", force_zip64=True) as member:
        np.lib.format.write_array(member, array, allow_pickle=False)


def save_traces_npz(traces: Iterable[Union[GCTrace, CompiledTrace]],
                    path: Union[str, Path],
                    extra: Optional[Dict[str, object]] = None,
                    chunk_events: Optional[int] = None) -> int:
    """Write traces as compiled columnar arrays; returns the event total.

    The writer *streams*: ``traces`` may be any iterable (including a
    generator), each trace is compiled and serialized as it arrives,
    and its event array is split into members of at most
    ``chunk_events`` events (``REPRO_TRACE_CHUNK_EVENTS``, default
    :data:`repro.config.DEFAULT_TRACE_CHUNK_EVENTS`) — so peak memory
    is one trace, not the run.  A trace that fits a single chunk keeps
    the original monolithic member name, making the single-chunk file
    byte-layout-compatible with pre-chunking readers.

    ``extra`` is an optional JSON-serializable dict stored alongside
    (the trace cache uses it for the captured run's stats).  The write
    is atomic: a sibling temp file is renamed into place, so concurrent
    writers of the same content-addressed entry cannot tear it.
    """
    if chunk_events is None:
        chunk_events = default_trace_chunk_events()
    if chunk_events < 1:
        raise ConfigError("chunk_events must be >= 1")
    path = Path(path)
    entries: List[dict] = []
    total = 0
    temp = path.with_name(
        path.name + f".tmp{os.getpid():x}_{id(entries):x}")
    with zipfile.ZipFile(temp, "w", zipfile.ZIP_DEFLATED,
                         allowZip64=True) as archive:
        for index, trace in enumerate(traces):
            compiled = (trace if isinstance(trace, CompiledTrace)
                        else compile_trace(trace))
            events = compiled.events
            count = len(events)
            chunks = max(1, math.ceil(count / chunk_events))
            if chunks == 1:
                _write_member(archive, _event_key(index), events)
            else:
                for j in range(chunks):
                    _write_member(
                        archive, _event_key(index, j),
                        events[j * chunk_events:(j + 1) * chunk_events])
            entries.append({
                "kind": compiled.kind,
                "heap_bytes": compiled.heap_bytes,
                "phases": list(compiled.phase_names),
                "residuals": {
                    phase: [work.instructions, work.bytes_accessed]
                    for phase, work in compiled.residuals.items()
                },
                "stats": {name: getattr(compiled, name)
                          for name in STAT_FIELDS},
                "events": count,
                "chunks": chunks,
                "summary": compiled.summary(),
            })
            total += count
        manifest = {
            "format": BINARY_FORMAT,
            "version": TRACE_SCHEMA_VERSION,
            "chunk_events": chunk_events,
            "traces": entries,
        }
        if extra is not None:
            manifest["extra"] = extra
        _write_member(
            archive, "manifest",
            np.asarray(json.dumps(manifest, separators=(",", ":"))))
    temp.replace(path)
    return total


def _validated_manifest(archive, path: Path) -> dict:
    """Parse and version-check the manifest member (and nothing else)."""
    if "manifest" not in archive:
        raise ConfigError(f"{path} is not a binary gctrace file")
    manifest = json.loads(str(archive["manifest"]))
    if manifest.get("format") != BINARY_FORMAT:
        raise ConfigError(f"{path} is not a binary gctrace file")
    if manifest.get("version") != TRACE_SCHEMA_VERSION:
        raise ConfigError(
            f"{path} has trace schema version "
            f"{manifest.get('version')}, expected "
            f"{TRACE_SCHEMA_VERSION}; regenerate the trace")
    return manifest


def _compiled_of(archive, path: Path, index: int,
                 entry: dict) -> CompiledTrace:
    """Materialize one manifest entry's trace from its chunk members."""
    chunks = int(entry.get("chunks", 1))
    if chunks <= 1:
        parts = [archive[_event_key(index)]]
    else:
        parts = [archive[_event_key(index, j)] for j in range(chunks)]
    for part in parts:
        if not isinstance(part, np.ndarray) or part.dtype != EVENT_DTYPE:
            raise ConfigError(
                f"{path} event layout does not match schema "
                f"v{TRACE_SCHEMA_VERSION}; regenerate the trace")
    events = parts[0] if len(parts) == 1 else np.concatenate(parts)
    declared = entry.get("events")
    if declared is not None and declared != len(events):
        raise ConfigError(
            f"{path} trace {index} declares {declared} events but "
            f"stores {len(events)}; regenerate the trace")
    residuals = {
        phase: ResidualWork(instructions=instructions,
                            bytes_accessed=bytes_accessed)
        for phase, (instructions, bytes_accessed)
        in entry.get("residuals", {}).items()
    }
    return CompiledTrace(
        entry["kind"], entry.get("heap_bytes", 0), events,
        entry.get("phases", []), residuals,
        **entry.get("stats", {}))


_NPZ_ERRORS = (ValueError, KeyError, OSError, zipfile.BadZipFile)


def load_compiled(path: Union[str, Path]
                  ) -> Tuple[List[CompiledTrace], Dict[str, object]]:
    """Read a binary trace file as compiled arrays.

    Returns ``(traces, extra)`` where ``extra`` is whatever dict
    :func:`save_traces_npz` stored (empty if none).  Raises
    :class:`ConfigError` loudly on a foreign file or a schema-version
    mismatch — a stale artifact must be regenerated, never misreplayed.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            manifest = _validated_manifest(archive, path)
            traces = [_compiled_of(archive, path, index, entry)
                      for index, entry
                      in enumerate(manifest["traces"])]
            return traces, manifest.get("extra", {})
    except _NPZ_ERRORS as exc:
        raise ConfigError(f"{path} is not a readable gctrace file: "
                          f"{exc}") from exc


def stream_compiled(path: Union[str, Path]
                    ) -> Iterator[CompiledTrace]:
    """Yield a binary trace file's traces one at a time.

    A generator over the same content :func:`load_compiled` returns,
    but only one trace's chunks are materialized at any moment — the
    replay feed for paper-scale files whose full event stream would
    not fit in RAM.  Validation matches :func:`load_compiled`.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            manifest = _validated_manifest(archive, path)
            for index, entry in enumerate(manifest["traces"]):
                yield _compiled_of(archive, path, index, entry)
    except _NPZ_ERRORS as exc:
        raise ConfigError(f"{path} is not a readable gctrace file: "
                          f"{exc}") from exc


def load_manifest(path: Union[str, Path]) -> dict:
    """Read and validate only the manifest member of a binary trace.

    No event member is touched (``np.load`` decompresses members
    lazily), so this is O(metadata) even for paper-scale files.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            return _validated_manifest(archive, path)
    except _NPZ_ERRORS as exc:
        raise ConfigError(f"{path} is not a readable gctrace file: "
                          f"{exc}") from exc


def load_summaries(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Per-trace summaries without loading the event stream.

    Files written since the chunked layout carry each trace's
    :meth:`~repro.gcalgo.columnar.CompiledTrace.summary` in the
    manifest; older files fall back to materializing one trace at a
    time (still never the whole file).
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            manifest = _validated_manifest(archive, path)
            summaries = []
            for index, entry in enumerate(manifest["traces"]):
                summary = entry.get("summary")
                if summary is None:  # pre-chunking file
                    summary = _compiled_of(archive, path, index,
                                           entry).summary()
                summaries.append(summary)
            return summaries
    except _NPZ_ERRORS as exc:
        raise ConfigError(f"{path} is not a readable gctrace file: "
                          f"{exc}") from exc


def load_traces_npz(path: Union[str, Path]) -> List[GCTrace]:
    """Read a binary trace file back as :class:`GCTrace` objects."""
    compiled, _ = load_compiled(path)
    return [trace.to_trace() for trace in compiled]
