"""The object stack (marking/scavenging work list).

HotSpot's parallel collectors drain per-thread task queues with work
stealing; functionally the drain order does not affect the result, so we
model a single LIFO stack with depth statistics.  The timing layer
spreads the recorded work over the configured GC thread count.
"""

from __future__ import annotations

from typing import Generic, List, TypeVar

T = TypeVar("T")


class ObjectStack(Generic[T]):
    """A LIFO work list with high-water statistics."""

    def __init__(self) -> None:
        self._items: List[T] = []
        self.pushes = 0
        self.pops = 0
        self.max_depth = 0

    def push(self, item: T) -> None:
        self._items.append(item)
        self.pushes += 1
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)

    def pop(self) -> T:
        self.pops += 1
        return self._items.pop()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)
