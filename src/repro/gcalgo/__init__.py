"""Garbage collectors over the managed heap.

Three collectors, all emitting primitive traces for the timing layer:

* :class:`~repro.gcalgo.parallel_scavenge.MinorGC` — the copying
  scavenge of ParallelScavenge (Fig. 3a): card-table Search, object
  evacuation with aging/promotion, Scan&Push traversal;
* :class:`~repro.gcalgo.mark_compact.MajorGC` — mark-compact
  (Fig. 3b): Scan&Push marking into begin/end bitmaps, summary,
  Bitmap-Count-driven pointer adjustment and sliding compaction;
* :class:`~repro.gcalgo.mark_sweep.MarkSweepGC` — a CMS-like
  non-compacting old-generation collector used for the Table 1
  applicability study (Copy/Search and Scan&Push apply; Bitmap Count
  does not);
* :class:`~repro.gcalgo.g1.G1Collector` — a simplified Garbage-First
  regional collector demonstrating the Table 1 G1 row (all four
  primitives, Bitmap Count "with minor fix" for region liveness);
* :class:`~repro.gcalgo.concurrent_mark.ConcurrentMarkGC` — a
  region-based SATB concurrent-marking collector whose cycle
  interleaves with the mutator (Scan&Push marking and write-barrier
  drains, Bitmap Count liveness; non-moving, so no Copy/Search).
"""

from repro.gcalgo.trace import GCTrace, Primitive, TraceEvent
from repro.gcalgo.stack import ObjectStack
from repro.gcalgo.parallel_scavenge import MinorGC
from repro.gcalgo.mark_compact import MajorGC
from repro.gcalgo.mark_sweep import MarkSweepGC
from repro.gcalgo.g1 import G1Collector
from repro.gcalgo.concurrent_mark import ConcurrentMarkGC
from repro.gcalgo.gclog import format_gc_line, format_gc_log
from repro.gcalgo.trace_io import load_traces, save_traces

__all__ = [
    "GCTrace",
    "Primitive",
    "TraceEvent",
    "ObjectStack",
    "MinorGC",
    "MajorGC",
    "MarkSweepGC",
    "G1Collector",
    "ConcurrentMarkGC",
    "format_gc_line",
    "format_gc_log",
    "load_traces",
    "save_traces",
]
