"""A CMS-like mark-sweep old-generation collector (no compaction).

Table 1 of the paper classifies Charon's primitives by collector:
Concurrent-Mark-Sweep uses Copy/Search (in its young-generation
scavenges) and Scan&Push (marking), but *not* Bitmap Count, because it
never compacts.  This collector exists to demonstrate that applicability
concretely: its traces contain Scan&Push events and residual sweep work
only, and the young generation keeps using :class:`MinorGC` unchanged.

Dead ranges are overwritten with filler objects, which keeps the old
space parseable and doubles as the free list (``sweep`` returns the
reclaimed chunks).  We model the stop-the-world analogue of CMS's
mark/sweep cycle; the concurrency-specific barrier overheads the paper
discusses in Sec. 4.6 are out of scope, as they are for Charon itself.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from repro.gcalgo.stack import ObjectStack
from repro.gcalgo.trace import (FIXED_GC_INSTRUCTIONS, GCTrace,
                               RESIDUAL_COSTS, chunk_refs)
from repro.heap import fast_kernels
from repro.heap.heap import JavaHeap
from repro.obs.tracer import get_tracer
from repro.units import CACHE_LINE


class MarkSweepGC:
    """Stop-the-world mark-sweep over the old generation."""

    def __init__(self, heap: JavaHeap) -> None:
        self.heap = heap
        #: reclaimed (addr, size) chunks from the last sweep
        self.free_list: List[Tuple[int, int]] = []

    def collect(self) -> GCTrace:
        obs = get_tracer()
        fast = fast_kernels.fast_enabled(self.heap)
        fast_kernels.record_call("sweep",
                                 kernel="fast" if fast else "scalar")
        trace = GCTrace("sweep", heap_bytes=self.heap.config.heap_bytes)
        trace.residual("setup", FIXED_GC_INSTRUCTIONS["sweep"],
                       64 * 1024)
        with obs.span("collect", cat="collector", gc="sweep"):
            with obs.span("mark", cat="collector", gc="sweep"):
                marked = (self._mark_fast(trace) if fast
                          else self._mark(trace))
            with obs.span("sweep", cat="collector", gc="sweep"):
                if fast:
                    self._sweep_fast(trace, marked)
                else:
                    self._sweep(trace, marked)
        return trace

    def _mark(self, trace: GCTrace) -> set:
        heap = self.heap
        stack: ObjectStack[int] = ObjectStack()
        marked = set()
        for addr in heap.roots:
            trace.residual("mark", RESIDUAL_COSTS["root"], CACHE_LINE)
            if addr and addr not in marked:
                marked.add(addr)
                stack.push(addr)
        while stack:
            addr = stack.pop()
            trace.residual("mark", RESIDUAL_COSTS["pop"])
            view = heap.object_at(addr)
            trace.objects_visited += 1
            slots = view.reference_slots()
            pushes = 0
            for slot in slots:
                target = heap.load_ref(slot)
                trace.residual("mark", RESIDUAL_COSTS["check_mark"])
                if target and target not in marked:
                    marked.add(target)
                    stack.push(target)
                    pushes += 1
            if slots:
                for refs, chunk_pushes in chunk_refs(len(slots), pushes):
                    trace.scan_push("mark", addr, refs, chunk_pushes)
            else:
                trace.residual("mark", RESIDUAL_COSTS["scan_trivial"])
        return marked

    def _sweep(self, trace: GCTrace, marked: set) -> None:
        """Coalesce dead old-generation ranges into filler chunks."""
        heap = self.heap
        old = heap.layout.old
        self.free_list = []
        dead_start = None
        cursor = old.start
        while cursor < old.top:
            view = heap.object_at(cursor)
            trace.residual("sweep", RESIDUAL_COSTS["sweep_step"],
                           CACHE_LINE)
            end = view.end_addr
            is_dead = heap.is_filler(view) or view.addr not in marked
            if is_dead:
                if dead_start is None:
                    dead_start = view.addr
            else:
                if dead_start is not None:
                    self._reclaim(trace, dead_start, view.addr)
                    dead_start = None
            cursor = end
        if dead_start is not None:
            self._reclaim(trace, dead_start, old.top)

    # -- fast-path phases ---------------------------------------------------

    def _mark_fast(self, trace: GCTrace) -> Set[int]:
        """The scalar traversal with raw-word header decode."""
        heap = self.heap
        ops = fast_kernels.HeapOps(heap)
        stack: ObjectStack[int] = ObjectStack()
        marked: Set[int] = set()
        n_roots = len(heap.roots)
        if n_roots:
            trace.residual("mark", RESIDUAL_COSTS["root"] * n_roots,
                           CACHE_LINE * n_roots)
        for addr in heap.roots:
            if addr and addr not in marked:
                marked.add(addr)
                stack.push(addr)
        pop_cost = RESIDUAL_COSTS["pop"]
        check_cost = RESIDUAL_COSTS["check_mark"]
        trivial_cost = RESIDUAL_COSTS["scan_trivial"]
        while stack:
            addr = stack.pop()
            trace.residual("mark", pop_cost)
            kid, length, _ = ops.decode(addr)
            trace.objects_visited += 1
            slots = ops.ref_slots(addr, kid, length)
            if slots:
                trace.residual("mark", check_cost * len(slots))
                pushes = 0
                for slot in slots:
                    target = ops.read_word(slot)
                    if target and target not in marked:
                        marked.add(target)
                        stack.push(target)
                        pushes += 1
                for refs, chunk_pushes in chunk_refs(len(slots),
                                                     pushes):
                    trace.scan_push("mark", addr, refs, chunk_pushes)
            else:
                trace.residual("mark", trivial_cost)
        return marked

    def _sweep_fast(self, trace: GCTrace, marked: Set[int]) -> None:
        """One parse pass plus a vectorized dead mask, then the same
        coalesced reclaims as the scalar sweep."""
        heap = self.heap
        old = heap.layout.old
        self.free_list = []
        parsed = fast_kernels.parse_space(heap, old.start, old.top)
        n_objects = len(parsed)
        if not n_objects:
            return
        trace.residual("sweep",
                       RESIDUAL_COSTS["sweep_step"] * n_objects,
                       CACHE_LINE * n_objects)
        filler = ((parsed.kids == heap.filler_klass.klass_id)
                  | (parsed.kids == heap.filler_object_klass.klass_id))
        marked_addrs = np.fromiter(marked, dtype=np.int64,
                                   count=len(marked)) if marked \
            else np.empty(0, dtype=np.int64)
        dead = filler | ~np.isin(parsed.addrs, marked_addrs)
        addrs = parsed.addrs.tolist()
        dead_list = dead.tolist()
        dead_start = None
        for position in range(n_objects):
            if dead_list[position]:
                if dead_start is None:
                    dead_start = addrs[position]
            elif dead_start is not None:
                self._reclaim(trace, dead_start, addrs[position])
                dead_start = None
        if dead_start is not None:
            self._reclaim(trace, dead_start, old.top)

    def _reclaim(self, trace: GCTrace, start: int, end: int) -> None:
        size = end - start
        self.heap.fill_dead_range(start, end)
        self.free_list.append((start, size))
        trace.bytes_freed += size

    @property
    def free_bytes(self) -> int:
        return sum(size for _, size in self.free_list)
