"""A CMS-like mark-sweep old-generation collector (no compaction).

Table 1 of the paper classifies Charon's primitives by collector:
Concurrent-Mark-Sweep uses Copy/Search (in its young-generation
scavenges) and Scan&Push (marking), but *not* Bitmap Count, because it
never compacts.  This collector exists to demonstrate that applicability
concretely: its traces contain Scan&Push events and residual sweep work
only, and the young generation keeps using :class:`MinorGC` unchanged.

Dead ranges are overwritten with filler objects, which keeps the old
space parseable and doubles as the free list (``sweep`` returns the
reclaimed chunks).  We model the stop-the-world analogue of CMS's
mark/sweep cycle; the concurrency-specific barrier overheads the paper
discusses in Sec. 4.6 are out of scope, as they are for Charon itself.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.gcalgo.stack import ObjectStack
from repro.gcalgo.trace import (FIXED_GC_INSTRUCTIONS, GCTrace,
                               RESIDUAL_COSTS, chunk_refs)
from repro.heap.heap import JavaHeap
from repro.obs.tracer import get_tracer
from repro.units import CACHE_LINE


class MarkSweepGC:
    """Stop-the-world mark-sweep over the old generation."""

    def __init__(self, heap: JavaHeap) -> None:
        self.heap = heap
        #: reclaimed (addr, size) chunks from the last sweep
        self.free_list: List[Tuple[int, int]] = []

    def collect(self) -> GCTrace:
        obs = get_tracer()
        trace = GCTrace("sweep", heap_bytes=self.heap.config.heap_bytes)
        trace.residual("setup", FIXED_GC_INSTRUCTIONS["sweep"],
                       64 * 1024)
        with obs.span("collect", cat="collector", gc="sweep"):
            with obs.span("mark", cat="collector", gc="sweep"):
                marked = self._mark(trace)
            with obs.span("sweep", cat="collector", gc="sweep"):
                self._sweep(trace, marked)
        return trace

    def _mark(self, trace: GCTrace) -> set:
        heap = self.heap
        stack: ObjectStack[int] = ObjectStack()
        marked = set()
        for addr in heap.roots:
            trace.residual("mark", RESIDUAL_COSTS["root"], CACHE_LINE)
            if addr and addr not in marked:
                marked.add(addr)
                stack.push(addr)
        while stack:
            addr = stack.pop()
            trace.residual("mark", RESIDUAL_COSTS["pop"])
            view = heap.object_at(addr)
            trace.objects_visited += 1
            slots = view.reference_slots()
            pushes = 0
            for slot in slots:
                target = heap.load_ref(slot)
                trace.residual("mark", RESIDUAL_COSTS["check_mark"])
                if target and target not in marked:
                    marked.add(target)
                    stack.push(target)
                    pushes += 1
            if slots:
                for refs, chunk_pushes in chunk_refs(len(slots), pushes):
                    trace.scan_push("mark", addr, refs, chunk_pushes)
            else:
                trace.residual("mark", RESIDUAL_COSTS["scan_trivial"])
        return marked

    def _sweep(self, trace: GCTrace, marked: set) -> None:
        """Coalesce dead old-generation ranges into filler chunks."""
        heap = self.heap
        old = heap.layout.old
        self.free_list = []
        dead_start = None
        cursor = old.start
        while cursor < old.top:
            view = heap.object_at(cursor)
            trace.residual("sweep", RESIDUAL_COSTS["sweep_step"],
                           CACHE_LINE)
            end = view.end_addr
            is_dead = heap.is_filler(view) or view.addr not in marked
            if is_dead:
                if dead_start is None:
                    dead_start = view.addr
            else:
                if dead_start is not None:
                    self._reclaim(trace, dead_start, view.addr)
                    dead_start = None
            cursor = end
        if dead_start is not None:
            self._reclaim(trace, dead_start, old.top)

    def _reclaim(self, trace: GCTrace, start: int, end: int) -> None:
        size = end - start
        self.heap.fill_dead_range(start, end)
        self.free_list.append((start, size))
        trace.bytes_freed += size

    @property
    def free_bytes(self) -> int:
        return sum(size for _, size in self.free_list)
