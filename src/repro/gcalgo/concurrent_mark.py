"""A region-based concurrent-marking collector (SATB, non-moving).

The production collectors Charon targets are increasingly concurrent
(ZGC, Shenandoah, G1's marking cycle), and concurrent traces exercise
primitive patterns the stop-the-world collectors never produce:
marking interleaved with mutation, write-barrier traffic, and floating
garbage.  This collector brings that trace shape onto the existing
heap/mark-bitmap substrate:

* the heap is carved into fixed-size regions with bump allocation, as
  in :mod:`repro.gcalgo.g1`, but objects never move — reclamation is a
  concurrent sweep in the CMS/Shenandoah-sans-evacuation style, so the
  mutator's addresses stay valid across the whole cycle;
* marking is **snapshot-at-the-beginning (SATB)**: a short initial-mark
  pause pushes every root (the snapshot), then :meth:`mark_step`
  advances the traversal in bounded increments between mutator steps;
* a **logged write barrier** (:meth:`_barrier`, installed on
  :attr:`~repro.heap.heap.JavaHeap.ref_write_hooks`) records every
  overwritten non-null reference while a cycle is live, so destroyed
  snapshot edges cannot hide objects from the marker; the buffer is
  drained at the start of each mark pause;
* objects allocated during the cycle are marked immediately and queued
  for scanning (allocate-grey), keeping the "everything live at the
  snapshot survives" invariant checkable: exactly the marked objects
  are visited, each once;
* a short **final-mark pause** drains the barrier buffer and the mark
  stack to completion, then per-region liveness is accounted with one
  Bitmap Count per region and dead ranges are swept into fillers
  (fully-dead regions recycle wholesale).

Every pause gets unique phase names (``barrier-<n>``,
``concurrent-mark-<n>``) so the replayers' per-phase-run residual
accounting stays exact when the same logical phase recurs across an
interleaved cycle.

The trace's primitive mix is Scan&Push (marking and barrier drains)
plus Bitmap Count (liveness) — no Copy (non-moving) and no Search (no
card scanning; SATB replaces the remembered-set rebuild).  See
EXPERIMENTS.md for how that compares to the paper's Table 1.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

import numpy as np

from repro.errors import ConfigError, OutOfMemoryError
from repro.gcalgo.g1 import Region, RegionType
from repro.gcalgo.stack import ObjectStack
from repro.gcalgo.trace import (FIXED_GC_INSTRUCTIONS, GCTrace,
                                RESIDUAL_COSTS, chunk_refs)
from repro.heap import fast_kernels
from repro.heap.heap import JavaHeap
from repro.heap.object_model import ObjectView
from repro.obs.tracer import get_tracer
from repro.units import CACHE_LINE, KB, WORD, align_up

#: default number of objects one :meth:`ConcurrentMarkGC.mark_step`
#: scans before yielding back to the mutator.
DEFAULT_MARK_STEP_BUDGET = 64


class ConcurrentMarkGC:
    """Region allocator plus the SATB concurrent-marking cycle."""

    def __init__(self, heap: JavaHeap, region_bytes: int = 64 * KB,
                 pacing_period: int = 0,
                 mark_step_budget: int = DEFAULT_MARK_STEP_BUDGET
                 ) -> None:
        if region_bytes <= 0 or region_bytes % WORD:
            raise ConfigError("region size must be a positive multiple "
                              "of 8")
        self.heap = heap
        self.region_bytes = region_bytes
        self.mark_step_budget = mark_step_budget
        #: with a positive period, every ``period``-th allocation while
        #: a cycle is live runs one mark step (Shenandoah-style
        #: allocation pacing); zero leaves stepping to the caller.
        self.pacing_period = pacing_period
        self._allocations_since_step = 0
        span = heap.layout.heap_end - heap.layout.heap_start
        count = span // region_bytes
        if count < 4:
            raise ConfigError("heap too small for concurrent-mark "
                              "regions")
        self.regions: List[Region] = [
            Region(index=i,
                   start=heap.layout.heap_start + i * region_bytes,
                   end=heap.layout.heap_start + (i + 1) * region_bytes)
            for i in range(count)
        ]
        self._allocation_region: Optional[Region] = None
        #: lead region index -> region count, for humongous runs
        self._humongous: Dict[int, int] = {}
        self.collections = 0
        self.traces: List[GCTrace] = []
        # -- cycle state -----------------------------------------------------
        self.in_cycle = False
        self.marked: Set[int] = set()
        self.allocated_during_cycle: Set[int] = set()
        self.satb_buffer: List[int] = []
        self.satb_logged = 0
        self.satb_drained = 0
        self._stack: ObjectStack[int] = ObjectStack()
        self._trace: Optional[GCTrace] = None
        self._pauses = 0
        self._fast = False
        self._pending_addrs: List[int] = []
        self._pending_sizes: List[int] = []
        # -- hooks -----------------------------------------------------------
        #: fired around every :meth:`collect` (explicit and the
        #: allocation-failure ones); the fuzz reachability oracle hangs
        #: its live-graph checks here.
        self.pre_collect_hooks: List[
            Callable[[JavaHeap, str], None]] = []
        self.post_collect_hooks: List[
            Callable[[JavaHeap, str, GCTrace], None]] = []
        #: fired at the initial-mark snapshot and after the final-mark
        #: drain, with ``(heap, collector)`` — the SATB oracle's
        #: attachment points.
        self.cycle_start_hooks: List[
            Callable[[JavaHeap, "ConcurrentMarkGC"], None]] = []
        self.cycle_end_hooks: List[
            Callable[[JavaHeap, "ConcurrentMarkGC"], None]] = []
        heap.ref_write_hooks.append(self._barrier)

    # -- the SATB write barrier ----------------------------------------------

    def _barrier(self, slot_addr: int, old: int, new: int) -> None:
        """Log the overwritten reference while marking is live.

        Unconditional logging of non-null old values is the SATB
        pre-write barrier: any snapshot edge the mutator destroys ends
        up in the buffer, so the marker can still reach everything that
        was live at the snapshot.
        """
        if self.in_cycle and old:
            self.satb_buffer.append(old)
            self.satb_logged += 1
            self._trace.residual("barrier-log",
                                 RESIDUAL_COSTS["barrier_log"])

    # -- region bookkeeping ---------------------------------------------------

    def region_of(self, addr: int) -> Region:
        index = (addr - self.heap.layout.heap_start) // self.region_bytes
        if not 0 <= index < len(self.regions):
            raise ConfigError(f"address {addr:#x} outside the region "
                              "space")
        return self.regions[index]

    def _take_free_region(self, region_type: RegionType) -> Region:
        for region in self.regions:
            if region.region_type is RegionType.FREE:
                region.region_type = region_type
                region.top = region.start
                return region
        raise OutOfMemoryError("no free concurrent-mark regions")

    @property
    def free_region_count(self) -> int:
        return sum(1 for r in self.regions
                   if r.region_type is RegionType.FREE)

    # -- allocation -------------------------------------------------------------

    def allocate(self, klass_name: str,
                 length: Optional[int] = None) -> ObjectView:
        """Bump-allocate; collect (finishing any live cycle) on failure.

        While a cycle is live, new objects are marked and queued for
        scanning (allocate-grey), and the optional pacer advances
        marking every :attr:`pacing_period` allocations.
        """
        if self.pacing_period and self.in_cycle:
            self._allocations_since_step += 1
            if self._allocations_since_step >= self.pacing_period:
                self._allocations_since_step = 0
                self.mark_step()
        klass = self.heap.klasses.by_name(klass_name)
        size = align_up(klass.instance_bytes(length), WORD)
        if size > self.region_bytes // 2:
            return self._allocate_humongous(klass_name, size, length)
        for attempt in range(2):
            region = self._allocation_region
            if region is None or not region.can_allocate(size):
                try:
                    region = self._take_free_region(RegionType.EDEN)
                except OutOfMemoryError:
                    if attempt:
                        raise
                    self.collect()
                    continue
                self._allocation_region = region
            addr = region.allocate(size)
            view = self.heap.format_object(addr, klass, length)
            self._note_allocation(addr)
            return view
        raise OutOfMemoryError(
            "concurrent-mark allocation failed after collection")

    def _allocate_humongous(self, klass_name: str, size: int,
                            length: Optional[int]) -> ObjectView:
        needed = -(-size // self.region_bytes)
        for attempt in range(2):
            for first in range(len(self.regions) - needed + 1):
                window = self.regions[first:first + needed]
                if all(r.region_type is RegionType.FREE
                       for r in window):
                    for region in window:
                        region.region_type = RegionType.HUMONGOUS
                        region.top = region.end
                    window[0].top = window[0].start + min(
                        size, window[0].capacity)
                    self._humongous[first] = needed
                    klass = self.heap.klasses.by_name(klass_name)
                    view = self.heap.format_object(window[0].start,
                                                   klass, length)
                    self._note_allocation(view.addr)
                    return view
            if attempt:
                break
            self.collect()
        raise OutOfMemoryError("no contiguous regions for a humongous "
                               "allocation")

    def _note_allocation(self, addr: int) -> None:
        """Allocate-grey: in-cycle allocations are marked immediately
        and queued so exactly the marked set gets scanned."""
        if self.in_cycle and addr not in self.marked:
            self.marked.add(addr)
            self.allocated_during_cycle.add(addr)
            self._stack.push(addr)

    # -- the cycle ---------------------------------------------------------------

    def start_cycle(self) -> None:
        """The initial-mark pause: snapshot the roots, arm the barrier.

        Idempotent while a cycle is live.  The snapshot is the root set
        itself: every non-null root is pushed, so overwritten *root*
        slots never need barrier coverage — their old values are
        already grey.
        """
        if self.in_cycle:
            return
        self._fast = fast_kernels.fast_enabled(self.heap)
        trace = GCTrace("concurrent",
                        heap_bytes=self.heap.config.heap_bytes)
        trace.residual("setup", FIXED_GC_INSTRUCTIONS["concurrent"],
                       96 * 1024)
        self._trace = trace
        self.marked = set()
        self.allocated_during_cycle = set()
        self.satb_buffer = []
        self.satb_logged = 0
        self.satb_drained = 0
        self._stack = ObjectStack()
        self._pauses = 0
        self._pending_addrs = []
        self._pending_sizes = []
        self.heap.bitmaps.clear()
        self.in_cycle = True
        for hook in self.cycle_start_hooks:
            hook(self.heap, self)
        heap = self.heap
        n_roots = len(heap.roots)
        if n_roots:
            trace.residual("initial-mark",
                           RESIDUAL_COSTS["root"] * n_roots,
                           CACHE_LINE * n_roots)
        for addr in heap.roots:
            if addr and addr not in self.marked:
                self.marked.add(addr)
                self._stack.push(addr)

    def mark_step(self, budget: Optional[int] = None) -> int:
        """One concurrent-mark pause: drain the SATB buffer, then scan
        up to ``budget`` objects.  Starts a cycle if none is live.
        Returns the number of objects scanned."""
        if not self.in_cycle:
            self.start_cycle()
        budget = self.mark_step_budget if budget is None else budget
        pause = self._pauses
        self._pauses += 1
        self._drain_satb(f"barrier-{pause}")
        return self._scan(f"concurrent-mark-{pause}", budget)

    def collect(self) -> GCTrace:
        """Finish the cycle: final-mark pause, liveness, sweep.

        Starts (and immediately completes) a cycle when none is live,
        which is the degenerate stop-the-world form the allocation
        slow path relies on.
        """
        for hook in self.pre_collect_hooks:
            hook(self.heap, "concurrent")
        obs = get_tracer()
        if not self.in_cycle:
            self.start_cycle()
        trace = self._trace
        fast_kernels.record_call(
            "concurrent", kernel="fast" if self._fast else "scalar")
        with obs.span("collect", cat="collector", gc="concurrent"):
            with obs.span("final-mark", cat="collector",
                          gc="concurrent"):
                # Alternate drains and scans until both the barrier
                # buffer and the mark stack are empty (a scan can log
                # nothing, but the barrier may have queued work since
                # the last pause).
                while self.satb_buffer or self._stack:
                    self._drain_satb("final-mark")
                    self._scan("final-mark", None)
            if self._fast and self._pending_addrs:
                fast_kernels.mark_objects_bulk(
                    self.heap.bitmaps,
                    np.asarray(self._pending_addrs, dtype=np.int64),
                    np.asarray(self._pending_sizes, dtype=np.int64))
            self.in_cycle = False
            for hook in self.cycle_end_hooks:
                hook(self.heap, self)
            with obs.span("liveness", cat="collector", gc="concurrent"):
                self._account_liveness(trace)
            with obs.span("sweep", cat="collector", gc="concurrent"):
                self._sweep(trace)
        self.collections += 1
        self.traces.append(trace)
        self._trace = None
        self._allocation_region = None
        for hook in self.post_collect_hooks:
            hook(self.heap, "concurrent", trace)
        return trace

    # -- marking ------------------------------------------------------------------

    def _drain_satb(self, phase: str) -> int:
        """Process the logged overwritten references of one pause."""
        entries = self.satb_buffer
        if not entries:
            return 0
        self.satb_buffer = []
        self.satb_drained += len(entries)
        trace = self._trace
        trace.residual(phase, (RESIDUAL_COSTS["pop"]
                               + RESIDUAL_COSTS["check_mark"])
                       * len(entries))
        pushes = 0
        for addr in entries:
            if addr not in self.marked:
                self.marked.add(addr)
                self._stack.push(addr)
                pushes += 1
        for refs, chunk_pushes in chunk_refs(len(entries), pushes):
            trace.scan_push(phase, entries[0], refs, chunk_pushes)
        return len(entries)

    def _scan(self, phase: str, budget: Optional[int]) -> int:
        """Pop and scan up to ``budget`` objects (all when ``None``)."""
        if self._fast:
            return self._scan_fast(phase, budget)
        heap = self.heap
        trace = self._trace
        stack = self._stack
        marked = self.marked
        scanned = 0
        while stack and (budget is None or scanned < budget):
            addr = stack.pop()
            trace.residual(phase, RESIDUAL_COSTS["pop"])
            view = heap.object_at(addr)
            trace.objects_visited += 1
            scanned += 1
            heap.bitmaps.mark_object(addr, view.size_bytes)
            slots = view.reference_slots()
            pushes = 0
            for slot in slots:
                target = heap.load_ref(slot)
                trace.residual(phase, RESIDUAL_COSTS["check_mark"])
                if target and target not in marked:
                    marked.add(target)
                    stack.push(target)
                    pushes += 1
            if slots:
                for refs, chunk_pushes in chunk_refs(len(slots),
                                                     pushes):
                    trace.scan_push(phase, addr, refs, chunk_pushes)
            else:
                trace.residual(phase, RESIDUAL_COSTS["scan_trivial"])
        return scanned

    def _scan_fast(self, phase: str, budget: Optional[int]) -> int:
        """The scalar traversal with raw-word decode; bitmap marks are
        deferred into one bulk write at final-mark."""
        ops = fast_kernels.HeapOps(self.heap)
        trace = self._trace
        stack = self._stack
        marked = self.marked
        pop_cost = RESIDUAL_COSTS["pop"]
        check_cost = RESIDUAL_COSTS["check_mark"]
        trivial_cost = RESIDUAL_COSTS["scan_trivial"]
        scanned = 0
        while stack and (budget is None or scanned < budget):
            addr = stack.pop()
            trace.residual(phase, pop_cost)
            kid, length, size = ops.decode(addr)
            trace.objects_visited += 1
            scanned += 1
            self._pending_addrs.append(addr)
            self._pending_sizes.append(size)
            slots = ops.ref_slots(addr, kid, length)
            if slots:
                trace.residual(phase, check_cost * len(slots))
                pushes = 0
                for slot in slots:
                    target = ops.read_word(slot)
                    if target and target not in marked:
                        marked.add(target)
                        stack.push(target)
                        pushes += 1
                for refs, chunk_pushes in chunk_refs(len(slots),
                                                     pushes):
                    trace.scan_push(phase, addr, refs, chunk_pushes)
            else:
                trace.residual(phase, trivial_cost)
        return scanned

    # -- liveness and sweep ---------------------------------------------------------

    def _account_liveness(self, trace: GCTrace) -> None:
        """Per-region live bytes, one Bitmap Count per region — the
        same "state of the entire heap" use of the primitive as G1."""
        bits = self.region_bytes // WORD
        index = (fast_kernels.CoverageIndex(self.heap.bitmaps)
                 if self._fast else None)
        for region in self.regions:
            if region.region_type is RegionType.FREE:
                region.live_bytes = 0
                continue
            if index is not None:
                words = index.live_words(region.start, region.end)
            else:
                words = self.heap.bitmaps.live_words_in_range_fast(
                    region.start, region.end)
            trace.bitmap_count("liveness", region.start, bits=bits)
            region.live_bytes = words * WORD

    def _sweep(self, trace: GCTrace) -> None:
        """Reclaim unmarked objects without moving anything.

        Fully-dead regions recycle wholesale; partially-dead regions
        get their dead ranges coalesced into fillers (a dead tail
        lowers the bump pointer instead, so the space really returns).
        Humongous runs free when their lead object is dead.
        """
        freed = 0
        position = 0
        while position < len(self.regions):
            region = self.regions[position]
            run = self._humongous.get(position)
            if run is not None:
                window = self.regions[position:position + run]
                trace.residual("sweep",
                               RESIDUAL_COSTS["summary_region"] * run)
                if region.start not in self.marked:
                    freed += sum(r.used for r in window)
                    for member in window:
                        member.reset()
                    del self._humongous[position]
                position += run
                continue
            position += 1
            if region.region_type is RegionType.FREE \
                    or region.used == 0:
                continue
            if region.live_bytes == 0:
                trace.residual("sweep",
                               RESIDUAL_COSTS["summary_region"])
                freed += region.used
                if region is self._allocation_region:
                    self._allocation_region = None
                region.reset()
                continue
            freed += self._sweep_region(trace, region)
        trace.bytes_freed = freed

    def _sweep_region(self, trace: GCTrace, region: Region) -> int:
        """Coalesce a partially-live region's dead ranges."""
        heap = self.heap
        if self._fast:
            parsed = fast_kernels.parse_space(heap, region.start,
                                              region.top)
            n_objects = len(parsed)
            if not n_objects:
                return 0
            trace.residual("sweep",
                           RESIDUAL_COSTS["sweep_step"] * n_objects,
                           CACHE_LINE * n_objects)
            filler = ((parsed.kids == heap.filler_klass.klass_id)
                      | (parsed.kids
                         == heap.filler_object_klass.klass_id))
            marked_addrs = np.fromiter(
                self.marked, dtype=np.int64,
                count=len(self.marked)) if self.marked \
                else np.empty(0, dtype=np.int64)
            dead = filler | ~np.isin(parsed.addrs, marked_addrs)
            spans = list(zip(parsed.addrs.tolist(),
                             parsed.end_addrs.tolist(),
                             dead.tolist()))
        else:
            spans = []
            cursor = region.start
            while cursor < region.top:
                view = heap.object_at(cursor)
                trace.residual("sweep", RESIDUAL_COSTS["sweep_step"],
                               CACHE_LINE)
                end = view.end_addr
                is_dead = (heap.is_filler(view)
                           or view.addr not in self.marked)
                spans.append((view.addr, end, is_dead))
                cursor = end
        freed = 0
        dead_start = None
        for addr, end, is_dead in spans:
            if is_dead:
                if dead_start is None:
                    dead_start = addr
            elif dead_start is not None:
                heap.fill_dead_range(dead_start, addr)
                freed += addr - dead_start
                dead_start = None
        if dead_start is not None:
            # A dead tail returns to the bump pointer instead of
            # becoming a filler — the region can allocate again.
            freed += region.top - dead_start
            region.top = dead_start
        return freed

    # -- driver integration -----------------------------------------------------

    def install_step_hook(self, driver, period: int = 16,
                          budget: Optional[int] = None) -> None:
        """Ride a :class:`~repro.workloads.mutator.MutatorDriver`'s
        allocation safepoints: every ``period``-th step advances a live
        cycle by one bounded mark increment.  Cycles are only advanced,
        never started — starting one is a policy decision the caller
        (or the allocation slow path) makes."""
        state = {"countdown": period}

        def step(heap: JavaHeap) -> None:
            if not self.in_cycle:
                state["countdown"] = period
                return
            state["countdown"] -= 1
            if state["countdown"] <= 0:
                state["countdown"] = period
                self.mark_step(budget)

        driver.step_hooks.append(step)

    # -- reporting ----------------------------------------------------------------

    def occupancy_summary(self) -> Dict[str, int]:
        summary: Dict[str, int] = {t.value: 0 for t in RegionType}
        for region in self.regions:
            summary[region.region_type.value] += 1
        return summary
