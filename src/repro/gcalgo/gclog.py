"""``-verbose:gc``-style log lines from traces and timing results.

Formats a run's collections the way HotSpot prints them, with the
simulated pause times of whichever platform replayed the trace::

    [GC (minor) 4.1M->0.6M, 8 promoted, 0.000412 secs]
    [Full GC (major) 9.8M->7.2M, 0.003181 secs]

Useful for eyeballing a workload's GC rhythm and for teaching demos.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.gcalgo.trace import GCTrace, Primitive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.platform.timing import GCTimingResult

_LABELS = {
    "minor": "GC (minor)",
    "major": "Full GC (major)",
    "sweep": "Old GC (mark-sweep)",
    "g1": "GC pause (G1 mixed)",
    "concurrent": "GC cycle (concurrent mark)",
}


def _mb(value: int) -> str:
    return f"{value / (1 << 20):.1f}M"


def format_gc_line(trace: GCTrace,
                   seconds: Optional[float] = None) -> str:
    """One HotSpot-style log line for a collection."""
    # Unknown kinds (a collector added before its label) still log.
    label = _LABELS.get(trace.kind, f"GC ({trace.kind})")
    survived = trace.bytes_copied
    before = survived + trace.bytes_freed
    parts = [f"[{label} {_mb(before)}->{_mb(survived)}"]
    if trace.objects_promoted:
        parts.append(f", {trace.objects_promoted} promoted")
    if trace.kind == "major":
        parts.append(f", {trace.count(Primitive.BITMAP_COUNT)} "
                     "bitmap queries")
    if trace.kind == "concurrent":
        pauses = len({event.phase for event in trace.events
                      if event.phase.startswith("concurrent-mark")})
        parts.append(f", {pauses} mark pauses")
    if seconds is not None:
        parts.append(f", {seconds:.6f} secs")
    parts.append("]")
    return "".join(parts)


def format_gc_log(traces: Sequence[GCTrace],
                  results: "Optional[Sequence[GCTimingResult]]" = None
                  ) -> str:
    """The whole run as a log, optionally with replayed pause times."""
    lines: List[str] = []
    for index, trace in enumerate(traces):
        seconds = None
        if results is not None and index < len(results):
            seconds = results[index].wall_seconds
        lines.append(format_gc_line(trace, seconds))
    return "\n".join(lines)


def replayed_gc_log(traces: Sequence[GCTrace], platform,
                    threads: Optional[int] = None) -> str:
    """Replay ``traces`` on ``platform`` and log each pause."""
    from repro.platform.replay import TraceReplayer

    replayer = TraceReplayer(platform, threads=threads)
    results = [replayer.replay(trace) for trace in traces]
    return format_gc_log(traces, results)
