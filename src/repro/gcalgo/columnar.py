"""Columnar (compiled) GC traces: event streams as numpy arrays.

The per-event :class:`~repro.gcalgo.trace.TraceEvent` objects are the
right recording interface for the collectors, but replaying hundreds of
thousands of them through Python attribute dispatch makes the *timing
layer* the bottleneck of every experiment.  A :class:`CompiledTrace`
holds the same information column-wise in one structured numpy array,
so the vectorized fast path (:mod:`repro.platform.fast_replay`) can
cost a whole phase in a handful of array operations, and the binary
codec (:mod:`repro.gcalgo.trace_io`) can write it to disk without
touching individual events.

The compilation is lossless: ``compile_trace(t).to_trace()`` reproduces
every event field, residual and stats counter of ``t`` exactly.  Events
keep their recording order; phase structure is recovered as *runs* of
consecutive events with the same phase id, matching the event-by-event
replayer's segmentation.

:data:`TRACE_SCHEMA_VERSION` names this layout.  Bump it whenever the
event dtype, the phase/residual encoding, or the collectors' recording
semantics change — the binary codec and the content-addressed trace
cache both key on it, so stale artifacts are regenerated instead of
silently misreplayed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.gcalgo.trace import (GCTrace, Primitive, PRIMITIVE_TYPE_CODES,
                                ResidualWork, TraceEvent)

#: Version of the columnar layout *and* of what the collectors record.
#: Cache entries and binary trace files carrying a different version are
#: rejected loudly and regenerated.
TRACE_SCHEMA_VERSION = 1

#: Primitive decoding (the packet type codes double as column codes).
CODE_TO_PRIMITIVE: Dict[int, Primitive] = {
    code: primitive for primitive, code in PRIMITIVE_TYPE_CODES.items()
}

#: ``bits_cached`` is Optional in the object form; the column encodes
#: "no cache hit" as -1 (real values are bit counts, never negative).
NO_BITS_CACHED = -1

EVENT_DTYPE = np.dtype([
    ("prim", np.uint8),        # PRIMITIVE_TYPE_CODES value
    ("phase", np.uint16),      # index into CompiledTrace.phase_names
    ("src", np.int64),
    ("dst", np.int64),
    ("size_bytes", np.int64),
    ("refs", np.int64),
    ("pushes", np.int64),
    ("bits", np.int64),
    ("bits_cached", np.int64),  # NO_BITS_CACHED encodes None
    ("found", np.uint8),
])

#: Run-stats counters shared between GCTrace and CompiledTrace.
STAT_FIELDS = ("objects_visited", "objects_copied", "bytes_copied",
               "objects_promoted", "bytes_freed")


class CompiledTrace:
    """One GC collection in columnar form.

    Attributes mirror :class:`~repro.gcalgo.trace.GCTrace` where the
    names overlap (``kind``, ``heap_bytes``, ``residuals``, the stats
    counters); ``events`` is a structured array of :data:`EVENT_DTYPE`
    and ``phase_names`` interns the phase strings the ``phase`` column
    indexes into.
    """

    def __init__(self, kind: str, heap_bytes: int,
                 events: np.ndarray,
                 phase_names: Sequence[str],
                 residuals: Optional[Dict[str, ResidualWork]] = None,
                 **stats: int) -> None:
        if kind not in ("minor", "major", "sweep", "g1", "concurrent"):
            raise ValueError(f"unknown GC kind {kind!r}")
        if events.dtype != EVENT_DTYPE:
            raise ConfigError(
                f"compiled trace events have dtype {events.dtype}, "
                f"expected the schema-v{TRACE_SCHEMA_VERSION} layout")
        self.kind = kind
        self.heap_bytes = heap_bytes
        self.events = events
        self.phase_names: Tuple[str, ...] = tuple(phase_names)
        #: insertion-ordered, exactly like GCTrace.residuals (the
        #: replayers iterate it for residual-only phases).
        self.residuals: Dict[str, ResidualWork] = dict(residuals or {})
        for name in STAT_FIELDS:
            setattr(self, name, int(stats.pop(name, 0)))
        if stats:
            raise ConfigError(f"unknown trace stats {sorted(stats)}")
        self._derived: Optional[Dict[str, np.ndarray]] = None
        self._phase_runs: Optional[List[Tuple[str, int, int]]] = None

    def __len__(self) -> int:
        return len(self.events)

    # -- phase structure ---------------------------------------------------

    def phase_runs(self) -> List[Tuple[str, int, int]]:
        """Maximal runs of consecutive same-phase events.

        Returns ``(phase_name, start, stop)`` triples covering
        ``events[start:stop]``, in order — the same segmentation the
        event-by-event replayer derives from the object stream.  Pure
        in the events, so the segmentation is computed once and
        memoized (callers must not mutate the returned list).
        """
        runs = self._phase_runs
        if runs is None:
            ids = self.events["phase"]
            if len(ids) == 0:
                runs = []
            else:
                cuts = (np.flatnonzero(ids[1:] != ids[:-1]) + 1).tolist()
                bounds = [0] + cuts + [len(ids)]
                runs = [(self.phase_names[int(ids[lo])], lo, hi)
                        for lo, hi in zip(bounds[:-1], bounds[1:])]
            self._phase_runs = runs
        return runs

    def derived_columns(self) -> Dict[str, np.ndarray]:
        """Config-independent per-event columns the replay kernels share.

        Everything here is a pure function of the recorded events, so it
        is computed once per compiled trace and memoized (the trace
        cache hands the same ``CompiledTrace`` to every platform's
        replayer).  Platform-dependent quantities (service times, cache
        models, energy) stay in the kernels.
        """
        derived = self._derived
        if derived is None:
            ev = self.events
            prim = ev["prim"]
            size = ev["size_bytes"]
            found = ev["found"] != 0
            cached = ev["bits_cached"]
            derived = {
                "is_copy": prim == PRIMITIVE_TYPE_CODES[Primitive.COPY],
                "is_search": prim == PRIMITIVE_TYPE_CODES[Primitive.SEARCH],
                "is_scan": prim == PRIMITIVE_TYPE_CODES[Primitive.SCAN_PUSH],
                "is_bitmap":
                    prim == PRIMITIVE_TYPE_CODES[Primitive.BITMAP_COUNT],
                "found": found,
                # Bytes a search examines before clamping: half the range
                # on a hit, the full range on a miss (host and device
                # models clamp to different minima).
                "search_examined": np.where(found, size // 2, size),
                # Bitmap bits with the software-cache shortcut applied
                # (NO_BITS_CACHED means the count really ran).
                "eff_bits": np.where(cached == NO_BITS_CACHED,
                                     ev["bits"], cached),
            }
            self._derived = derived
        return derived

    # -- conversion --------------------------------------------------------

    def to_trace(self) -> GCTrace:
        """Decompile back to the per-event object form (lossless)."""
        trace = GCTrace(self.kind, heap_bytes=self.heap_bytes)
        ev = self.events
        columns = {name: ev[name].tolist()
                   for name in ("prim", "phase", "src", "dst",
                                "size_bytes", "refs", "pushes", "bits",
                                "bits_cached", "found")}
        names = self.phase_names
        for i in range(len(ev)):
            cached = columns["bits_cached"][i]
            trace.events.append(TraceEvent(
                primitive=CODE_TO_PRIMITIVE[columns["prim"][i]],
                phase=names[columns["phase"][i]],
                src=columns["src"][i],
                dst=columns["dst"][i],
                size_bytes=columns["size_bytes"][i],
                refs=columns["refs"][i],
                pushes=columns["pushes"][i],
                bits=columns["bits"][i],
                bits_cached=None if cached == NO_BITS_CACHED else cached,
                found=bool(columns["found"][i])))
        for phase, work in self.residuals.items():
            trace.residuals[phase] = ResidualWork(
                instructions=work.instructions,
                bytes_accessed=work.bytes_accessed)
        for name in STAT_FIELDS:
            setattr(trace, name, getattr(self, name))
        return trace

    def summary(self) -> Dict[str, float]:
        """Same compact description GCTrace.summary produces."""
        ev = self.events
        prim = ev["prim"]
        copies = prim == PRIMITIVE_TYPE_CODES[Primitive.COPY]
        searches = prim == PRIMITIVE_TYPE_CODES[Primitive.SEARCH]
        scans = prim == PRIMITIVE_TYPE_CODES[Primitive.SCAN_PUSH]
        bitmaps = prim == PRIMITIVE_TYPE_CODES[Primitive.BITMAP_COUNT]
        return {
            "kind": self.kind,
            "events": len(ev),
            "copy_events": int(copies.sum()),
            "copy_bytes": int(ev["size_bytes"][copies].sum()),
            "search_events": int(searches.sum()),
            "scan_push_events": int(scans.sum()),
            "scan_refs": int(ev["refs"][scans].sum()),
            "bitmap_events": int(bitmaps.sum()),
            "bitmap_bits": int(ev["bits"][bitmaps].sum()),
            "residual_instructions": sum(
                work.instructions for work in self.residuals.values()),
            "objects_copied": self.objects_copied,
            "bytes_copied": self.bytes_copied,
            "objects_promoted": self.objects_promoted,
        }


def compile_trace(trace: GCTrace) -> CompiledTrace:
    """Compile one :class:`GCTrace` to its columnar form."""
    names: List[str] = []
    ids: Dict[str, int] = {}
    events = trace.events
    array = np.empty(len(events), dtype=EVENT_DTYPE)
    phase_column = np.empty(len(events), dtype=np.uint16)
    for i, event in enumerate(events):
        pid = ids.get(event.phase)
        if pid is None:
            pid = ids[event.phase] = len(names)
            names.append(event.phase)
            if pid > np.iinfo(np.uint16).max:
                raise ConfigError("trace has too many distinct phases "
                                  "for the columnar schema")
        phase_column[i] = pid
    array["prim"] = [PRIMITIVE_TYPE_CODES[e.primitive] for e in events]
    array["phase"] = phase_column
    for field in ("src", "dst", "size_bytes", "refs", "pushes", "bits"):
        array[field] = [getattr(e, field) for e in events]
    array["bits_cached"] = [NO_BITS_CACHED if e.bits_cached is None
                            else e.bits_cached for e in events]
    array["found"] = [1 if e.found else 0 for e in events]
    residuals = {
        phase: ResidualWork(instructions=work.instructions,
                            bytes_accessed=work.bytes_accessed)
        for phase, work in trace.residuals.items()
    }
    stats = {name: getattr(trace, name) for name in STAT_FIELDS}
    return CompiledTrace(trace.kind, trace.heap_bytes, array, names,
                         residuals, **stats)


def compile_traces(traces: Sequence[GCTrace]) -> List[CompiledTrace]:
    """Compile a run's trace list, passing through already-compiled ones."""
    return [trace if isinstance(trace, CompiledTrace)
            else compile_trace(trace) for trace in traces]
