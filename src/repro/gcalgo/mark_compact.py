"""MajorGC: mark-compact collection (Fig. 3b).

Phases, following HotSpot's PSParallelCompact as the paper describes:

* **Marking** — pop objects from the stack; unmarked ones get their
  header mark bit set, their begin/end bitmap bits recorded (old
  generation), and their references *Scan&Push*-ed (``follow_contents``
  in Fig. 11).
* **Summary** — per-region live-word totals, accumulated during marking
  (the paper measures this phase below 0.03% of MajorGC and excludes it
  from offloading; we charge it as residual work).
* **Adjust pointers** — every reference to an old-generation object is
  rewritten to the referee's post-compaction address, computed as
  ``region destination + live_words_in_range(region start, referee)``.
  Each such computation is a *Bitmap Count* invocation — this is where
  the primitive's call volume comes from.
* **Compact** — live old objects slide left to their destinations
  (*Copy*), leaving the old generation densely packed.

Like PSParallelCompact, the collector keeps a **dense prefix**: the
bottom run of old-generation regions whose live density is already
high never moves.  Objects inside it keep their addresses (references
to them need no Bitmap Count), and the few dead gaps are overwritten
with filler objects (HotSpot's deadwood), keeping the space parseable.
This is what keeps Bitmap Count and Copy from dominating MajorGC on
pointer-dense heaps — exactly the balance Fig. 4(b) shows.

The young generation is marked and pointer-adjusted but not moved (the
next scavenge evacuates it), which matches the division of labour
between ParallelScavenge's two collectors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gcalgo.stack import ObjectStack
from repro.gcalgo.trace import (FIXED_GC_INSTRUCTIONS, GCTrace,
                               RESIDUAL_COSTS, chunk_refs)
from repro.heap import fast_kernels
from repro.heap.heap import JavaHeap
from repro.heap.object_model import ObjectView
from repro.obs.tracer import get_tracer
from repro.units import CACHE_LINE, WORD

#: Fast-path live-object record: ``(addr, klass_id, length, size)``.
LiveRec = Tuple[int, int, int, int]

#: The header mark bit (bit 6 of the mark word), for the bulk
#: set/clear kernels; MarkWord.marked()/unmarked() toggle the same bit.
_HEADER_MARK_BIT = 1 << 6

#: Compaction region size: 512 heap words, HotSpot's RegionSize.
REGION_WORDS = 512
REGION_BYTES = REGION_WORDS * WORD

#: A region at least this live joins the dense prefix (HotSpot chooses
#: the prefix with a deadwood cost model; a density cut-off captures
#: its effect).
DENSE_PREFIX_DENSITY = 0.85


class MajorGC:
    """One full mark-compact collection over the heap."""

    def __init__(self, heap: JavaHeap) -> None:
        self.heap = heap
        #: (region_start, last queried addr) — the software query cache.
        self._last_query: Tuple[int, int] = None

    def collect(self) -> GCTrace:
        heap = self.heap
        obs = get_tracer()
        fast = fast_kernels.fast_enabled(heap)
        fast_kernels.record_call("major",
                                 kernel="fast" if fast else "scalar")
        trace = GCTrace("major", heap_bytes=heap.config.heap_bytes)
        trace.residual("setup", FIXED_GC_INSTRUCTIONS["major"],
                       96 * 1024)
        heap.bitmaps.clear()
        old_used_before = heap.layout.old.used

        with obs.span("collect", cat="collector", gc="major"):
            if fast:
                self._collect_fast(trace, obs)
            else:
                self._collect_scalar(trace, obs)

        trace.bytes_freed = old_used_before - heap.layout.old.used
        return trace

    def _collect_scalar(self, trace: GCTrace, obs) -> None:
        with obs.span("mark", cat="collector", gc="major"):
            live_old, live_young = self._mark(trace)
        with obs.span("summary", cat="collector", gc="major"):
            region_live = self._region_live(trace, live_old)
            prefix_end = self._effective_prefix_end(
                live_old, self._dense_prefix_end(region_live))
            region_dest = self._summarize(trace, region_live,
                                          prefix_end)
        with obs.span("adjust", cat="collector", gc="major"):
            self._adjust_pointers(trace, live_old, live_young,
                                  region_dest, prefix_end)
        with obs.span("compact", cat="collector", gc="major"):
            self._compact(trace, live_old, region_dest, prefix_end)
            self._unmark_young(live_young)
        with obs.span("card-rebuild", cat="collector", gc="major"):
            self._rebuild_cards(trace)

    def _collect_fast(self, trace: GCTrace, obs) -> None:
        """The vectorized phase pipeline (bit-exact with the scalar
        one; the differential fuzzer enforces it)."""
        heap = self.heap
        with obs.span("mark", cat="collector", gc="major"):
            live_old, live_young = self._mark_fast(trace)
        with obs.span("summary", cat="collector", gc="major"):
            # Freeze the bitmaps into the popcount-prefix-sum index —
            # every live_words_in_range below becomes O(1).
            index = fast_kernels.CoverageIndex(heap.bitmaps)
            region_live = self._region_live_fast(trace, live_old)
            prefix_end = self._effective_prefix_end_fast(
                live_old, self._dense_prefix_end(region_live))
            region_dest = self._summarize_fast(trace, region_live,
                                               prefix_end, index)
        with obs.span("adjust", cat="collector", gc="major"):
            self._adjust_pointers_fast(trace, live_old, live_young,
                                       region_dest, prefix_end, index)
        with obs.span("compact", cat="collector", gc="major"):
            self._compact_fast(trace, live_old, region_dest,
                               prefix_end, index)
            self._unmark_young_fast(live_young)
        with obs.span("card-rebuild", cat="collector", gc="major"):
            self._rebuild_cards_fast(trace)

    # -- marking ------------------------------------------------------------

    def _mark(self, trace: GCTrace
              ) -> Tuple[List[ObjectView], List[ObjectView]]:
        heap = self.heap
        layout = heap.layout
        stack: ObjectStack[int] = ObjectStack()
        marked = set()
        live_old: List[ObjectView] = []
        live_young: List[ObjectView] = []

        for addr in heap.roots:
            trace.residual("mark", RESIDUAL_COSTS["root"], CACHE_LINE)
            if addr and addr not in marked:
                marked.add(addr)
                stack.push(addr)

        while stack:
            addr = stack.pop()
            trace.residual("mark", RESIDUAL_COSTS["pop"])
            view = heap.object_at(addr)
            trace.objects_visited += 1
            heap.set_mark_word(addr, heap.mark_word(addr).marked())
            if layout.in_old(addr):
                heap.bitmaps.mark_object(addr, view.size_bytes)
                live_old.append(view)
            else:
                live_young.append(view)
            slots = view.reference_slots()
            pushes = 0
            for slot in slots:
                target = heap.load_ref(slot)
                trace.residual("mark", RESIDUAL_COSTS["check_mark"])
                if target and target not in marked:
                    marked.add(target)  # mark_obj: atomic RMW in HotSpot
                    stack.push(target)
                    pushes += 1
            if slots:
                for refs, chunk_pushes in chunk_refs(len(slots), pushes):
                    trace.scan_push("mark", addr, refs, chunk_pushes)
            else:
                trace.residual("mark", RESIDUAL_COSTS["scan_trivial"])

        live_old.sort(key=lambda v: v.addr)
        return live_old, live_young

    # -- summary ---------------------------------------------------------------

    def _region_live(self, trace: GCTrace,
                     live_old: List[ObjectView]) -> List[int]:
        """Live words per old-generation region (accumulated during
        marking in HotSpot; charged as residual summary work)."""
        heap = self.heap
        old = heap.layout.old
        n_regions = -(-old.capacity // REGION_BYTES)
        region_live = [0] * n_regions
        for view in live_old:
            start = view.addr
            remaining = view.size_bytes
            while remaining > 0:
                region = (start - old.start) // REGION_BYTES
                region_end = old.start + (region + 1) * REGION_BYTES
                span = min(remaining, region_end - start)
                region_live[region] += span // WORD
                start += span
                remaining -= span
            trace.residual("summary", RESIDUAL_COSTS["summary_region"])
        return region_live

    def _dense_prefix_end(self, region_live: List[int]) -> int:
        """Address where compaction starts moving objects.

        Regions at the bottom of the old generation whose live density
        is at least :data:`DENSE_PREFIX_DENSITY` stay in place.
        """
        old = self.heap.layout.old
        prefix_regions = 0
        for live_words in region_live:
            region_start = old.start + prefix_regions * REGION_BYTES
            if region_start >= old.top:
                break
            # The last (partially used) region is judged against its
            # used portion, not the full region size.
            used_words = min(REGION_WORDS,
                             (old.top - region_start) // WORD)
            if live_words < used_words * DENSE_PREFIX_DENSITY:
                break
            prefix_regions += 1
        return old.start + prefix_regions * REGION_BYTES

    def _effective_prefix_end(self, live_old: List[ObjectView],
                              region_prefix_end: int) -> int:
        """Snap the region-granular prefix to an object boundary.

        The prefix ends exactly at the end of its last live object: a
        live object spanning the region boundary stays in place (and
        extends the prefix), while dead space at the prefix tail is
        handed to the compacted area, where moved objects overwrite it.
        """
        prefix_end = self.heap.layout.old.start
        for view in live_old:
            if view.addr >= region_prefix_end:
                break
            prefix_end = max(prefix_end, view.end_addr)
        return prefix_end

    def _summarize(self, trace: GCTrace, region_live: List[int],
                   prefix_end: int) -> Dict[int, int]:
        """Destination word offsets (from old start) per moved region.

        The first moved object lands at ``prefix_end``.  The region
        containing ``prefix_end`` may hold live words *before* the
        boundary (prefix objects); its destination subtracts them so
        ``dest + live_words_in_range(region start, addr)`` stays exact.
        """
        heap = self.heap
        old = heap.layout.old
        first_moved = (prefix_end - old.start) // REGION_BYTES
        dest: Dict[int, int] = {}
        prefix_words = (prefix_end - old.start) // WORD
        cumulative = prefix_words
        for region in range(len(region_live)):
            region_start = old.start + region * REGION_BYTES
            if region < first_moved:
                dest[region] = region * REGION_WORDS
                continue
            if region == first_moved and prefix_end > region_start:
                pre = heap.bitmaps.live_words_in_range_fast(
                    region_start, prefix_end)
                dest[region] = cumulative - pre
                cumulative = dest[region] + region_live[region]
            else:
                dest[region] = cumulative
                cumulative += region_live[region]
            trace.residual("summary", RESIDUAL_COSTS["summary_region"])
        return dest

    # -- pointer adjustment -------------------------------------------------------

    def _new_address(self, trace: GCTrace, phase: str,
                     region_dest: Dict[int, int], addr: int,
                     prefix_end: int) -> int:
        """Post-compaction address of old-gen object ``addr``.

        Dense-prefix objects do not move — the check is a compare, no
        bitmap query.  For moved objects this is one Bitmap Count
        invocation: live words in ``[region start, addr)`` (the paper's
        ``live_words_in_range``).  The software baseline's per-thread
        query cache is modelled: a query extending the immediately
        preceding one within the same region only walks the delta bits.
        """
        heap = self.heap
        old = heap.layout.old
        if addr < prefix_end:
            trace.residual(phase, RESIDUAL_COSTS["check_mark"])
            return addr
        region = (addr - old.start) // REGION_BYTES
        region_start = old.start + region * REGION_BYTES
        words = heap.bitmaps.live_words_in_range_fast(region_start, addr)
        bits = (addr - region_start) // WORD
        cached = None
        last = self._last_query
        if last is not None and last[0] == region_start \
                and last[1] <= addr:
            cached = (addr - last[1]) // WORD
        self._last_query = (region_start, addr)
        trace.bitmap_count(phase, region_start, bits=bits,
                           bits_cached=cached)
        return old.start + (region_dest[region] + words) * WORD

    def _adjust_pointers(self, trace: GCTrace, live_old: List[ObjectView],
                         live_young: List[ObjectView],
                         region_dest: Dict[int, int],
                         prefix_end: int) -> None:
        heap = self.heap
        layout = heap.layout
        # Roots first.
        for index, addr in enumerate(heap.roots):
            trace.residual("adjust", RESIDUAL_COSTS["forward_update"])
            if addr and layout.in_old(addr):
                heap.roots[index] = self._new_address(
                    trace, "adjust", region_dest, addr, prefix_end)
        # Then every reference slot of every live object.
        for view in self._all_live(live_old, live_young):
            for slot in view.reference_slots():
                target = heap.load_ref(slot)
                trace.residual("adjust", RESIDUAL_COSTS["check_mark"])
                if target and layout.in_old(target):
                    new_target = self._new_address(
                        trace, "adjust", region_dest, target, prefix_end)
                    if new_target != target:
                        heap.write_u64(slot, new_target)
                        trace.residual("adjust",
                                       RESIDUAL_COSTS["forward_update"])

    @staticmethod
    def _all_live(live_old: List[ObjectView],
                  live_young: List[ObjectView]):
        yield from live_old
        yield from live_young

    # -- compaction -------------------------------------------------------------------

    def _compact(self, trace: GCTrace, live_old: List[ObjectView],
                 region_dest: Dict[int, int], prefix_end: int) -> None:
        heap = self.heap
        old = heap.layout.old
        # Dense prefix: nothing moves; dead gaps between its live
        # objects become deadwood fillers so the space stays parseable
        # (the prefix ends exactly at its last live object).
        cursor = old.start
        new_top = prefix_end
        for view in live_old:
            if view.addr >= prefix_end:
                break
            if view.addr > cursor:
                heap.fill_dead_range(cursor, view.addr)
                trace.residual("compact", RESIDUAL_COSTS["sweep_step"])
            heap.set_mark_word(view.addr,
                               heap.mark_word(view.addr).unmarked())
            cursor = max(cursor, view.end_addr)
        # Moved objects slide left to just after the prefix.
        for view in live_old:
            if view.addr < prefix_end:
                continue
            dst = self._new_address(trace, "compact", region_dest,
                                    view.addr, prefix_end)
            size = view.size_bytes
            if dst != view.addr:
                heap.move_bytes(view.addr, dst, size)
                trace.copy("compact", view.addr, dst, size)
                trace.objects_copied += 1
                trace.bytes_copied += size
            # Clear the mark bit in the (possibly moved) header.
            heap.set_mark_word(dst, heap.mark_word(dst).unmarked())
            new_top = dst + size
        old.top = new_top
        heap.bitmaps.clear()

    def _unmark_young(self, live_young: List[ObjectView]) -> None:
        for view in live_young:
            mark = self.heap.mark_word(view.addr)
            self.heap.set_mark_word(view.addr, mark.unmarked())

    # -- card table reconstruction -------------------------------------------------------

    def _rebuild_cards(self, trace: GCTrace) -> None:
        """Re-dirty cards of old objects holding young references.

        Compaction moved old objects, so the pre-GC card state is
        meaningless; HotSpot similarly re-dirties during the move.
        """
        heap = self.heap
        heap.card_table.clear()
        for view in heap.iterate_space(heap.layout.old):
            trace.residual("card-rebuild", RESIDUAL_COSTS["card_clean"])
            if heap.is_filler(view):
                continue
            for slot in view.reference_slots():
                target = heap.load_ref(slot)
                if target and heap.layout.in_young(target):
                    heap.card_table.dirty(slot)

    # -- fast-path phases ---------------------------------------------------
    #
    # Same phase structure, same trace events and residual totals, same
    # final heap bytes — but header decode, bitmap marking, range
    # queries, mark-bit set/clear, card rebuild and the compaction
    # memmove all run through the batched kernels.  Mark bits are set
    # and cleared in bulk at the same addresses the scalar path touches
    # (including the marked residue left beyond the compacted top).

    def _mark_fast(self, trace: GCTrace
                   ) -> Tuple[List[LiveRec], List[LiveRec]]:
        heap = self.heap
        old = heap.layout.old
        ops = fast_kernels.HeapOps(heap)
        stack: ObjectStack[int] = ObjectStack()
        marked = set()
        live_old: List[LiveRec] = []
        live_young: List[LiveRec] = []

        n_roots = len(heap.roots)
        if n_roots:
            trace.residual("mark", RESIDUAL_COSTS["root"] * n_roots,
                           CACHE_LINE * n_roots)
        for addr in heap.roots:
            if addr and addr not in marked:
                marked.add(addr)
                stack.push(addr)

        pop_cost = RESIDUAL_COSTS["pop"]
        check_cost = RESIDUAL_COSTS["check_mark"]
        trivial_cost = RESIDUAL_COSTS["scan_trivial"]
        old_lo, old_hi = old.start, old.end
        while stack:
            addr = stack.pop()
            trace.residual("mark", pop_cost)
            kid, length, size = ops.decode(addr)
            trace.objects_visited += 1
            record = (addr, kid, length, size)
            if old_lo <= addr < old_hi:
                live_old.append(record)
            else:
                live_young.append(record)
            slots = ops.ref_slots(addr, kid, length)
            if slots:
                trace.residual("mark", check_cost * len(slots))
                pushes = 0
                for slot in slots:
                    target = ops.read_word(slot)
                    if target and target not in marked:
                        marked.add(target)
                        stack.push(target)
                        pushes += 1
                for refs, chunk_pushes in chunk_refs(len(slots),
                                                     pushes):
                    trace.scan_push("mark", addr, refs, chunk_pushes)
            else:
                trace.residual("mark", trivial_cost)

        live_old.sort()
        # Deferred bulk effects: nothing read the bitmaps or header
        # mark bits during the traversal, so batching them here leaves
        # the same state the per-object scalar stores produce.
        if live_old:
            columns = np.asarray(live_old, dtype=np.int64)
            fast_kernels.mark_objects_bulk(heap.bitmaps,
                                           columns[:, 0],
                                           columns[:, 3])
            fast_kernels.or_words_bulk(heap, columns[:, 0],
                                       _HEADER_MARK_BIT)
        if live_young:
            fast_kernels.or_words_bulk(
                heap,
                np.asarray([rec[0] for rec in live_young],
                           dtype=np.int64),
                _HEADER_MARK_BIT)
        return live_old, live_young

    def _region_live_fast(self, trace: GCTrace,
                          live_old: List[LiveRec]) -> List[int]:
        heap = self.heap
        old = heap.layout.old
        n_regions = -(-old.capacity // REGION_BYTES)
        if not live_old:
            return [0] * n_regions
        trace.residual("summary",
                       RESIDUAL_COSTS["summary_region"] * len(live_old))
        columns = np.asarray(live_old, dtype=np.int64)
        addrs, sizes = columns[:, 0], columns[:, 3]
        first = (addrs - old.start) // REGION_BYTES
        last = (addrs + sizes - WORD - old.start) // REGION_BYTES
        region_live = np.zeros(n_regions, dtype=np.int64)
        contained = first == last
        np.add.at(region_live, first[contained],
                  sizes[contained] // WORD)
        for position in np.flatnonzero(~contained).tolist():
            start = int(addrs[position])
            remaining = int(sizes[position])
            while remaining > 0:
                region = (start - old.start) // REGION_BYTES
                region_end = old.start + (region + 1) * REGION_BYTES
                span = min(remaining, region_end - start)
                region_live[region] += span // WORD
                start += span
                remaining -= span
        return region_live.tolist()

    def _effective_prefix_end_fast(self, live_old: List[LiveRec],
                                   region_prefix_end: int) -> int:
        prefix_end = self.heap.layout.old.start
        for addr, _, _, size in live_old:
            if addr >= region_prefix_end:
                break
            prefix_end = max(prefix_end, addr + size)
        return prefix_end

    def _summarize_fast(self, trace: GCTrace, region_live: List[int],
                        prefix_end: int,
                        index: "fast_kernels.CoverageIndex"
                        ) -> Dict[int, int]:
        heap = self.heap
        old = heap.layout.old
        first_moved = (prefix_end - old.start) // REGION_BYTES
        dest: Dict[int, int] = {}
        cumulative = (prefix_end - old.start) // WORD
        n_regions = len(region_live)
        # The scalar loop only charges regions at or past the dense
        # prefix (the prefix branch ``continue``s before its residual).
        charged = n_regions - min(first_moved, n_regions)
        if charged:
            trace.residual("summary",
                           RESIDUAL_COSTS["summary_region"] * charged)
        for region in range(n_regions):
            region_start = old.start + region * REGION_BYTES
            if region < first_moved:
                dest[region] = region * REGION_WORDS
                continue
            if region == first_moved and prefix_end > region_start:
                pre = index.live_words(region_start, prefix_end)
                dest[region] = cumulative - pre
                cumulative = dest[region] + region_live[region]
            else:
                dest[region] = cumulative
                cumulative += region_live[region]
        return dest

    def _new_address_fast(self, trace: GCTrace, phase: str,
                          region_dest: Dict[int, int], addr: int,
                          prefix_end: int,
                          index: "fast_kernels.CoverageIndex") -> int:
        """:meth:`_new_address` with the O(1) coverage-index query.

        The query-cache bookkeeping (and the ``bits_cached`` field it
        emits) is preserved verbatim — the *trace* must still describe
        the software baseline's walk."""
        old = self.heap.layout.old
        if addr < prefix_end:
            trace.residual(phase, RESIDUAL_COSTS["check_mark"])
            return addr
        region = (addr - old.start) // REGION_BYTES
        region_start = old.start + region * REGION_BYTES
        words = index.live_words(region_start, addr)
        bits = (addr - region_start) // WORD
        cached = None
        last = self._last_query
        if last is not None and last[0] == region_start \
                and last[1] <= addr:
            cached = (addr - last[1]) // WORD
        self._last_query = (region_start, addr)
        trace.bitmap_count(phase, region_start, bits=bits,
                           bits_cached=cached)
        return old.start + (region_dest[region] + words) * WORD

    def _adjust_pointers_fast(self, trace: GCTrace,
                              live_old: List[LiveRec],
                              live_young: List[LiveRec],
                              region_dest: Dict[int, int],
                              prefix_end: int,
                              index: "fast_kernels.CoverageIndex"
                              ) -> None:
        heap = self.heap
        layout = heap.layout
        n_roots = len(heap.roots)
        if n_roots:
            trace.residual("adjust",
                           RESIDUAL_COSTS["forward_update"] * n_roots)
        for position, addr in enumerate(heap.roots):
            if addr and layout.in_old(addr):
                heap.roots[position] = self._new_address_fast(
                    trace, "adjust", region_dest, addr, prefix_end,
                    index)
        all_live = live_old + live_young
        if not all_live:
            return
        columns = np.asarray(all_live, dtype=np.int64)
        batch = fast_kernels.gather_ref_slots(
            heap, columns[:, 0], columns[:, 1], columns[:, 2])
        total_slots = len(batch)
        if total_slots:
            trace.residual("adjust",
                           RESIDUAL_COSTS["check_mark"] * total_slots)
        # Every slot was read exactly once above, and each write below
        # goes only to the slot just read — gather-then-loop is exact.
        old_refs = ((batch.targets >= layout.old.start)
                    & (batch.targets < layout.old.end))
        slots = batch.slots
        targets = batch.targets
        changed_slots: List[int] = []
        changed_values: List[int] = []
        for position in np.flatnonzero(old_refs).tolist():
            target = int(targets[position])
            new_target = self._new_address_fast(
                trace, "adjust", region_dest, target, prefix_end,
                index)
            if new_target != target:
                changed_slots.append(int(slots[position]))
                changed_values.append(new_target)
        if changed_slots:
            trace.residual(
                "adjust",
                RESIDUAL_COSTS["forward_update"] * len(changed_slots))
            word_indices = (np.asarray(changed_slots, dtype=np.int64)
                            - heap.base) // WORD
            heap.words[word_indices] = np.asarray(
                changed_values, dtype=np.uint64)

    def _compact_fast(self, trace: GCTrace, live_old: List[LiveRec],
                      region_dest: Dict[int, int], prefix_end: int,
                      index: "fast_kernels.CoverageIndex") -> None:
        heap = self.heap
        old = heap.layout.old
        cursor = old.start
        new_top = prefix_end
        moved_from = 0
        for position, (addr, _, _, size) in enumerate(live_old):
            if addr >= prefix_end:
                break
            moved_from = position + 1
            if addr > cursor:
                heap.fill_dead_range(cursor, addr)
                trace.residual("compact", RESIDUAL_COSTS["sweep_step"])
            cursor = max(cursor, addr + size)
        # Moved objects slide left; contiguous src/dst runs collapse
        # into one slice memmove (per-object Copy events preserved).
        run_src = run_dst = run_len = 0

        def flush_run() -> None:
            nonlocal run_len
            if run_len:
                heap.move_bytes(run_src, run_dst, run_len)
                run_len = 0

        dst_addrs: List[int] = [rec[0] for rec in
                                live_old[:moved_from]]
        for addr, _, _, size in live_old[moved_from:]:
            dst = self._new_address_fast(trace, "compact", region_dest,
                                         addr, prefix_end, index)
            if dst != addr:
                if run_len and addr == run_src + run_len \
                        and dst == run_dst + run_len:
                    run_len += size
                else:
                    flush_run()
                    run_src, run_dst, run_len = addr, dst, size
                trace.copy("compact", addr, dst, size)
                trace.objects_copied += 1
                trace.bytes_copied += size
            else:
                flush_run()
            dst_addrs.append(dst)
            new_top = dst + size
        flush_run()
        # Bulk mark-bit clear at every surviving header (prefix objects
        # in place, moved objects at their destinations) — the marked
        # residue at moved objects' old addresses stays, as in the
        # scalar path.
        if dst_addrs:
            fast_kernels.and_words_bulk(
                heap, np.asarray(dst_addrs, dtype=np.int64),
                ~_HEADER_MARK_BIT)
        old.top = new_top
        heap.bitmaps.clear()

    def _unmark_young_fast(self, live_young: List[LiveRec]) -> None:
        if live_young:
            fast_kernels.and_words_bulk(
                self.heap,
                np.asarray([rec[0] for rec in live_young],
                           dtype=np.int64),
                ~_HEADER_MARK_BIT)

    def _rebuild_cards_fast(self, trace: GCTrace) -> None:
        heap = self.heap
        card_table = heap.card_table
        card_table.clear()
        old = heap.layout.old
        parsed = fast_kernels.parse_space(heap, old.start, old.top)
        if not len(parsed):
            return
        trace.residual("card-rebuild",
                       RESIDUAL_COSTS["card_clean"] * len(parsed))
        not_filler = ((parsed.kids != heap.filler_klass.klass_id)
                      & (parsed.kids
                         != heap.filler_object_klass.klass_id))
        keep = np.flatnonzero(not_filler)
        if not keep.shape[0]:
            return
        batch = fast_kernels.gather_ref_slots(
            heap, parsed.addrs[keep], parsed.kids[keep],
            parsed.lengths[keep])
        layout = heap.layout
        young = ((batch.targets != 0)
                 & (batch.targets >= layout.eden.start)
                 & (batch.targets < layout.survivor_b.end))
        card_table.dirty_slots(batch.slots[np.flatnonzero(young)])
