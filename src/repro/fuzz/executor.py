"""Replay a fuzz schedule against one collector backend.

The executor owns the mapping from schedule slots to root-table
entries; backends own allocation and collection policy:

* ``minor`` — the :class:`~repro.workloads.mutator.MutatorDriver`
  allocation front-end, explicit GCs are scavenges (with the driver's
  full-GC fallback when promotion is unsafe);
* ``major`` — same front-end, explicit GCs are mark-compact;
* ``sweep`` — same front-end, explicit GCs are mark-sweep over the old
  generation (young-generation pressure still triggers implicit
  scavenges through the allocation path);
* ``g1`` — the regional collector's own allocator and cycle.

Every backend installs the :class:`~repro.fuzz.oracle.GCOracle` hooks
around *every* collection — explicit schedule ops and the implicit
allocation-failure ones alike — so a single schedule exercises the
oracle dozens of times.

Ops referencing empty slots degrade to no-ops.  That keeps arbitrary
subsequences of a schedule executable, which is what lets the shrinker
delete ops freely while hunting for a minimal reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import FuzzConfig, HeapConfig
from repro.errors import InfeasibleSchedule, OutOfMemoryError
from repro.fuzz.generator import FuzzOp
from repro.fuzz.oracle import GCOracle, SATBOracle, snapshot_live
from repro.gcalgo.concurrent_mark import ConcurrentMarkGC
from repro.gcalgo.g1 import G1Collector
from repro.gcalgo.trace import GCTrace
from repro.heap.fast_kernels import use_kernel_mode
from repro.heap.heap import JavaHeap
from repro.heap.klass import KlassKind
from repro.workloads.base import workload_klasses
from repro.workloads.mutator import MutatorDriver

COLLECTOR_MODES = ("minor", "major", "sweep", "g1", "concurrent")


def build_fuzz_heap(config: FuzzConfig) -> JavaHeap:
    """A fresh heap with the shared workload klasses."""
    return JavaHeap(HeapConfig(heap_bytes=config.heap_bytes),
                    klasses=workload_klasses())


class DriverBackend:
    """Classic-layout backend over the MutatorDriver front-end."""

    #: stop-the-world collectors no-op ``mark_step`` ops, so the same
    #: schedule (and every shrunk subsequence of it) runs everywhere.
    supports_mark_step = False

    def __init__(self, heap: JavaHeap, mode: str,
                 oracle: Optional[GCOracle]) -> None:
        self.heap = heap
        self.mode = mode
        self.driver = MutatorDriver(heap, run_name=f"fuzz-{mode}")
        if oracle is not None:
            self.driver.pre_gc_hooks.append(oracle.before)
            self.driver.post_gc_hooks.append(oracle.after)

    def allocate(self, klass_name: str, length: Optional[int],
                 old: bool) -> int:
        if not old:
            return self.driver.allocate(klass_name, length=length).addr
        # Direct old-generation allocation (the cross-generational
        # pressure source); a full collection is the only way to make
        # room there.
        for attempt in range(2):
            try:
                return self.heap.new_object(
                    klass_name, length=length,
                    space=self.heap.layout.old).addr
            except OutOfMemoryError:
                if attempt:
                    raise
                self.driver.major_gc()
        raise OutOfMemoryError("old-generation fuzz allocation failed")

    def explicit_gc(self) -> GCTrace:
        if self.mode == "minor":
            return self.driver.minor_gc()
        if self.mode == "major":
            return self.driver.major_gc()
        return self.driver.sweep_gc()

    @property
    def traces(self) -> List[GCTrace]:
        return self.driver.run.traces


class G1Backend:
    """Regional-collector backend (its own allocator and cycle)."""

    supports_mark_step = False

    def __init__(self, heap: JavaHeap,
                 oracle: Optional[GCOracle]) -> None:
        self.heap = heap
        self.collector = G1Collector(heap)
        if oracle is not None:
            self.collector.pre_collect_hooks.append(oracle.before)
            self.collector.post_collect_hooks.append(oracle.after)

    def allocate(self, klass_name: str, length: Optional[int],
                 old: bool) -> int:
        # G1 has no old-generation bump space; ``old`` placement is a
        # classic-layout notion, and the regional collector reaches the
        # same logical heap state through its normal allocator.
        return self.collector.allocate(klass_name, length=length).addr

    def explicit_gc(self) -> GCTrace:
        return self.collector.collect()

    @property
    def traces(self) -> List[GCTrace]:
        return self.collector.traces


class ConcurrentBackend:
    """SATB concurrent-marking backend: the only one whose marking
    interleaves with the schedule's mutation ops."""

    supports_mark_step = True

    def __init__(self, heap: JavaHeap, oracle: Optional[GCOracle],
                 satb_oracle: Optional[SATBOracle],
                 mark_step_budget: int) -> None:
        self.heap = heap
        self.collector = ConcurrentMarkGC(heap)
        self.mark_step_budget = mark_step_budget
        if oracle is not None:
            self.collector.pre_collect_hooks.append(oracle.before)
            self.collector.post_collect_hooks.append(oracle.after)
        if satb_oracle is not None:
            self.collector.cycle_start_hooks.append(
                satb_oracle.cycle_start)
            self.collector.cycle_end_hooks.append(
                satb_oracle.cycle_end)

    def allocate(self, klass_name: str, length: Optional[int],
                 old: bool) -> int:
        # Like G1, the regional allocator has no separate old space.
        return self.collector.allocate(klass_name, length=length).addr

    def mark_step(self) -> int:
        return self.collector.mark_step(self.mark_step_budget)

    def explicit_gc(self) -> GCTrace:
        return self.collector.collect()

    def finish(self) -> None:
        # A schedule may end mid-cycle; completing it puts the
        # trailing cycle under the SATB oracle too, and changes
        # nothing the differential fingerprint can see (marking and
        # sweeping never alter the reachable graph).
        if self.collector.in_cycle:
            self.collector.collect()

    @property
    def traces(self) -> List[GCTrace]:
        return self.collector.traces


def make_backend(mode: str, heap: JavaHeap,
                 oracle: Optional[GCOracle],
                 satb_oracle: Optional[SATBOracle] = None,
                 mark_step_budget: int = 24):
    if mode == "g1":
        return G1Backend(heap, oracle)
    if mode == "concurrent":
        return ConcurrentBackend(heap, oracle, satb_oracle,
                                 mark_step_budget)
    if mode in ("minor", "major", "sweep"):
        return DriverBackend(heap, mode, oracle)
    raise InfeasibleSchedule(f"unknown collector mode {mode!r}")


@dataclass
class ExecutionResult:
    """Everything one schedule replay produced."""

    collector: str
    seed: Optional[int]
    final_fingerprint: str
    #: live-graph fingerprint recorded after each *explicit* gc op
    #: (implicit collections differ across collectors and are checked
    #: by the oracle, not compared differentially).
    gc_fingerprints: List[str] = field(default_factory=list)
    collections_checked: int = 0
    traces: List[GCTrace] = field(default_factory=list)
    heap: Optional[JavaHeap] = None
    live_objects: int = 0
    live_bytes: int = 0
    #: schedule-step coverage: ops that *applied* to this backend
    #: (``mark_step`` only counts on backends that support it) vs the
    #: subset that actually changed state — alloc/gc always do; link,
    #: unlink, payload and release only when their slot held a target
    #: they could act on.  A schedule full of empty-slot no-ops
    #: exercises nothing, and this is how that shows up.
    steps_applicable: int = 0
    steps_executed: int = 0
    #: SATB marking cycles the concurrent backend completed.
    satb_cycles: int = 0

    @property
    def step_coverage(self) -> float:
        if not self.steps_applicable:
            return 1.0
        return self.steps_executed / self.steps_applicable


class ScheduleExecutor:
    """Drive one schedule through one backend."""

    def __init__(self, mode: str, config: FuzzConfig,
                 use_oracle: bool = True,
                 seed: Optional[int] = None,
                 kernels: Optional[str] = None) -> None:
        config.validate()
        self.config = config
        self.mode = mode
        self.seed = seed
        #: heap-kernel mode pinned for the whole replay (``"scalar"``
        #: or ``"fast"``); ``None`` keeps the process-wide setting.
        self.kernels = kernels
        self.heap = build_fuzz_heap(config)
        # The regional collectors (G1, concurrent) lay regions over
        # the whole range, so the classic-layout space walker does not
        # apply there.
        self.oracle = GCOracle(
            verify_spaces=(mode not in ("g1", "concurrent"))) \
            if use_oracle else None
        self.satb_oracle = SATBOracle() \
            if use_oracle and mode == "concurrent" else None
        self.backend = make_backend(
            mode, self.heap, self.oracle, self.satb_oracle,
            mark_step_budget=config.mark_step_budget)
        # Schedule slots map 1:1 onto the first ``config.slots`` root
        # table entries; collectors keep them updated like any root.
        self.heap.roots.extend([0] * config.slots)

    # -- op handlers -------------------------------------------------------

    def _slot_addr(self, slot: int) -> int:
        return self.heap.roots[slot]

    def _do_alloc(self, op: FuzzOp, old: bool) -> bool:
        try:
            addr = self.backend.allocate(op.klass, op.length, old)
        except OutOfMemoryError as error:
            # Heap exhaustion under a *correct* collector is a
            # schedule-sizing problem, not a GC bug.
            raise InfeasibleSchedule(
                f"[{self.mode}] schedule exhausted the heap: "
                f"{error}") from error
        self.heap.roots[op.slot] = addr
        return True

    def _do_link(self, op: FuzzOp, target_addr: int) -> bool:
        src = self._slot_addr(op.slot)
        if src == 0:
            return False
        view = self.heap.object_at(src)
        if view.klass.kind is KlassKind.OBJ_ARRAY:
            if not view.length:
                return False
            self.heap.array_store(src, op.index % view.length,
                                  target_addr)
            return True
        slots = view.reference_slots()
        if not slots:
            return False
        self.heap.set_field(view, op.index % len(slots), target_addr)
        return True

    def _read_ref(self, addr: int, index: int) -> int:
        view = self.heap.object_at(addr)
        if view.klass.kind is KlassKind.OBJ_ARRAY:
            if not view.length:
                return 0
            return self.heap.array_load(addr, index % view.length)
        slots = view.reference_slots()
        if not slots:
            return 0
        return self.heap.get_field(view, index % len(slots))

    def _do_move(self, op: FuzzOp) -> bool:
        # Copy src.field[value] into dst.field[index].  The read
        # happens at replay time, so the copied reference may be one
        # the roots no longer see — paired with an unlink of the
        # source field this hides a live pointer from any marker whose
        # write barrier drops logs.  Copying a null is still a store
        # (it unlinks the destination field), so the op executes
        # whenever both slots are populated.
        src = self._slot_addr(op.target)
        if src == 0:
            return False
        return self._do_link(op, self._read_ref(src, op.value))

    def _do_payload(self, op: FuzzOp) -> bool:
        addr = self._slot_addr(op.slot)
        if addr == 0:
            return False
        view = self.heap.object_at(addr)
        if view.klass.kind is not KlassKind.TYPE_ARRAY or not view.length:
            return False
        size = min(view.length, self.config.max_payload_bytes)
        pattern = bytes((op.value + i) & 0xFF for i in range(size))
        self.heap.write_payload(view, pattern)
        return True

    # -- execution ---------------------------------------------------------

    def execute(self, ops: List[FuzzOp]) -> ExecutionResult:
        if self.kernels is not None:
            with use_kernel_mode(self.kernels):
                return self._execute(ops)
        return self._execute(ops)

    def _execute(self, ops: List[FuzzOp]) -> ExecutionResult:
        result = ExecutionResult(collector=self.mode, seed=self.seed,
                                 final_fingerprint="")
        applicable = 0
        executed = 0
        for op in ops:
            if op.kind == "mark_step":
                # Interleaved-marking ops only mean something to a
                # concurrent backend; everywhere else they are no-ops
                # by design (subsequence executability) and count
                # towards neither side of the coverage ratio.
                if self.backend.supports_mark_step:
                    applicable += 1
                    self.backend.mark_step()
                    executed += 1
                continue
            applicable += 1
            if op.kind == "alloc":
                executed += self._do_alloc(op, old=False)
            elif op.kind in ("alloc_old", "alloc_large"):
                executed += self._do_alloc(
                    op, old=(op.kind == "alloc_old"))
            elif op.kind == "link":
                executed += self._do_link(op, self._slot_addr(op.target))
            elif op.kind == "unlink":
                executed += self._do_link(op, 0)
            elif op.kind == "move":
                executed += self._do_move(op)
            elif op.kind == "payload":
                executed += self._do_payload(op)
            elif op.kind == "release":
                executed += self.heap.roots[op.slot] != 0
                self.heap.roots[op.slot] = 0
            elif op.kind == "gc":
                try:
                    self.backend.explicit_gc()
                except OutOfMemoryError as error:
                    raise InfeasibleSchedule(
                        f"[{self.mode}] explicit GC ran out of "
                        f"memory: {error}") from error
                executed += 1
                result.gc_fingerprints.append(
                    snapshot_live(self.heap).fingerprint())
            else:
                raise InfeasibleSchedule(f"unknown op {op.kind!r}")
        result.steps_applicable = applicable
        result.steps_executed = executed
        finish = getattr(self.backend, "finish", None)
        if finish is not None:
            finish()
        final = snapshot_live(self.heap)
        result.final_fingerprint = final.fingerprint()
        result.live_objects = len(final.nodes)
        result.live_bytes = final.total_bytes
        result.traces = list(self.backend.traces)
        result.heap = self.heap
        if self.oracle is not None:
            result.collections_checked = self.oracle.collections
        if self.satb_oracle is not None:
            result.satb_cycles = self.satb_oracle.cycles
        return result
