"""Replay a fuzz schedule against one collector backend.

The executor owns the mapping from schedule slots to root-table
entries; backends own allocation and collection policy:

* ``minor`` — the :class:`~repro.workloads.mutator.MutatorDriver`
  allocation front-end, explicit GCs are scavenges (with the driver's
  full-GC fallback when promotion is unsafe);
* ``major`` — same front-end, explicit GCs are mark-compact;
* ``sweep`` — same front-end, explicit GCs are mark-sweep over the old
  generation (young-generation pressure still triggers implicit
  scavenges through the allocation path);
* ``g1`` — the regional collector's own allocator and cycle.

Every backend installs the :class:`~repro.fuzz.oracle.GCOracle` hooks
around *every* collection — explicit schedule ops and the implicit
allocation-failure ones alike — so a single schedule exercises the
oracle dozens of times.

Ops referencing empty slots degrade to no-ops.  That keeps arbitrary
subsequences of a schedule executable, which is what lets the shrinker
delete ops freely while hunting for a minimal reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import FuzzConfig, HeapConfig
from repro.errors import InfeasibleSchedule, OutOfMemoryError
from repro.fuzz.generator import FuzzOp
from repro.fuzz.oracle import GCOracle, snapshot_live
from repro.gcalgo.g1 import G1Collector
from repro.gcalgo.trace import GCTrace
from repro.heap.fast_kernels import use_kernel_mode
from repro.heap.heap import JavaHeap
from repro.heap.klass import KlassKind
from repro.workloads.base import workload_klasses
from repro.workloads.mutator import MutatorDriver

COLLECTOR_MODES = ("minor", "major", "sweep", "g1")


def build_fuzz_heap(config: FuzzConfig) -> JavaHeap:
    """A fresh heap with the shared workload klasses."""
    return JavaHeap(HeapConfig(heap_bytes=config.heap_bytes),
                    klasses=workload_klasses())


class DriverBackend:
    """Classic-layout backend over the MutatorDriver front-end."""

    def __init__(self, heap: JavaHeap, mode: str,
                 oracle: Optional[GCOracle]) -> None:
        self.heap = heap
        self.mode = mode
        self.driver = MutatorDriver(heap, run_name=f"fuzz-{mode}")
        if oracle is not None:
            self.driver.pre_gc_hooks.append(oracle.before)
            self.driver.post_gc_hooks.append(oracle.after)

    def allocate(self, klass_name: str, length: Optional[int],
                 old: bool) -> int:
        if not old:
            return self.driver.allocate(klass_name, length=length).addr
        # Direct old-generation allocation (the cross-generational
        # pressure source); a full collection is the only way to make
        # room there.
        for attempt in range(2):
            try:
                return self.heap.new_object(
                    klass_name, length=length,
                    space=self.heap.layout.old).addr
            except OutOfMemoryError:
                if attempt:
                    raise
                self.driver.major_gc()
        raise OutOfMemoryError("old-generation fuzz allocation failed")

    def explicit_gc(self) -> GCTrace:
        if self.mode == "minor":
            return self.driver.minor_gc()
        if self.mode == "major":
            return self.driver.major_gc()
        return self.driver.sweep_gc()

    @property
    def traces(self) -> List[GCTrace]:
        return self.driver.run.traces


class G1Backend:
    """Regional-collector backend (its own allocator and cycle)."""

    def __init__(self, heap: JavaHeap,
                 oracle: Optional[GCOracle]) -> None:
        self.heap = heap
        self.collector = G1Collector(heap)
        if oracle is not None:
            self.collector.pre_collect_hooks.append(oracle.before)
            self.collector.post_collect_hooks.append(oracle.after)

    def allocate(self, klass_name: str, length: Optional[int],
                 old: bool) -> int:
        # G1 has no old-generation bump space; ``old`` placement is a
        # classic-layout notion, and the regional collector reaches the
        # same logical heap state through its normal allocator.
        return self.collector.allocate(klass_name, length=length).addr

    def explicit_gc(self) -> GCTrace:
        return self.collector.collect()

    @property
    def traces(self) -> List[GCTrace]:
        return self.collector.traces


def make_backend(mode: str, heap: JavaHeap,
                 oracle: Optional[GCOracle]):
    if mode == "g1":
        return G1Backend(heap, oracle)
    if mode in ("minor", "major", "sweep"):
        return DriverBackend(heap, mode, oracle)
    raise InfeasibleSchedule(f"unknown collector mode {mode!r}")


@dataclass
class ExecutionResult:
    """Everything one schedule replay produced."""

    collector: str
    seed: Optional[int]
    final_fingerprint: str
    #: live-graph fingerprint recorded after each *explicit* gc op
    #: (implicit collections differ across collectors and are checked
    #: by the oracle, not compared differentially).
    gc_fingerprints: List[str] = field(default_factory=list)
    collections_checked: int = 0
    traces: List[GCTrace] = field(default_factory=list)
    heap: Optional[JavaHeap] = None
    live_objects: int = 0
    live_bytes: int = 0


class ScheduleExecutor:
    """Drive one schedule through one backend."""

    def __init__(self, mode: str, config: FuzzConfig,
                 use_oracle: bool = True,
                 seed: Optional[int] = None,
                 kernels: Optional[str] = None) -> None:
        config.validate()
        self.config = config
        self.mode = mode
        self.seed = seed
        #: heap-kernel mode pinned for the whole replay (``"scalar"``
        #: or ``"fast"``); ``None`` keeps the process-wide setting.
        self.kernels = kernels
        self.heap = build_fuzz_heap(config)
        # G1 lays regions over the whole range, so the classic-layout
        # space walker does not apply there.
        self.oracle = GCOracle(verify_spaces=(mode != "g1")) \
            if use_oracle else None
        self.backend = make_backend(mode, self.heap, self.oracle)
        # Schedule slots map 1:1 onto the first ``config.slots`` root
        # table entries; collectors keep them updated like any root.
        self.heap.roots.extend([0] * config.slots)

    # -- op handlers -------------------------------------------------------

    def _slot_addr(self, slot: int) -> int:
        return self.heap.roots[slot]

    def _do_alloc(self, op: FuzzOp, old: bool) -> None:
        try:
            addr = self.backend.allocate(op.klass, op.length, old)
        except OutOfMemoryError as error:
            # Heap exhaustion under a *correct* collector is a
            # schedule-sizing problem, not a GC bug.
            raise InfeasibleSchedule(
                f"[{self.mode}] schedule exhausted the heap: "
                f"{error}") from error
        self.heap.roots[op.slot] = addr

    def _do_link(self, op: FuzzOp, target_addr: int) -> None:
        src = self._slot_addr(op.slot)
        if src == 0:
            return
        view = self.heap.object_at(src)
        if view.klass.kind is KlassKind.OBJ_ARRAY:
            if not view.length:
                return
            self.heap.array_store(src, op.index % view.length,
                                  target_addr)
            return
        slots = view.reference_slots()
        if not slots:
            return
        self.heap.set_field(view, op.index % len(slots), target_addr)

    def _do_payload(self, op: FuzzOp) -> None:
        addr = self._slot_addr(op.slot)
        if addr == 0:
            return
        view = self.heap.object_at(addr)
        if view.klass.kind is not KlassKind.TYPE_ARRAY or not view.length:
            return
        size = min(view.length, self.config.max_payload_bytes)
        pattern = bytes((op.value + i) & 0xFF for i in range(size))
        self.heap.write_payload(view, pattern)

    # -- execution ---------------------------------------------------------

    def execute(self, ops: List[FuzzOp]) -> ExecutionResult:
        if self.kernels is not None:
            with use_kernel_mode(self.kernels):
                return self._execute(ops)
        return self._execute(ops)

    def _execute(self, ops: List[FuzzOp]) -> ExecutionResult:
        result = ExecutionResult(collector=self.mode, seed=self.seed,
                                 final_fingerprint="")
        for op in ops:
            if op.kind == "alloc":
                self._do_alloc(op, old=False)
            elif op.kind in ("alloc_old", "alloc_large"):
                self._do_alloc(op, old=(op.kind == "alloc_old"))
            elif op.kind == "link":
                self._do_link(op, self._slot_addr(op.target))
            elif op.kind == "unlink":
                self._do_link(op, 0)
            elif op.kind == "payload":
                self._do_payload(op)
            elif op.kind == "release":
                self.heap.roots[op.slot] = 0
            elif op.kind == "gc":
                try:
                    self.backend.explicit_gc()
                except OutOfMemoryError as error:
                    raise InfeasibleSchedule(
                        f"[{self.mode}] explicit GC ran out of "
                        f"memory: {error}") from error
                result.gc_fingerprints.append(
                    snapshot_live(self.heap).fingerprint())
            else:
                raise InfeasibleSchedule(f"unknown op {op.kind!r}")
        final = snapshot_live(self.heap)
        result.final_fingerprint = final.fingerprint()
        result.live_objects = len(final.nodes)
        result.live_bytes = final.total_bytes
        result.traces = list(self.backend.traces)
        result.heap = self.heap
        if self.oracle is not None:
            result.collections_checked = self.oracle.collections
        return result
