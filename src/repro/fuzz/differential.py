"""Differential runner: one schedule, every collector, cross-checked.

Each collector backend replays the same seeded mutation schedule on its
own fresh heap with the reachability oracle hooked around every
collection.  Afterwards the runner cross-checks the backends against
each other: the canonical live-graph fingerprint after every explicit
``gc`` op — and at the end of the schedule — must agree across all of
them, because the schedule defines the logical heap state and a correct
collector must preserve it no matter how it moves objects around.

A schedule that exhausts the heap under some backend is *infeasible*
(reported, skipped) rather than a failure: heap exhaustion is a
schedule-sizing artifact, not a collector bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import FuzzConfig, default_fuzz_config
from repro.errors import (FuzzError, HeapError, InfeasibleSchedule,
                          OracleViolation)
from repro.fuzz.executor import (COLLECTOR_MODES, ExecutionResult,
                                 ScheduleExecutor)
from repro.fuzz.generator import FuzzOp, build_schedule


@dataclass
class FuzzFailure:
    """One oracle violation or cross-collector divergence."""

    seed: Optional[int]
    collector: str
    message: str
    ops: List[FuzzOp] = field(default_factory=list)

    def describe(self) -> str:
        return (f"seed={self.seed} collector={self.collector} "
                f"ops={len(self.ops)}: {self.message}")


@dataclass
class SeedResult:
    """Outcome of one seed across all requested collectors."""

    seed: Optional[int]
    status: str  #: "ok" | "infeasible" | "failed"
    collectors: Tuple[str, ...] = ()
    ops: int = 0
    collections_checked: int = 0
    live_objects: int = 0
    failure: Optional[FuzzFailure] = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def run_schedule(ops: Sequence[FuzzOp], collector: str,
                 config: Optional[FuzzConfig] = None,
                 use_oracle: bool = True,
                 seed: Optional[int] = None) -> ExecutionResult:
    """Replay ``ops`` under one collector with the oracle installed."""
    config = config or default_fuzz_config()
    executor = ScheduleExecutor(collector, config,
                                use_oracle=use_oracle, seed=seed)
    return executor.execute(list(ops))


def _cross_check(results: Dict[str, ExecutionResult]) -> None:
    """All backends must agree on every differential fingerprint."""
    names = list(results)
    base = results[names[0]]
    for name in names[1:]:
        other = results[name]
        if other.final_fingerprint != base.final_fingerprint:
            raise OracleViolation(
                f"final live graphs diverge: {names[0]} "
                f"({base.live_objects} objects) vs {name} "
                f"({other.live_objects} objects)")
        if len(other.gc_fingerprints) != len(base.gc_fingerprints):
            raise OracleViolation(
                f"{names[0]} ran {len(base.gc_fingerprints)} explicit "
                f"GCs but {name} ran {len(other.gc_fingerprints)}")
        for index, (a, b) in enumerate(zip(base.gc_fingerprints,
                                           other.gc_fingerprints)):
            if a != b:
                raise OracleViolation(
                    f"live graphs diverge after explicit GC #{index}: "
                    f"{names[0]} vs {name}")


def run_seed(seed: int, config: Optional[FuzzConfig] = None,
             collectors: Optional[Sequence[str]] = None) -> SeedResult:
    """Build the schedule for ``seed`` and run it differentially."""
    config = config or default_fuzz_config()
    collectors = tuple(collectors or config.collectors)
    for name in collectors:
        if name not in COLLECTOR_MODES:
            raise FuzzError(f"unknown collector {name!r}; choose from "
                            f"{', '.join(COLLECTOR_MODES)}")
    ops = build_schedule(seed, config)
    results: Dict[str, ExecutionResult] = {}
    for name in collectors:
        try:
            results[name] = run_schedule(ops, name, config, seed=seed)
        except InfeasibleSchedule as error:
            return SeedResult(seed=seed, status="infeasible",
                              collectors=collectors, ops=len(ops),
                              detail=str(error))
        except (FuzzError, HeapError) as error:
            # HeapError outside the guarded OOM paths means the
            # mutator tripped over corruption a collection left behind
            # — as much a finding as an explicit oracle violation.
            return SeedResult(
                seed=seed, status="failed", collectors=collectors,
                ops=len(ops),
                failure=FuzzFailure(seed=seed, collector=name,
                                    message=str(error), ops=ops))
    try:
        _cross_check(results)
    except OracleViolation as error:
        return SeedResult(
            seed=seed, status="failed", collectors=collectors,
            ops=len(ops),
            failure=FuzzFailure(seed=seed, collector="differential",
                                message=str(error), ops=ops))
    checked = sum(r.collections_checked for r in results.values())
    any_result = results[collectors[0]]
    return SeedResult(seed=seed, status="ok", collectors=collectors,
                      ops=len(ops), collections_checked=checked,
                      live_objects=any_result.live_objects)


#: Backwards-friendly alias: a "fuzz" of one seed is one differential run.
fuzz_seed = run_seed
