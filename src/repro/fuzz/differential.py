"""Differential runner: one schedule, every collector, cross-checked.

Each collector backend replays the same seeded mutation schedule on its
own fresh heap with the reachability oracle hooked around every
collection.  Afterwards the runner cross-checks the backends against
each other: the canonical live-graph fingerprint after every explicit
``gc`` op — and at the end of the schedule — must agree across all of
them, because the schedule defines the logical heap state and a correct
collector must preserve it no matter how it moves objects around.

A schedule that exhausts the heap under some backend is *infeasible*
(reported, skipped) rather than a failure: heap exhaustion is a
schedule-sizing artifact, not a collector bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import FuzzConfig, default_fuzz_config
from repro.errors import (FuzzError, HeapError, InfeasibleSchedule,
                          OracleViolation)
from repro.fuzz.executor import (COLLECTOR_MODES, ExecutionResult,
                                 ScheduleExecutor)
from repro.fuzz.generator import FuzzOp, build_schedule
from repro.heap.fast_kernels import use_kernel_mode


@dataclass
class FuzzFailure:
    """One oracle violation or cross-collector divergence."""

    seed: Optional[int]
    collector: str
    message: str
    ops: List[FuzzOp] = field(default_factory=list)

    def describe(self) -> str:
        return (f"seed={self.seed} collector={self.collector} "
                f"ops={len(self.ops)}: {self.message}")


@dataclass
class SeedResult:
    """Outcome of one seed across all requested collectors."""

    seed: Optional[int]
    status: str  #: "ok" | "infeasible" | "failed"
    collectors: Tuple[str, ...] = ()
    ops: int = 0
    collections_checked: int = 0
    live_objects: int = 0
    failure: Optional[FuzzFailure] = None
    detail: str = ""
    #: per-collector ``(steps executed, steps applicable)`` — how much
    #: of the generated schedule each backend actually exercised.
    step_counts: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def step_coverage(self) -> float:
        """Worst per-collector coverage ratio (1.0 when nothing ran)."""
        ratios = [executed / applicable
                  for executed, applicable in self.step_counts.values()
                  if applicable]
        return min(ratios) if ratios else 1.0


def run_schedule(ops: Sequence[FuzzOp], collector: str,
                 config: Optional[FuzzConfig] = None,
                 use_oracle: bool = True,
                 seed: Optional[int] = None,
                 kernels: Optional[str] = None) -> ExecutionResult:
    """Replay ``ops`` under one collector with the oracle installed."""
    config = config or default_fuzz_config()
    executor = ScheduleExecutor(collector, config,
                                use_oracle=use_oracle, seed=seed,
                                kernels=kernels)
    return executor.execute(list(ops))


def _cross_check(results: Dict[str, ExecutionResult]) -> None:
    """All backends must agree on every differential fingerprint."""
    names = list(results)
    base = results[names[0]]
    for name in names[1:]:
        other = results[name]
        if other.final_fingerprint != base.final_fingerprint:
            raise OracleViolation(
                f"final live graphs diverge: {names[0]} "
                f"({base.live_objects} objects) vs {name} "
                f"({other.live_objects} objects)")
        if len(other.gc_fingerprints) != len(base.gc_fingerprints):
            raise OracleViolation(
                f"{names[0]} ran {len(base.gc_fingerprints)} explicit "
                f"GCs but {name} ran {len(other.gc_fingerprints)}")
        for index, (a, b) in enumerate(zip(base.gc_fingerprints,
                                           other.gc_fingerprints)):
            if a != b:
                raise OracleViolation(
                    f"live graphs diverge after explicit GC #{index}: "
                    f"{names[0]} vs {name}")


def _assert_kernel_equivalence(collector: str,
                               scalar: ExecutionResult,
                               fast: ExecutionResult) -> None:
    """Scalar and fast kernels must be observationally identical.

    The fast kernels promise *bit-exactness*, which is much stronger
    than the live-graph agreement the cross-collector check settles
    for: every GCTrace event stream, every residual-cost account, the
    final heap buffer, the root table, the card table and the mark
    bitmaps must match byte for byte.
    """
    if len(scalar.traces) != len(fast.traces):
        raise OracleViolation(
            f"[{collector}] scalar ran {len(scalar.traces)} "
            f"collections but fast ran {len(fast.traces)}")
    for index, (a, b) in enumerate(zip(scalar.traces, fast.traces)):
        if a.kind != b.kind:
            raise OracleViolation(
                f"[{collector}] collection #{index} kind differs: "
                f"{a.kind} vs {b.kind}")
        if a.events != b.events:
            for pos, (ea, eb) in enumerate(zip(a.events, b.events)):
                if ea != eb:
                    raise OracleViolation(
                        f"[{collector}] collection #{index} ({a.kind}) "
                        f"event #{pos} differs: {ea} vs {eb}")
            raise OracleViolation(
                f"[{collector}] collection #{index} ({a.kind}) event "
                f"counts differ: {len(a.events)} vs {len(b.events)}")
        if a.residuals != b.residuals:
            raise OracleViolation(
                f"[{collector}] collection #{index} ({a.kind}) "
                f"residuals differ: {a.residuals} vs {b.residuals}")
        if a.summary() != b.summary():
            raise OracleViolation(
                f"[{collector}] collection #{index} ({a.kind}) "
                f"summaries differ")
    heap_a, heap_b = scalar.heap, fast.heap
    assert heap_a is not None and heap_b is not None
    if bytes(heap_a.buffer) != bytes(heap_b.buffer):
        diff = [i for i, (x, y) in enumerate(zip(heap_a.buffer,
                                                 heap_b.buffer))
                if x != y]
        raise OracleViolation(
            f"[{collector}] final heap buffers differ at "
            f"{len(diff)} bytes (first at offset {diff[0]:#x})")
    if list(heap_a.roots) != list(heap_b.roots):
        raise OracleViolation(f"[{collector}] root tables differ")
    layout_a, layout_b = heap_a.layout, heap_b.layout
    tops_a = (layout_a.eden.top, layout_a.survivor_from.top,
              layout_a.survivor_to.top, layout_a.old.top)
    tops_b = (layout_b.eden.top, layout_b.survivor_from.top,
              layout_b.survivor_to.top, layout_b.old.top)
    if tops_a != tops_b:
        raise OracleViolation(
            f"[{collector}] space tops differ: {tops_a} vs {tops_b}")
    if (heap_a.card_table.bytes.tobytes()
            != heap_b.card_table.bytes.tobytes()):
        raise OracleViolation(f"[{collector}] card tables differ")
    if (heap_a.bitmaps.beg.tobytes() != heap_b.bitmaps.beg.tobytes()
            or heap_a.bitmaps.end.tobytes()
            != heap_b.bitmaps.end.tobytes()):
        raise OracleViolation(f"[{collector}] mark bitmaps differ")


def compare_kernel_modes(seed: int,
                         config: Optional[FuzzConfig] = None,
                         collectors: Optional[Sequence[str]] = None
                         ) -> SeedResult:
    """Replay one seed per collector under scalar *and* fast kernels.

    The reachability oracle is off (both replays are checked against
    each other instead, to a far tighter standard), so this is cheap
    enough to run over many seeds.
    """
    config = config or default_fuzz_config()
    collectors = tuple(collectors or config.collectors)
    for name in collectors:
        if name not in COLLECTOR_MODES:
            raise FuzzError(f"unknown collector {name!r}; choose from "
                            f"{', '.join(COLLECTOR_MODES)}")
    ops = build_schedule(seed, config)
    collections = 0
    live_objects = 0
    step_counts: Dict[str, Tuple[int, int]] = {}
    for name in collectors:
        try:
            scalar = run_schedule(ops, name, config, use_oracle=False,
                                  seed=seed, kernels="scalar")
            fast = run_schedule(ops, name, config, use_oracle=False,
                                seed=seed, kernels="fast")
        except InfeasibleSchedule as error:
            return SeedResult(seed=seed, status="infeasible",
                              collectors=collectors, ops=len(ops),
                              detail=str(error))
        except (FuzzError, HeapError) as error:
            return SeedResult(
                seed=seed, status="failed", collectors=collectors,
                ops=len(ops),
                failure=FuzzFailure(seed=seed, collector=name,
                                    message=str(error), ops=ops))
        try:
            _assert_kernel_equivalence(name, scalar, fast)
        except OracleViolation as error:
            return SeedResult(
                seed=seed, status="failed", collectors=collectors,
                ops=len(ops),
                failure=FuzzFailure(seed=seed, collector=name,
                                    message=str(error), ops=ops))
        collections += len(scalar.traces)
        live_objects = scalar.live_objects
        step_counts[name] = (scalar.steps_executed,
                             scalar.steps_applicable)
    return SeedResult(seed=seed, status="ok", collectors=collectors,
                      ops=len(ops), collections_checked=collections,
                      live_objects=live_objects,
                      step_counts=step_counts)


def run_seed(seed: int, config: Optional[FuzzConfig] = None,
             collectors: Optional[Sequence[str]] = None) -> SeedResult:
    """Build the schedule for ``seed`` and run it differentially."""
    config = config or default_fuzz_config()
    collectors = tuple(collectors or config.collectors)
    for name in collectors:
        if name not in COLLECTOR_MODES:
            raise FuzzError(f"unknown collector {name!r}; choose from "
                            f"{', '.join(COLLECTOR_MODES)}")
    ops = build_schedule(seed, config)
    results: Dict[str, ExecutionResult] = {}
    for name in collectors:
        try:
            results[name] = run_schedule(ops, name, config, seed=seed)
        except InfeasibleSchedule as error:
            return SeedResult(seed=seed, status="infeasible",
                              collectors=collectors, ops=len(ops),
                              detail=str(error))
        except (FuzzError, HeapError) as error:
            # HeapError outside the guarded OOM paths means the
            # mutator tripped over corruption a collection left behind
            # — as much a finding as an explicit oracle violation.
            return SeedResult(
                seed=seed, status="failed", collectors=collectors,
                ops=len(ops),
                failure=FuzzFailure(seed=seed, collector=name,
                                    message=str(error), ops=ops))
    try:
        _cross_check(results)
    except OracleViolation as error:
        return SeedResult(
            seed=seed, status="failed", collectors=collectors,
            ops=len(ops),
            failure=FuzzFailure(seed=seed, collector="differential",
                                message=str(error), ops=ops))
    checked = sum(r.collections_checked for r in results.values())
    any_result = results[collectors[0]]
    return SeedResult(seed=seed, status="ok", collectors=collectors,
                      ops=len(ops), collections_checked=checked,
                      live_objects=any_result.live_objects,
                      step_counts={
                          name: (r.steps_executed, r.steps_applicable)
                          for name, r in results.items()})


#: Backwards-friendly alias: a "fuzz" of one seed is one differential run.
fuzz_seed = run_seed
