"""Failing-schedule minimization and reproducer files.

When a seed fails, the raw schedule is long (hundreds of ops) and most
of it is noise.  The shrinker exploits the schedule property that any
subsequence stays executable (ops on empty slots are no-ops):

1. **prefix bisection** — binary-search the shortest failing prefix,
   since a failure at op *k* can't depend on ops after *k*;
2. **greedy removal** — repeatedly drop single ops (then pairs from a
   later round) and keep every deletion that still fails.

The result is written as a JSON *reproducer* recording the minimized
ops, the originating seed and config, and the failure message, so a
regression test can replay the exact scenario without re-running the
generator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.config import FuzzConfig, default_fuzz_config
from repro.errors import FuzzError, HeapError, InfeasibleSchedule
from repro.fuzz.executor import ExecutionResult
from repro.fuzz.generator import FuzzOp

REPRODUCER_VERSION = 1

#: a predicate deciding whether a candidate schedule still fails.
FailsPredicate = Callable[[List[FuzzOp]], bool]


def failure_predicate(collectors: Sequence[str],
                      config: Optional[FuzzConfig] = None
                      ) -> FailsPredicate:
    """The default predicate: does any collector (or the differential
    cross-check) reject this schedule?  Infeasible candidates count as
    non-failing — shrinking must preserve the *bug*, not the OOM."""
    from repro.fuzz.differential import _cross_check, run_schedule
    config = config or default_fuzz_config()

    def fails(ops: List[FuzzOp]) -> bool:
        results = {}
        try:
            for name in collectors:
                results[name] = run_schedule(ops, name, config)
            if len(results) > 1:
                _cross_check(results)
        except InfeasibleSchedule:
            return False
        except (FuzzError, HeapError):
            return True
        return False

    return fails


def shrink_schedule(ops: Sequence[FuzzOp], fails: FailsPredicate,
                    rounds: int = 4) -> List[FuzzOp]:
    """Minimize ``ops`` while ``fails`` keeps returning True.

    ``fails(list(ops))`` must be True on entry; the returned schedule
    is guaranteed to still satisfy it.
    """
    current = list(ops)
    if not fails(current):
        raise FuzzError("shrink_schedule called with a passing schedule")

    # Phase 1: shortest failing prefix by bisection.
    low, high = 1, len(current)
    while low < high:
        mid = (low + high) // 2
        if fails(current[:mid]):
            high = mid
        else:
            low = mid + 1
    current = current[:high]

    # Phase 2: greedy deletion, widening chunks each round.
    for round_index in range(rounds):
        chunk = max(1, len(current) >> (rounds - 1 - round_index)) \
            if round_index < rounds - 1 else 1
        changed = True
        while changed:
            changed = False
            index = 0
            while index < len(current):
                candidate = current[:index] + current[index + chunk:]
                if candidate and fails(candidate):
                    current = candidate
                    changed = True
                else:
                    index += 1
        if len(current) <= 1:
            break
    return current


# -- reproducer files ------------------------------------------------------


def write_reproducer(path: Union[str, Path], ops: Sequence[FuzzOp],
                     seed: Optional[int], collectors: Sequence[str],
                     message: str,
                     config: Optional[FuzzConfig] = None) -> Path:
    """Serialize a minimized failing schedule to ``path``."""
    config = config or default_fuzz_config()
    payload = {
        "version": REPRODUCER_VERSION,
        "seed": seed,
        "collectors": list(collectors),
        "message": message,
        "config": {
            "heap_bytes": config.heap_bytes,
            "slots": config.slots,
            "max_payload_bytes": config.max_payload_bytes,
        },
        "ops": [op.to_dict() for op in ops],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_reproducer(path: Union[str, Path]) -> dict:
    """Parse a reproducer file back into ops + metadata."""
    data = json.loads(Path(path).read_text())
    if data.get("version") != REPRODUCER_VERSION:
        raise FuzzError(f"unsupported reproducer version "
                        f"{data.get('version')!r} in {path}")
    data["ops"] = [FuzzOp.from_dict(op) for op in data["ops"]]
    return data


def replay_reproducer(path: Union[str, Path],
                      config: Optional[FuzzConfig] = None
                      ) -> List[ExecutionResult]:
    """Re-run a reproducer under its recorded collectors.

    Raises the original failure class (:class:`OracleViolation` etc.)
    if the bug is still present; returns the per-collector results if
    the scenario now passes.
    """
    from repro.fuzz.differential import _cross_check, run_schedule
    data = load_reproducer(path)
    base = config or default_fuzz_config()
    saved = data.get("config", {})
    run_config = FuzzConfig(
        heap_bytes=saved.get("heap_bytes", base.heap_bytes),
        slots=saved.get("slots", base.slots),
        ops=base.ops,
        live_byte_budget=base.live_byte_budget,
        large_object_bytes=base.large_object_bytes,
        max_live_large=base.max_live_large,
        max_array_refs=base.max_array_refs,
        max_payload_bytes=saved.get("max_payload_bytes",
                                    base.max_payload_bytes),
        gc_probability=base.gc_probability,
        collectors=base.collectors,
        shrink_rounds=base.shrink_rounds,
    )
    results = {}
    for name in data["collectors"]:
        results[name] = run_schedule(data["ops"], name, run_config,
                                     seed=data.get("seed"))
    if len(results) > 1:
        _cross_check(results)
    return list(results.values())
