"""Seeded heap-shape generator: randomized mutation schedules.

A *schedule* is a flat list of :class:`FuzzOp` records over a fixed set
of root-table slots.  Ops only name slots — never raw addresses — so
the same schedule replays identically under any collector backend (the
whole point of the differential runner) and any subsequence remains
executable (the whole point of the shrinker: ops whose slots turn out
empty degrade to no-ops).

The generator deliberately produces the shapes that break collectors:

* **instances** of every workload klass plus ref/prim arrays;
* **cycles** — a link op may target any live slot, including its own
  source, and links go both forward and backward in allocation order;
* **cross-generational edges** — ``alloc_old`` places objects directly
  in the old generation, and linking them to young objects exercises
  the card-table write barrier;
* **large objects** spilling Eden (the driver's humongous path / G1's
  contiguous-region path);
* **garbage** at every age — releases and overwrites throughout, so
  collections always have something to reclaim;
* **hidden pointers** — a ``move`` copies a reference out of one
  object's field into another object's field, usually followed by an
  ``unlink`` of the source field.  Interleaved with ``mark_step`` ops
  this is exactly the race SATB write barriers exist for: the only
  path to an object hops from a not-yet-scanned field into an
  already-scanned one, and without barrier coverage the marker never
  sees it.

Determinism: the schedule is a pure function of ``(seed, FuzzConfig)``
through one ``random.Random`` instance; nothing about the heap feeds
back into generation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import FuzzConfig
from repro.heap.klass import ARRAY_ELEMENTS_OFFSET, HEADER_BYTES
from repro.units import WORD, align_up

#: instance klasses the schedule allocates (name -> reference arity).
#: These are the shared workload klasses every fuzz heap defines.
INSTANCE_KLASSES: Dict[str, int] = {
    "Record": 2,
    "Vertex": 3,
    "Box": 1,
    "Message": 2,
}

#: klasses with at least one reference slot (valid link sources).
_LINKABLE = tuple(INSTANCE_KLASSES) + ("objArray",)


@dataclass(frozen=True)
class FuzzOp:
    """One schedule step.  Field use depends on ``kind``:

    * ``alloc`` / ``alloc_old`` — allocate ``klass`` (``length`` for
      arrays) and store its address in root ``slot``;
    * ``alloc_large`` — a type array of ``length`` payload bytes, big
      enough to take the humongous path;
    * ``link`` — store root ``target``'s address into reference slot
      ``index`` of root ``slot``'s object;
    * ``unlink`` — null reference slot ``index`` of root ``slot``;
    * ``move`` — copy the reference held in slot ``target``'s field
      ``value`` into reference slot ``index`` of root ``slot`` (a pure
      heap-to-heap ref copy, read at replay time; copying a null is
      still a store);
    * ``payload`` — fill root ``slot``'s type-array payload with a
      pattern derived from ``value``;
    * ``release`` — null root ``slot``;
    * ``gc`` — one explicit collection (whatever the backend runs).
    """

    kind: str
    slot: int = 0
    klass: str = ""
    length: Optional[int] = None
    index: int = 0
    target: int = 0
    value: int = 0

    def to_dict(self) -> dict:
        out = {"kind": self.kind}
        for name in ("slot", "klass", "length", "index", "target",
                     "value"):
            field_value = getattr(self, name)
            if field_value not in (0, "", None):
                out[name] = field_value
        return out

    @staticmethod
    def from_dict(data: dict) -> "FuzzOp":
        return FuzzOp(**data)


@dataclass
class _Slot:
    """What the generator believes a root slot holds."""

    klass: str
    length: Optional[int]
    size_bytes: int
    large: bool = False


def _instance_size(ref_fields: int, prim_fields: int = 2) -> int:
    return HEADER_BYTES + (ref_fields + prim_fields) * WORD


def _array_size(klass: str, length: int) -> int:
    if klass == "objArray":
        return ARRAY_ELEMENTS_OFFSET + length * WORD
    return ARRAY_ELEMENTS_OFFSET + align_up(length, WORD)


class ScheduleBuilder:
    """Grow one deterministic schedule from a seed."""

    def __init__(self, seed: int, config: FuzzConfig) -> None:
        config.validate()
        self.rng = random.Random(seed)
        self.config = config
        self.slots: List[Optional[_Slot]] = [None] * config.slots
        self.live_bytes = 0
        self.live_large = 0
        self.ops: List[FuzzOp] = []

    # -- slot bookkeeping --------------------------------------------------

    def _live_slots(self) -> List[int]:
        return [i for i, s in enumerate(self.slots) if s is not None]

    def _drop(self, slot: int) -> None:
        state = self.slots[slot]
        if state is not None:
            self.live_bytes -= state.size_bytes
            if state.large:
                self.live_large -= 1
            self.slots[slot] = None

    def _install(self, slot: int, state: _Slot) -> None:
        self._drop(slot)
        self.slots[slot] = state
        self.live_bytes += state.size_bytes
        if state.large:
            self.live_large += 1

    # -- op emitters -------------------------------------------------------

    def _emit_alloc(self, old: bool) -> None:
        rng = self.rng
        slot = rng.randrange(self.config.slots)
        choice = rng.random()
        if choice < 0.55:
            klass = rng.choice(tuple(INSTANCE_KLASSES))
            length = None
            size = _instance_size(INSTANCE_KLASSES[klass])
        elif choice < 0.80:
            klass = "objArray"
            length = rng.randint(1, self.config.max_array_refs)
            size = _array_size(klass, length)
        else:
            klass = "typeArray"
            length = rng.randint(1, self.config.max_payload_bytes)
            size = _array_size(klass, length)
        kind = "alloc_old" if old else "alloc"
        self.ops.append(FuzzOp(kind, slot=slot, klass=klass,
                               length=length))
        self._install(slot, _Slot(klass, length, size))

    def _emit_alloc_large(self) -> None:
        slot = self.rng.randrange(self.config.slots)
        length = self.config.large_object_bytes
        self.ops.append(FuzzOp("alloc_large", slot=slot,
                               klass="typeArray", length=length))
        self._install(slot, _Slot("typeArray", length,
                                  _array_size("typeArray", length),
                                  large=True))

    def _emit_link(self, unlink: bool = False) -> bool:
        sources = [i for i in self._live_slots()
                   if self.slots[i].klass in _LINKABLE]
        if not sources:
            return False
        src = self.rng.choice(sources)
        state = self.slots[src]
        if state.klass == "objArray":
            index = self.rng.randrange(state.length)
        else:
            index = self.rng.randrange(INSTANCE_KLASSES[state.klass])
        if unlink:
            self.ops.append(FuzzOp("unlink", slot=src, index=index))
        else:
            # Any live slot is a valid target, including src itself
            # (self-cycles) and slots allocated later (back edges).
            target = self.rng.choice(self._live_slots())
            self.ops.append(FuzzOp("link", slot=src, index=index,
                                   target=target))
        return True

    def _field_index(self, slot: int) -> int:
        state = self.slots[slot]
        if state.klass == "objArray":
            return self.rng.randrange(state.length)
        return self.rng.randrange(INSTANCE_KLASSES[state.klass])

    def _emit_move(self) -> bool:
        """A heap-to-heap ref copy, usually chased by an unlink of the
        source field — the pointer-hiding pattern concurrent marking's
        write barrier has to survive."""
        linkable = [i for i in self._live_slots()
                    if self.slots[i].klass in _LINKABLE]
        if not linkable:
            return False
        src = self.rng.choice(linkable)
        src_index = self._field_index(src)
        dst = self.rng.choice(linkable)
        self.ops.append(FuzzOp("move", slot=dst,
                               index=self._field_index(dst),
                               target=src, value=src_index))
        if self.rng.random() < 0.7:
            self.ops.append(FuzzOp("unlink", slot=src,
                                   index=src_index))
        return True

    def _emit_payload(self) -> bool:
        arrays = [i for i in self._live_slots()
                  if self.slots[i].klass == "typeArray"]
        if not arrays:
            return False
        slot = self.rng.choice(arrays)
        self.ops.append(FuzzOp("payload", slot=slot,
                               value=self.rng.randrange(256)))
        return True

    def _emit_release(self) -> bool:
        live = self._live_slots()
        if not live:
            return False
        slot = self.rng.choice(live)
        self.ops.append(FuzzOp("release", slot=slot))
        self._drop(slot)
        return True

    # -- the schedule ------------------------------------------------------

    def build(self) -> List[FuzzOp]:
        config = self.config
        rng = self.rng
        for _ in range(config.ops):
            over_budget = self.live_bytes > config.live_byte_budget
            roll = rng.random()
            if over_budget and roll < 0.6:
                if self._emit_release():
                    continue
            if roll < 0.30:
                self._emit_alloc(old=False)
            elif roll < 0.38 and not over_budget:
                self._emit_alloc(old=True)
            elif roll < 0.40 and not over_budget \
                    and self.live_large < config.max_live_large:
                self._emit_alloc_large()
            elif roll < 0.57:
                if not self._emit_link():
                    self._emit_alloc(old=False)
            elif roll < 0.63:
                if not self._emit_move():
                    self._emit_alloc(old=False)
            elif roll < 0.71:
                if not self._emit_link(unlink=True):
                    self._emit_release() or self._emit_alloc(old=False)
            elif roll < 0.81:
                if not self._emit_payload():
                    self._emit_alloc(old=False)
            elif roll < 0.81 + config.gc_probability:
                self.ops.append(FuzzOp("gc"))
            elif roll < (0.81 + config.gc_probability
                         + config.mark_step_probability):
                # One bounded concurrent-marking increment.  STW
                # backends no-op this, so the op keeps the "any
                # subsequence stays executable" shrinker property.
                self.ops.append(FuzzOp("mark_step"))
            else:
                if not self._emit_release():
                    self._emit_alloc(old=False)
        return self.ops


def build_schedule(seed: int, config: FuzzConfig) -> List[FuzzOp]:
    """The deterministic schedule for ``(seed, config)``."""
    return ScheduleBuilder(seed, config).build()
