"""The reachability oracle: live-graph snapshots and trace laws.

A :class:`LiveSnapshot` is an *address-free* canonical form of
everything a collection must preserve: which objects are reachable from
the roots, their klasses and array lengths, their primitive field
values and array payloads, and the full reference topology.  Objects
get canonical ids in BFS discovery order (roots first, in index order;
reference slots in layout order), so two snapshots of the same logical
graph compare equal no matter where the collector moved the objects —
before vs. after one collection, or across entirely different
collectors.

On top of the graph checks, :func:`check_trace_conservation` asserts
the ``GCTrace`` bookkeeping laws against the independent pre-GC
snapshot:

* copy totals are internally consistent and never exceed the live
  bytes that existed before the collection;
* Scan&Push totals match the out-degree sums of the traversed graph
  (exactly for marking collectors, which visit precisely the reachable
  set; as a lower bound for the scavenger, which may additionally
  evacuate young objects kept alive by *dead* old objects on dirty
  cards);
* per-event bounds: pushes never exceed refs, chunks respect the
  array-scan limit, bitmap query caches never exceed the query.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import HeapError, InvalidObjectError, OracleViolation
from repro.gcalgo.trace import (ARRAY_SCAN_CHUNK, GCTrace, Primitive,
                                is_marking_phase)
from repro.heap.heap import JavaHeap
from repro.heap.klass import KlassKind
from repro.units import WORD


@dataclass(frozen=True)
class LiveNode:
    """One reachable object in canonical (address-free) form."""

    klass_name: str
    length: Optional[int]
    refs: Tuple[Optional[int], ...]  #: canonical ids, None = null
    prim_words: Tuple[int, ...]  #: non-reference 64-bit field values
    payload_digest: str  #: sha256 of a type array's payload ("" else)


@dataclass(frozen=True)
class LiveSnapshot:
    """The canonical live graph plus side data for trace checks."""

    root_map: Tuple[Optional[int], ...]  #: root index -> canonical id
    nodes: Tuple[LiveNode, ...]
    total_bytes: int  #: sum of live object sizes
    total_ref_slots: int  #: out-degree sum (slots, nulls included)
    young_ref_slots: int  #: out-degree sum over young-gen objects
    young_count: int  #: reachable objects in the young generation
    #: bytes allocated in the young spaces (live or dead) at snapshot
    #: time — the upper bound on what a scavenge can copy.
    young_used_bytes: int = 0

    def fingerprint(self) -> str:
        """Content hash of the canonical graph (side data excluded)."""
        hasher = hashlib.sha256()
        hasher.update(repr(self.root_map).encode())
        for node in self.nodes:
            hasher.update(repr(node).encode())
        return hasher.hexdigest()


def snapshot_live(heap: JavaHeap) -> LiveSnapshot:
    """BFS the reachable graph into canonical form.

    Raises :class:`OracleViolation` when the traversal hits a
    non-decodable object — a dangling reference *is* the kind of bug
    the oracle exists to catch.
    """
    ids = {}
    order: List[int] = []
    queue: List[int] = []
    for root in heap.roots:
        if root and root not in ids:
            ids[root] = len(order)
            order.append(root)
            queue.append(root)
    raw_refs: List[List[int]] = []
    cursor = 0
    while cursor < len(queue):
        addr = queue[cursor]
        cursor += 1
        try:
            view = heap.object_at(addr)
            targets = [heap.load_ref(slot)
                       for slot in view.reference_slots()]
        except (InvalidObjectError, HeapError) as error:
            raise OracleViolation(
                f"live traversal hit a bad object at {addr:#x}: "
                f"{error}") from error
        raw_refs.append(targets)
        for target in targets:
            if target and target not in ids:
                ids[target] = len(order)
                order.append(target)
                queue.append(target)

    nodes: List[LiveNode] = []
    total_bytes = total_ref_slots = young_ref_slots = young_count = 0
    for addr, targets in zip(order, raw_refs):
        view = heap.object_at(addr)
        klass = view.klass
        payload_digest = ""
        prim_words: Tuple[int, ...] = ()
        if klass.kind is KlassKind.TYPE_ARRAY:
            payload_digest = hashlib.sha256(
                heap.read_payload(view)).hexdigest()
        elif not klass.kind.is_array:
            ref_offsets = set(klass.reference_offsets())
            prim_words = tuple(
                heap.read_u64(addr + off)
                for off in range(16, 16 + klass.field_words * WORD,
                                 WORD)
                if off not in ref_offsets)
        refs = tuple(ids[t] if t else None for t in targets)
        nodes.append(LiveNode(klass.name, view.length, refs,
                              prim_words, payload_digest))
        total_bytes += view.size_bytes
        total_ref_slots += len(targets)
        if heap.layout.in_young(addr):
            young_count += 1
            young_ref_slots += len(targets)
    root_map = tuple(ids[r] if r else None for r in heap.roots)
    young_used = (heap.layout.eden.used
                  + heap.layout.survivor_from.used
                  + heap.layout.survivor_to.used)
    return LiveSnapshot(root_map=root_map, nodes=tuple(nodes),
                        total_bytes=total_bytes,
                        total_ref_slots=total_ref_slots,
                        young_ref_slots=young_ref_slots,
                        young_count=young_count,
                        young_used_bytes=young_used)


def assert_isomorphic(before: LiveSnapshot, after: LiveSnapshot,
                      context: str = "") -> None:
    """Raise :class:`OracleViolation` unless the graphs are identical.

    Canonicalization makes isomorphism a plain equality check; the
    error pinpoints the first diverging root or node for debugging.
    """
    prefix = f"{context}: " if context else ""
    if before.root_map != after.root_map:
        for index, (b, a) in enumerate(zip(before.root_map,
                                           after.root_map)):
            if b != a:
                raise OracleViolation(
                    f"{prefix}root[{index}] maps to node {b} before "
                    f"the collection but {a} after")
        raise OracleViolation(
            f"{prefix}root table length changed "
            f"({len(before.root_map)} -> {len(after.root_map)})")
    if len(before.nodes) != len(after.nodes):
        raise OracleViolation(
            f"{prefix}live object count changed: "
            f"{len(before.nodes)} -> {len(after.nodes)}")
    for index, (b, a) in enumerate(zip(before.nodes, after.nodes)):
        if b != a:
            raise OracleViolation(
                f"{prefix}live node {index} changed across the "
                f"collection:\n  before: {b}\n  after:  {a}")


def check_trace_conservation(trace: GCTrace,
                             before: LiveSnapshot) -> None:
    """Assert the trace's bookkeeping laws against the pre-GC graph."""
    kind = trace.kind
    copy_events = list(trace.events_of(Primitive.COPY))
    copied_bytes = sum(e.size_bytes for e in copy_events)
    if trace.bytes_copied != copied_bytes:
        raise OracleViolation(
            f"{kind}: bytes_copied={trace.bytes_copied} but Copy "
            f"events total {copied_bytes}")
    if trace.objects_copied != len(copy_events):
        raise OracleViolation(
            f"{kind}: objects_copied={trace.objects_copied} but "
            f"{len(copy_events)} Copy events recorded")
    if kind == "minor":
        # The scavenger copies only young objects, but possibly *more*
        # than the reachable ones: dead old objects on dirty cards keep
        # extra young objects alive.  Bound by young bytes allocated.
        if trace.bytes_copied > before.young_used_bytes:
            raise OracleViolation(
                f"minor: copied {trace.bytes_copied} bytes but the "
                f"young generation held only "
                f"{before.young_used_bytes}")
    elif kind in ("sweep", "concurrent"):
        # Mark-sweep and the concurrent cycle never relocate anything.
        if copy_events:
            raise OracleViolation(
                f"{kind}: recorded {len(copy_events)} Copy events; "
                f"a non-moving collector must copy nothing")
    elif trace.bytes_copied > before.total_bytes:
        # Compacting collectors relocate only the live (marked) set.
        raise OracleViolation(
            f"{kind}: copied {trace.bytes_copied} bytes but only "
            f"{before.total_bytes} live bytes existed before the GC")
    if trace.objects_promoted > trace.objects_copied:
        raise OracleViolation(
            f"{kind}: promoted {trace.objects_promoted} objects but "
            f"copied only {trace.objects_copied}")
    if trace.bytes_freed < 0:
        raise OracleViolation(f"{kind}: negative bytes_freed "
                              f"{trace.bytes_freed}")
    for event in trace.events_of(Primitive.SCAN_PUSH):
        if not 0 <= event.pushes <= event.refs <= ARRAY_SCAN_CHUNK:
            raise OracleViolation(
                f"{kind}: Scan&Push event refs={event.refs} "
                f"pushes={event.pushes} violates "
                f"0 <= pushes <= refs <= {ARRAY_SCAN_CHUNK}")
    for event in trace.events_of(Primitive.BITMAP_COUNT):
        if event.bits < 0:
            raise OracleViolation(f"{kind}: negative bitmap query")
        if event.bits_cached is not None \
                and not 0 <= event.bits_cached <= event.bits:
            raise OracleViolation(
                f"{kind}: bitmap cache walk {event.bits_cached} "
                f"exceeds query of {event.bits} bits")
    for event in trace.events_of(Primitive.SEARCH):
        if event.size_bytes <= 0:
            raise OracleViolation(f"{kind}: empty Search block")

    mark_refs = sum(e.refs for e in trace.events
                    if e.primitive is Primitive.SCAN_PUSH
                    and is_marking_phase(e.phase))
    if kind in ("major", "sweep", "g1"):
        # Stop-the-world marking traverses exactly the reachable set,
        # so Scan&Push ref totals must equal the snapshot's out-degree
        # sum and every live object must be visited exactly once.
        if trace.objects_visited != len(before.nodes):
            raise OracleViolation(
                f"{kind}: marked {trace.objects_visited} objects but "
                f"the live graph holds {len(before.nodes)}")
        if mark_refs != before.total_ref_slots:
            raise OracleViolation(
                f"{kind}: mark-phase Scan&Push covered {mark_refs} "
                f"reference slots, live out-degree sum is "
                f"{before.total_ref_slots}")
    elif kind == "concurrent":
        # SATB marking is *relaxed*: everything reachable when the
        # final-mark pause runs (``before``) must have been visited,
        # but floating garbage — live at the snapshot, dead by
        # final-mark — is legitimately visited too.  Hence lower
        # bounds where the STW collectors get equalities.
        if trace.objects_visited < len(before.nodes):
            raise OracleViolation(
                f"concurrent: marked {trace.objects_visited} objects "
                f"but the live graph holds {len(before.nodes)} — SATB "
                f"may over-mark, never under-mark")
        if mark_refs < before.total_ref_slots:
            raise OracleViolation(
                f"concurrent: marking Scan&Push covered {mark_refs} "
                f"reference slots, live out-degree sum is "
                f"{before.total_ref_slots}")
    if kind == "minor":
        evac_refs = sum(e.refs for e in trace.events
                        if e.primitive is Primitive.SCAN_PUSH
                        and e.phase == "evacuate")
        # The scavenger evacuates every reachable young object, plus
        # possibly young objects kept alive only by dead old objects on
        # dirty cards — hence lower bounds, not equalities.
        if trace.objects_copied < before.young_count:
            raise OracleViolation(
                f"minor: evacuated {trace.objects_copied} objects but "
                f"{before.young_count} reachable young objects "
                f"existed")
        if evac_refs < before.young_ref_slots:
            raise OracleViolation(
                f"minor: evacuation Scan&Push covered {evac_refs} "
                f"reference slots, reachable young out-degree sum is "
                f"{before.young_ref_slots}")


class GCOracle:
    """Hook bundle: snapshot before each GC, re-verify after.

    Install :meth:`before` / :meth:`after` as the driver's (or the G1
    collector's) pre/post hooks.  Collections may nest — the scavenger
    runs a full GC first when promotion is unsafe — so snapshots live
    on a stack.
    """

    def __init__(self, verify_spaces: bool = True,
                 post_verify: Optional[Callable[[JavaHeap, str],
                                                None]] = None) -> None:
        #: run the structural heap verifier after every collection
        #: (valid only for the classic generational layout; G1 lays its
        #: regions over the whole range, so its backend disables this).
        self.verify_spaces = verify_spaces
        self.post_verify = post_verify
        self._stack: List[LiveSnapshot] = []
        self.collections = 0
        self.last_snapshot: Optional[LiveSnapshot] = None

    def before(self, heap: JavaHeap, kind: str) -> None:
        self._stack.append(snapshot_live(heap))

    def after(self, heap: JavaHeap, kind: str,
              trace: Optional[GCTrace] = None) -> None:
        if not self._stack:
            raise OracleViolation("post-GC hook fired without a "
                                  "matching pre-GC snapshot")
        before = self._stack.pop()
        after = snapshot_live(heap)
        assert_isomorphic(before, after, context=f"{kind} GC")
        if trace is not None:
            check_trace_conservation(trace, before)
        if kind == "major" and heap.bitmaps.beg.any():
            raise OracleViolation(
                "major GC left stale bits in the mark bitmap")
        if self.verify_spaces:
            from repro.heap.verifier import verify_heap
            # The card table is exact right after minor (re-dirtied
            # through the write barrier) and major (rebuilt) GCs; the
            # sweeper never touches cards.  Young-space reference
            # checks are only valid after a scavenge — mark-compact
            # and sweep leave dead young objects behind whose refs
            # were never adjusted (see verify_space).
            try:
                verify_heap(heap,
                            strict_cards=kind in ("minor", "major"),
                            young_refs=(kind == "minor"))
            except HeapError as error:
                raise OracleViolation(
                    f"{kind} GC left the heap structurally invalid: "
                    f"{error}") from error
        if self.post_verify is not None:
            self.post_verify(heap, kind)
        self.collections += 1
        self.last_snapshot = after


def reachable_addresses(heap: JavaHeap) -> set:
    """The root-reachable object addresses, as raw addresses.

    :func:`snapshot_live` canonicalizes addresses away so snapshots
    compare across moving collectors; the SATB laws are the opposite
    case — they talk about *identity over time* ("the objects live at
    the snapshot"), which only a non-moving collector makes meaningful,
    and which needs the addresses kept.
    """
    seen = set()
    queue: List[int] = []
    for root in heap.roots:
        if root and root not in seen:
            seen.add(root)
            queue.append(root)
    cursor = 0
    while cursor < len(queue):
        addr = queue[cursor]
        cursor += 1
        try:
            view = heap.object_at(addr)
            targets = [heap.load_ref(slot)
                       for slot in view.reference_slots()]
        except (InvalidObjectError, HeapError) as error:
            raise OracleViolation(
                f"live traversal hit a bad object at {addr:#x}: "
                f"{error}") from error
        for target in targets:
            if target and target not in seen:
                seen.add(target)
                queue.append(target)
    return seen


class SATBOracle:
    """The snapshot-at-the-beginning marking laws, checked per cycle.

    Install :meth:`cycle_start` / :meth:`cycle_end` as a
    :class:`~repro.gcalgo.concurrent_mark.ConcurrentMarkGC`'s cycle
    hooks.  At the initial-mark pause it records the reachable address
    set L0; after the final-mark drain it asserts, against the
    collector's own marking state:

    * **weak-reachability safety** — everything reachable *now* is
      marked: the sweep about to run can never free a live object;
    * **no resurrection** — everything marked was either reachable at
      the snapshot or allocated during the cycle: marking invents
      nothing (the complement bounds floating garbage);
    * **drain completeness** — every reference the write barrier
      logged was drained, and the buffer is empty: no logged edge can
      be dropped on the floor between pauses.
    """

    def __init__(self) -> None:
        self._snapshot: Optional[set] = None
        self.cycles = 0

    def cycle_start(self, heap: JavaHeap, collector) -> None:
        self._snapshot = reachable_addresses(heap)

    def cycle_end(self, heap: JavaHeap, collector) -> None:
        if self._snapshot is None:
            raise OracleViolation("SATB cycle-end hook fired without "
                                  "a matching cycle start")
        snapshot = self._snapshot
        self._snapshot = None
        reachable = reachable_addresses(heap)
        unmarked = reachable - collector.marked
        if unmarked:
            addr = min(unmarked)
            raise OracleViolation(
                f"SATB weak-reachability violation: {len(unmarked)} "
                f"reachable objects unmarked at final-mark (first at "
                f"{addr:#x}) — the sweep would free live objects")
        phantom = collector.marked - snapshot \
            - collector.allocated_during_cycle
        if phantom:
            addr = min(phantom)
            raise OracleViolation(
                f"SATB resurrection: {len(phantom)} marked objects "
                f"(first at {addr:#x}) were neither live at the "
                f"snapshot nor allocated during the cycle")
        if collector.satb_drained != collector.satb_logged:
            raise OracleViolation(
                f"SATB drain incomplete: barrier logged "
                f"{collector.satb_logged} references but only "
                f"{collector.satb_drained} were drained")
        if collector.satb_buffer:
            raise OracleViolation(
                f"SATB buffer still holds {len(collector.satb_buffer)} "
                f"entries after the final-mark drain")
        self.cycles += 1
