"""Differential GC fuzzing and invariant verification.

The functional layer's whole value rests on its collectors being
*correct*: a MinorGC that drops a live object or a MajorGC that
miscomputes a bitmap destination silently corrupts every downstream
timing number.  This package turns the hand-written test suite into
unbounded scenario coverage:

* :mod:`repro.fuzz.generator` — a seeded heap-shape generator that
  grows randomized object graphs (instances, ref/prim arrays,
  cross-generational edges, cycles, humongous objects) as a
  backend-independent *mutation schedule*;
* :mod:`repro.fuzz.oracle` — a reachability oracle that snapshots the
  live object graph (identity, field values, topology) before every
  collection and asserts it is isomorphic afterwards, plus the
  ``GCTrace`` conservation laws;
* :mod:`repro.fuzz.executor` — replays one schedule against one
  collector backend (scavenge-only, mark-compact, mark-sweep, G1, or
  the SATB concurrent-marking collector) with the oracle hooked
  around every collection; schedules carry ``mark_step`` ops that
  advance the concurrent collector's marking mid-schedule (no-ops
  elsewhere), and every backend reports how many schedule steps it
  actually executed;
* :mod:`repro.fuzz.differential` — runs the same schedule under every
  collector and cross-checks the surviving live sets;
* :mod:`repro.fuzz.shrink` — minimizes a failing schedule and writes a
  reproducer file a test can replay.

Entry point: ``python -m repro fuzz --seed N --iterations K``.
"""

from repro.fuzz.differential import (SeedResult, fuzz_seed,
                                     run_schedule)
from repro.fuzz.generator import FuzzOp, build_schedule
from repro.fuzz.oracle import (GCOracle, LiveSnapshot, SATBOracle,
                               assert_isomorphic,
                               check_trace_conservation,
                               reachable_addresses, snapshot_live)
from repro.fuzz.shrink import (load_reproducer, replay_reproducer,
                               shrink_schedule, write_reproducer)

__all__ = [
    "FuzzOp",
    "GCOracle",
    "LiveSnapshot",
    "SeedResult",
    "assert_isomorphic",
    "build_schedule",
    "check_trace_conservation",
    "fuzz_seed",
    "load_reproducer",
    "reachable_addresses",
    "replay_reproducer",
    "run_schedule",
    "SATBOracle",
    "shrink_schedule",
    "snapshot_live",
    "write_reproducer",
]
