"""Host-side memory ports.

The host reaches memory through one of two ports:

* :class:`DDR4Port` — the conventional system (channels interleave
  fine-grained, so streams split evenly);
* :class:`HMCHostPort` — everything funnels through the host serial
  link into the cube network; ranges split across cubes by the pinned
  page placement.

Both expose ``stream_range`` (a miss stream with a known base address)
and ``stream_anon`` (residual traffic with no particular address,
spread uniformly).
"""

from __future__ import annotations


from repro.errors import ProtectionFault
from repro.mem.ddr4 import DDR4System
from repro.mem.hmc import HMCSystem
from repro.mem.vm import VirtualMemory
from repro.units import CACHE_LINE


class DDR4Port:
    """Host to DDR4: the Table 2 baseline memory path."""

    name = "ddr4"

    def __init__(self, ddr4: DDR4System) -> None:
        self.ddr4 = ddr4

    @property
    def latency(self) -> float:
        return self.ddr4.access_latency

    @property
    def drain_bandwidth(self) -> float:
        return self.ddr4.total_bandwidth

    def stream_range(self, now: float, addr: int, nbytes: int,
                     chunk: int, mlp: float, dependent_batches: int = 1,
                     priority: bool = False) -> float:
        # Fine-grained channel interleaving makes the base address
        # irrelevant for a bulk stream.
        return self.ddr4.stream(now, nbytes, chunk_bytes=chunk, mlp=mlp,
                                dependent_batches=dependent_batches,
                                priority=priority)

    def stream_anon(self, now: float, nbytes: int, chunk: int,
                    mlp: float, priority: bool = True) -> float:
        return self.ddr4.stream(now, nbytes, chunk_bytes=chunk, mlp=mlp,
                                priority=priority)

    @property
    def bytes_served(self) -> int:
        return self.ddr4.bytes_served

    @property
    def energy_joules(self) -> float:
        return self.ddr4.energy_joules


class HMCHostPort:
    """Host to the HMC network over the external serial link."""

    name = "hmc"

    def __init__(self, hmc: HMCSystem, vm: VirtualMemory,
                 pcid: int = 0) -> None:
        self.hmc = hmc
        self.vm = vm
        self.pcid = pcid
        self._anon_cube = 0

    @property
    def latency(self) -> float:
        central = self.hmc.config.central_cube
        return self.hmc.host_path(central).latency

    @property
    def drain_bandwidth(self) -> float:
        return self.hmc.config.link_bandwidth

    def stream_range(self, now: float, addr: int, nbytes: int,
                     chunk: int, mlp: float, dependent_batches: int = 1,
                     priority: bool = False) -> float:
        if nbytes <= 0:
            return now
        finish = now
        try:
            runs = self.vm.split_range_by_cube(addr, nbytes, self.pcid)
        except ProtectionFault:
            return self.stream_anon(now, nbytes, chunk, mlp,
                                    priority=priority)
        for _, run_len, cube in runs:
            finish = max(finish, self.hmc.host_stream(
                now, cube, run_len, chunk_bytes=chunk, mlp=mlp,
                dependent_batches=dependent_batches, priority=priority))
        return finish

    def take_anon_cube(self) -> int:
        """Claim the next cube of the anonymous round-robin cursor.

        The cursor is *shared state*: residual phase work and faulting
        range streams both advance it, in call order.  The batched
        replay kernels go through this same method so their interleaving
        with the scalar residual path leaves the cursor exactly where
        event-by-event replay would.
        """
        cube = self._anon_cube
        self._anon_cube = (self._anon_cube + 1) % self.hmc.config.cubes
        return cube

    def anon_share(self, nbytes: int) -> int:
        """Per-cube piece size of an anonymous ``nbytes`` stream."""
        return max(CACHE_LINE, nbytes // self.hmc.config.cubes)

    def stream_anon(self, now: float, nbytes: int, chunk: int,
                    mlp: float, priority: bool = True) -> float:
        """Traffic with no recorded address: spread cubes round-robin."""
        if nbytes <= 0:
            return now
        share = self.anon_share(nbytes)
        finish = now
        remaining = nbytes
        while remaining > 0:
            cube = self.take_anon_cube()
            piece = min(share, remaining)
            finish = max(finish, self.hmc.host_stream(
                now, cube, piece, chunk_bytes=chunk, mlp=mlp,
                priority=priority))
            remaining -= piece
        return finish

    @property
    def bytes_served(self) -> int:
        return self.hmc.tsv_bytes

    @property
    def energy_joules(self) -> float:
        return self.hmc.energy_joules
