"""Result records produced by trace replay."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.gcalgo.trace import Primitive


@dataclass
class PlatformEnergy:
    """Energy breakdown of one replay in joules."""

    host_j: float = 0.0
    memory_j: float = 0.0
    charon_j: float = 0.0

    @property
    def total_j(self) -> float:
        return self.host_j + self.memory_j + self.charon_j


@dataclass
class GCTimingResult:
    """Timing/traffic/energy of one GC trace on one platform."""

    platform: str
    gc_kind: str
    wall_seconds: float
    #: per-primitive *work* time summed over threads (for Fig. 4/14).
    primitive_seconds: Dict[Primitive, float] = field(default_factory=dict)
    residual_seconds: float = 0.0
    flush_seconds: float = 0.0
    #: memory traffic during the replay.
    dram_bytes: int = 0
    link_bytes: int = 0
    tsv_bytes: int = 0
    local_fraction: Optional[float] = None
    #: Bitmap Count unit's cache hits/accesses during this replay.
    bitmap_cache_hits: int = 0
    bitmap_cache_accesses: int = 0
    energy: PlatformEnergy = field(default_factory=PlatformEnergy)
    #: which replay kernel produced this result ("event",
    #: "closed-form", a batched kernel name, or "mixed" after combine).
    replay_kernel: str = ""

    @property
    def bitmap_cache_hit_rate(self) -> Optional[float]:
        if self.bitmap_cache_accesses == 0:
            return None
        return self.bitmap_cache_hits / self.bitmap_cache_accesses

    @property
    def offloadable_seconds(self) -> float:
        return sum(self.primitive_seconds.values())

    def primitive_share(self, primitive: Primitive) -> float:
        total = self.offloadable_seconds + self.residual_seconds
        if total == 0:
            return 0.0
        return self.primitive_seconds.get(primitive, 0.0) / total

    @property
    def utilized_bandwidth(self) -> float:
        """Average bytes/second moved during the collection (Fig. 13)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.dram_bytes / self.wall_seconds

    @staticmethod
    def combine(results: "list[GCTimingResult]") -> "GCTimingResult":
        """Aggregate several GC events of one run (same platform)."""
        if not results:
            raise ValueError("cannot combine zero results")
        first = results[0]
        combined = GCTimingResult(
            platform=first.platform,
            gc_kind="all" if len({r.gc_kind for r in results}) > 1
            else first.gc_kind,
            wall_seconds=sum(r.wall_seconds for r in results),
        )
        for result in results:
            for primitive, seconds in result.primitive_seconds.items():
                combined.primitive_seconds[primitive] = \
                    combined.primitive_seconds.get(primitive, 0.0) + seconds
            combined.residual_seconds += result.residual_seconds
            combined.flush_seconds += result.flush_seconds
            combined.dram_bytes += result.dram_bytes
            combined.link_bytes += result.link_bytes
            combined.tsv_bytes += result.tsv_bytes
            combined.energy.host_j += result.energy.host_j
            combined.energy.memory_j += result.energy.memory_j
            combined.energy.charon_j += result.energy.charon_j
        locals_known = [r.local_fraction for r in results
                        if r.local_fraction is not None]
        if locals_known:
            combined.local_fraction = (
                sum(locals_known) / len(locals_known))
        combined.bitmap_cache_hits = sum(r.bitmap_cache_hits
                                         for r in results)
        combined.bitmap_cache_accesses = sum(r.bitmap_cache_accesses
                                             for r in results)
        kernels = {r.replay_kernel for r in results}
        combined.replay_kernel = (first.replay_kernel
                                  if len(kernels) == 1 else "mixed")
        return combined
