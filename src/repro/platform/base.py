"""Platform objects: a host model bound to a memory system, optionally
with a Charon device hanging off it."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config import SystemConfig
from repro.core.device import CharonDevice
from repro.core.intrinsics import CharonRuntime
from repro.cpu.host import HostProcessor
from repro.gcalgo.trace import TraceEvent
from repro.heap.heap import JavaHeap
from repro.mem.ddr4 import DDR4System
from repro.mem.hmc import HMCSystem
from repro.mem.vm import VirtualMemory
from repro.platform.host_costs import HostCostModel
from repro.platform.ports import DDR4Port, HMCHostPort


#: Fast-replay support levels (the three-way answer of
#: :meth:`Platform.fast_replay_support`):
#:
#: * ``closed-form`` — every event's duration is a pure function of the
#:   event; the whole trace vectorizes in numpy with no replay state.
#: * ``batched-stateful`` — durations depend on shared state (FIFO
#:   horizons, caches, unit queues), but all *pure* per-event work can
#:   be precomputed in bulk, leaving only the order-dependent recurrence
#:   to a tight stage-2 loop (see :mod:`repro.platform.batched`).
#: * ``refuse`` — no equivalent kernel exists; replay event by event.
FAST_CLOSED_FORM = "closed-form"
FAST_BATCHED = "batched-stateful"
FAST_REFUSE = "refuse"


class Platform:
    """Common machinery: host processor, memory port, cost model."""

    name = "platform"
    offloads = False

    def __init__(self, config: SystemConfig, port) -> None:
        self.config = config
        self.port = port
        self.host = HostProcessor(config.host, config.caches,
                                  config.costs)
        self.cost_model = HostCostModel(core=self.host.core,
                                        costs=config.costs, port=port)
        self.hmc: Optional[HMCSystem] = None
        self.ddr4: Optional[DDR4System] = None
        self.device: Optional[CharonDevice] = None

    # -- replay hooks ------------------------------------------------------

    def begin_gc(self, now: float) -> float:
        """Hook at GC start; returns the time GC work may begin."""
        return now

    def offload_finish(self, now: float, event: TraceEvent,
                       gc_kind: str) -> float:
        """Completion time of one offloadable primitive event."""
        return self.cost_model.event_finish(now, event)

    def phase_end(self, phase: str) -> None:
        """Hook at each phase barrier (bitmap-cache flushes)."""

    # -- fast-path eligibility ----------------------------------------------

    def fast_replay_support(self, threads: int) -> Tuple[str, str]:
        """How may the fast path reproduce this platform exactly?

        Returns ``(level, reason)`` where ``level`` is one of
        :data:`FAST_CLOSED_FORM` (per-event costs are pure functions of
        the event; batch everything in numpy), :data:`FAST_BATCHED`
        (costs are order-dependent through shared state, but a two-stage
        kernel — numpy precompute plus a tight stateful recurrence loop
        — is exactly equivalent), or :data:`FAST_REFUSE` (no equivalent
        kernel; replay event by event).  Each platform declares its own
        eligibility for a given effective GC thread count; the default
        is a refusal.
        """
        return (FAST_REFUSE,
                "no batched kernel models this platform's event costs")

    # -- accounting ---------------------------------------------------------

    def memory_snapshot(self) -> Tuple[int, float]:
        """(bytes_served, energy_joules) of the memory system."""
        return self.port.bytes_served, self.port.energy_joules

    def traffic_detail(self) -> Dict[str, float]:
        """Extra traffic numbers for Fig. 13 (HMC platforms only)."""
        if self.hmc is None:
            return {}
        return {
            "link_bytes": self.hmc.link_bytes,
            "tsv_bytes": self.hmc.tsv_bytes,
            "local_fraction": self.hmc.local_fraction,
        }

    def charon_busy_seconds(self) -> float:
        return self.device.busy_time_total() if self.device else 0.0

    def bitmap_cache_counters(self) -> Tuple[int, int]:
        """Cumulative (hits, accesses) of the Bitmap Count unit's
        cache reads (Sec. 4.5 reports ~90% hits for this stream)."""
        if self.device is None:
            return 0, 0
        slices = self.device.bitmap_cache.slices
        return (sum(s.read_hits for s in slices),
                sum(s.read_accesses for s in slices))


class CpuDDR4Platform(Platform):
    """The paper's baseline: 8-core OoO host with DDR4."""

    name = "cpu-ddr4"

    def __init__(self, config: SystemConfig) -> None:
        ddr4 = DDR4System(config.ddr4)
        super().__init__(config, DDR4Port(ddr4))
        self.ddr4 = ddr4

    def fast_replay_support(self, threads: int) -> Tuple[str, str]:
        """DDR4 replay always batches; one thread even closes the form.

        With one GC thread the thread's clock is always >= every
        channel-FIFO horizon it has reserved (each event finishes no
        earlier than its own bandwidth reservation), so ``max(now,
        busy_until)`` degenerates to ``now`` and every event's duration
        becomes a closed-form function of the event alone.  Two or more
        threads genuinely contend on the channel FIFOs, but the only
        order-dependent quantities are the two channels' bulk/priority
        horizons and the thread clocks — the batched kernel precomputes
        everything else and runs just that recurrence.
        """
        if threads == 1:
            return (FAST_CLOSED_FORM,
                    "one GC thread never queues on the channel FIFOs")
        return (FAST_BATCHED,
                "channel-FIFO contention couples events across GC "
                "threads; only the horizon recurrence replays in order")


class CpuHMCPlatform(Platform):
    """Host against the HMC's external links (no offloading)."""

    name = "cpu-hmc"

    def __init__(self, config: SystemConfig, heap: JavaHeap,
                 vm: VirtualMemory) -> None:
        hmc = HMCSystem(config.hmc)
        super().__init__(config, HMCHostPort(hmc, vm))
        self.hmc = hmc
        self.vm = vm

    def fast_replay_support(self, threads: int) -> Tuple[str, str]:
        # One event's range splits into per-cube runs that queue behind
        # each other on the shared serial-link FIFOs (and anonymous
        # residual traffic round-robins a cube cursor), so costs are
        # order-dependent even with a single GC thread.  The stateful
        # part is just the link/TSV horizons and the anon cursor; the
        # per-cube routing, service times and latency bounds are pure
        # and precompute in bulk.
        return (FAST_BATCHED,
                "per-cube range routing shares serial-link FIFOs; the "
                "horizon recurrence replays in order, the rest batches")


class CharonPlatform(Platform):
    """Host + Charon in the HMC logic layer (or CPU-side, Fig. 16)."""

    name = "charon"
    offloads = True

    def __init__(self, config: SystemConfig, heap: JavaHeap,
                 vm: VirtualMemory, cpu_side: bool = False) -> None:
        hmc = HMCSystem(config.hmc)
        super().__init__(config, HMCHostPort(hmc, vm))
        self.hmc = hmc
        self.vm = vm
        self.cpu_side = cpu_side
        if cpu_side:
            self.name = "charon-cpuside"
        self.device = CharonDevice(config, hmc, vm, cpu_side=cpu_side)
        self.runtime = CharonRuntime(self.device)
        self.runtime.initialize(heap, vm)
        self._flushed = False

    def begin_gc(self, now: float) -> float:
        """Bulk-flush the host LLC so the units read fresh data
        (Sec. 4.6, 'Effect on Host Cache').  The flushed footprint is
        the scaled-system LLC (see ``CostModelConfig.llc_flush_bytes``)."""
        flush = (self.config.costs.llc_flush_bytes
                 / self.port.drain_bandwidth)
        return now + flush

    def offload_finish(self, now: float, event: TraceEvent,
                       gc_kind: str) -> float:
        dispatch = self.config.costs.charon_dispatch_overhead_s
        return self.runtime.offload_event(now + dispatch, event, gc_kind)

    def phase_end(self, phase: str) -> None:
        self.device.phase_completed(phase)

    def fast_replay_support(self, threads: int) -> Tuple[str, str]:
        return (FAST_BATCHED,
                "unit, link and bitmap-cache state make offload costs "
                "order-dependent; routing, packet and stream maths "
                "precompute in bulk; distributed slices resolve to "
                "per-slice port horizons and tag arrays")


class IdealPlatform(Platform):
    """Offloaded primitives take zero cycles (Fig. 12's upper bound)."""

    name = "ideal"
    offloads = True

    def __init__(self, config: SystemConfig, heap: JavaHeap,
                 vm: VirtualMemory) -> None:
        hmc = HMCSystem(config.hmc)
        super().__init__(config, HMCHostPort(hmc, vm))
        self.hmc = hmc
        self.vm = vm

    def offload_finish(self, now: float, event: TraceEvent,
                       gc_kind: str) -> float:
        return now

    def fast_replay_support(self, threads: int) -> Tuple[str, str]:
        # Zero-cost offloads touch no memory resource at all, so the
        # batched path is exact for any thread count.
        return FAST_CLOSED_FORM, "offloaded primitives are zero-cost"
