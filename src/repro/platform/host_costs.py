"""Host-side primitive cost model.

Each trace event, when executed by a GC thread on the host, costs

``max(compute time, memory time)``

with the instruction/locality constants of
:class:`~repro.config.CostModelConfig` (documented there).  The memory
side is the event's miss stream pushed through the host's memory port
under the core's MLP window; the compute side is the primitive's
instruction stream at the observed GC IPC plus cache-hit service.

This module is shared by every platform that runs primitives on the
host — ``cpu-ddr4`` and ``cpu-hmc`` for all events, and the Charon
platforms for the residual (non-offloaded) work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CostModelConfig
from repro.cpu.core import CoreModel
from repro.gcalgo.trace import (Primitive, ResidualWork, TraceEvent,
                                is_marking_phase)
from repro.units import CACHE_LINE


@dataclass
class HostCostModel:
    """Costs one thread's events against a memory port."""

    core: CoreModel
    costs: CostModelConfig
    port: object  # DDR4Port | HMCHostPort

    def event_finish(self, now: float, event: TraceEvent) -> float:
        """Completion time of ``event`` started at ``now`` on one core."""
        if event.primitive is Primitive.COPY:
            return self._copy(now, event)
        if event.primitive is Primitive.SEARCH:
            return self._search(now, event)
        if event.primitive is Primitive.SCAN_PUSH:
            return self._scan_push(now, event)
        if event.primitive is Primitive.BITMAP_COUNT:
            return self._bitmap_count(now, event)
        raise ValueError(f"unknown primitive {event.primitive}")

    # -- per-primitive models ------------------------------------------------

    def _roofline(self, now: float, instructions: float,
                  touched_bytes: int, hit_fraction: float, addr: int,
                  chunk: int = CACHE_LINE, mlp: float = None,
                  dependent_batches: int = 1,
                  priority: bool = True) -> float:
        mlp = self.core.mlp if mlp is None else mlp
        miss_bytes = int(touched_bytes * (1.0 - hit_fraction))
        hits = (touched_bytes / CACHE_LINE) * hit_fraction
        compute_done = now + self.core.compute_seconds(instructions, hits)
        if miss_bytes <= 0:
            return compute_done
        memory_done = self.port.stream_range(
            now, addr, miss_bytes, chunk, mlp,
            dependent_batches=dependent_batches, priority=priority)
        return max(compute_done, memory_done)

    def _copy(self, now: float, event: TraceEvent) -> float:
        """Software copy loop (Fig. 7): streams src and dst, no reuse.

        The per-object scavenger bookkeeping (claim, allocate, forward)
        is a fixed instruction cost; a small object's copy is two
        *dependent* cold misses (the read, then the write allocate/RFO
        of the destination line), which is what makes tiny-object
        evacuation so much slower than raw bandwidth suggests.  Bulk
        copies use the streaming (non-priority) memory lane.
        """
        size = event.size_bytes
        instructions = size * self.costs.copy_instructions_per_byte \
            + self.costs.copy_object_overhead_instructions
        return self._roofline(now, instructions, 2 * size,
                              self.costs.copy_hit_fraction, event.src,
                              dependent_batches=2, priority=False)

    def _search(self, now: float, event: TraceEvent) -> float:
        """Card-table scan with early exit (Fig. 7 lines 4-8)."""
        examined = event.size_bytes // 2 if event.found \
            else event.size_bytes
        examined = max(1, examined)
        instructions = examined * self.costs.search_instructions_per_card
        return self._roofline(now, instructions, examined,
                              self.costs.search_hit_fraction, event.src)

    def _scan_push(self, now: float, event: TraceEvent) -> float:
        """Reference iteration + referee header probes (Fig. 11).

        The probe of each referenced object's mark word is the random
        access; the window exposes at most the core's MLP of them.  In
        evacuation scans (``push_contents``) the scanned object is hot
        — the thread just copied it — while marking scans
        (``follow_contents``) pop a cold object and serialise the slot
        read before the referee probes.
        """
        refs = max(1, event.refs)
        instructions = refs * self.costs.scan_push_instructions_per_ref
        touched = refs * CACHE_LINE
        marking = is_marking_phase(event.phase)
        hit = (self.costs.scan_push_hit_major if marking
               else self.costs.scan_push_hit_minor)
        return self._roofline(now, instructions, touched, hit,
                              event.src,
                              dependent_batches=2 if marking else 1)

    def _bitmap_count(self, now: float, event: TraceEvent) -> float:
        """The bit-at-a-time loop of Fig. 8: instruction bound.

        When HotSpot's query cache covered part of the range (the
        collector recorded ``bits_cached``), the software walks only
        the delta plus fixed cache bookkeeping.
        """
        bits = max(1, event.bits if event.bits_cached is None
                   else event.bits_cached)
        instructions = 12.0 \
            + bits * self.costs.bitmap_instructions_per_bit
        touched = 2 * (bits // 8 + 1)
        return self._roofline(now, instructions, touched,
                              self.costs.bitmap_hit_fraction, event.src)

    # -- residual work -----------------------------------------------------------

    def residual_seconds(self, now: float, work: ResidualWork,
                         threads: int) -> float:
        """Duration of one thread's share of a phase's residual work."""
        instructions = work.instructions / threads
        touched = work.bytes_accessed // threads
        hit = self.costs.residual_hit_fraction
        miss_bytes = int(touched * (1.0 - hit))
        hits = (touched / CACHE_LINE) * hit
        compute = instructions * self.costs.residual_cpi \
            / self.core.config.freq_hz
        compute += hits * self.costs.cache_hit_latency_s / 4.0
        memory_done = self.port.stream_anon(now, miss_bytes, CACHE_LINE,
                                            self.core.mlp)
        return max(compute, memory_done - now)
