"""Execution platforms and the trace replayer.

Five platforms replay GC primitive traces (Sec. 5.2):

* ``cpu-ddr4`` — the baseline: host cores against the DDR4 system;
* ``cpu-hmc`` — host cores against the HMC's external links;
* ``charon`` — primitives offloaded to the HMC logic layer; residual
  work stays on the host (over HMC);
* ``charon-cpuside`` — the Fig. 16 variant: Charon units beside the
  host memory controller;
* ``ideal`` — offloaded primitives complete in zero time.

Use :func:`~repro.platform.factory.build_platform` to construct one
with fresh memory systems, and :class:`~repro.platform.replay.TraceReplayer`
to run traces on it.
"""

from repro.platform.timing import GCTimingResult, PlatformEnergy
from repro.platform.factory import PLATFORM_NAMES, build_platform
from repro.platform.replay import TraceReplayer
from repro.platform.fast_replay import (FastReplayUnsupported,
                                        FastTraceReplayer, make_replayer)

__all__ = [
    "GCTimingResult",
    "PlatformEnergy",
    "PLATFORM_NAMES",
    "build_platform",
    "TraceReplayer",
    "FastReplayUnsupported",
    "FastTraceReplayer",
    "make_replayer",
]
