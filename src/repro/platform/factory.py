"""Construction of platform instances with fresh memory systems.

Each platform gets its own DDR4/HMC resources (fluid-flow state is
per-run), plus — for the HMC-based ones — a virtual-memory map pinning
the heap and its metadata (card table, bitmaps) on interleaved huge
pages, exactly the Sec. 4.6 launch sequence.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.heap.heap import JavaHeap
from repro.mem.vm import VirtualMemory
from repro.platform.base import (CharonPlatform, CpuDDR4Platform,
                                 CpuHMCPlatform, IdealPlatform, Platform)
from repro.units import align_up

PLATFORM_NAMES = ("cpu-ddr4", "cpu-hmc", "charon", "charon-cpuside",
                  "ideal")


def build_vm(config: SystemConfig, heap: JavaHeap,
             pcid: int = 0) -> VirtualMemory:
    """Pin the heap on huge pages and the GC metadata (card table and
    mark bitmaps) on finer pinned pages, both interleaved over cubes."""
    vm = VirtualMemory(huge_page_bytes=config.vm.huge_page_bytes,
                       cubes=config.hmc.cubes,
                       small_page_bytes=config.vm.small_page_bytes)
    base = heap.layout.heap_start
    if base % config.vm.huge_page_bytes:
        raise ConfigError("heap base must be huge-page aligned")
    heap_size = align_up(heap.layout.heap_end - base,
                         config.vm.huge_page_bytes)
    vm.map_heap(base, heap_size, pcid=pcid)
    metadata_page = config.vm.metadata_page_bytes
    metadata_base = heap.card_table.table_base
    if metadata_base < base + heap_size or metadata_base % metadata_page:
        raise ConfigError("metadata region overlaps the heap mapping")
    metadata_end = heap.bitmaps.bitmap_base + 2 * heap.bitmaps.bitmap_bytes
    metadata_size = align_up(metadata_end - metadata_base, metadata_page)
    vm.map_pinned(metadata_base, metadata_size, metadata_page, pcid=pcid)
    return vm


def build_platform(name: str, config: SystemConfig,
                   heap: JavaHeap,
                   vm: Optional[VirtualMemory] = None) -> Platform:
    """Build a named platform bound to ``heap``'s address layout."""
    if name not in PLATFORM_NAMES:
        raise ConfigError(
            f"unknown platform {name!r}; choose from {PLATFORM_NAMES}")
    if name == "cpu-ddr4":
        return CpuDDR4Platform(config)
    if vm is None:
        vm = build_vm(config, heap)
    if name == "cpu-hmc":
        return CpuHMCPlatform(config, heap, vm)
    if name == "charon":
        return CharonPlatform(config, heap, vm, cpu_side=False)
    if name == "charon-cpuside":
        return CharonPlatform(config, heap, vm, cpu_side=True)
    return IdealPlatform(config, heap, vm)
