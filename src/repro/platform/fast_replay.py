"""Vectorized fast-path trace replay.

The event-by-event :class:`~repro.platform.replay.TraceReplayer` walks
every :class:`~repro.gcalgo.trace.TraceEvent` through Python attribute
dispatch; for large traces the *timing layer* dominates experiment
runtime.  :class:`FastTraceReplayer` costs a whole
:class:`~repro.gcalgo.columnar.CompiledTrace` in a handful of numpy
array operations instead.

The fast path is only offered where it is provably *equivalent* to the
event-by-event replay — each platform declares its own eligibility via
:meth:`~repro.platform.base.Platform.fast_replay_support`:

* ``ideal`` — offloaded primitives are zero-cost and touch no memory
  resource, so batching is exact for any thread count;
* ``cpu-ddr4`` with one GC thread — a single thread's clock is always
  at or past every channel-FIFO horizon it reserved (each event
  finishes no earlier than its own bandwidth reservation), so
  ``max(now, busy_until)`` degenerates to ``now`` and each event's
  duration is a closed-form function of the event alone;
* everything else (multi-threaded DDR4, ``cpu-hmc``, the Charon
  platforms) refuses: FIFO contention, per-cube routing, the bitmap
  cache and command queues make costs order-dependent.

:func:`make_replayer` selects automatically: the fast path where
supported, the event-by-event replayer otherwise.

Equivalence contract (what the golden tests in
``tests/test_fast_replay_equivalence.py`` assert): integer counters
(DRAM/link/TSV bytes, bitmap-cache hits/accesses) are *exactly* equal —
they are pure integer functions of the events — while float quantities
(wall, per-primitive seconds, energy) agree to 1e-9 relative tolerance,
absorbing the summation-order difference between a sequential clock
chain and a batched reduction (~n·eps).
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.errors import ConfigError, ReproError
from repro.gcalgo.columnar import (CODE_TO_PRIMITIVE, CompiledTrace,
                                   NO_BITS_CACHED, compile_trace)
from repro.gcalgo.trace import GCTrace, Primitive, PRIMITIVE_TYPE_CODES
from repro.obs.tracer import get_tracer
from repro.platform.base import Platform
from repro.platform.replay import TraceReplayer
from repro.platform.timing import GCTimingResult
from repro.units import CACHE_LINE


class FastReplayUnsupported(ReproError):
    """The platform's event costs cannot be batched (its
    :meth:`~repro.platform.base.Platform.fast_replay_support` refused)."""


class FastTraceReplayer(TraceReplayer):
    """Batched replay for platforms whose event costs are stateless.

    Accepts :class:`GCTrace` or :class:`CompiledTrace` inputs (objects
    are compiled on the fly; feed compiled traces to skip that cost).
    Residual (non-offloadable) phase work still goes through the real
    :meth:`HostCostModel.residual_seconds` scalar path in phase order,
    so its resource accounting — and on HMC-backed platforms its
    stateful cube round-robin — evolves identically to the event-by-
    event replayer.
    """

    def __init__(self, platform: Platform,
                 threads: Optional[int] = None) -> None:
        super().__init__(platform, threads=threads)
        supported, why = platform.fast_replay_support(self.threads)
        if not supported:
            raise FastReplayUnsupported(f"{platform.name}: {why}")
        self._kernel = _kernel_for(platform)

    def replay(self, trace: Union[GCTrace, CompiledTrace]
               ) -> GCTimingResult:
        compiled = (trace if isinstance(trace, CompiledTrace)
                    else compile_trace(trace))
        platform = self.platform
        # Single enabled check per GC; the vectorized hot path below
        # only pays an ``is None`` test per *phase*, not per event.
        obs = get_tracer()
        if not obs.enabled:
            obs = None
        gc_start = self.clock
        work_start = platform.begin_gc(gc_start)
        flush_seconds = work_start - gc_start
        if obs is not None and flush_seconds > 0.0:
            obs.add_span("llc-flush", gc_start, flush_seconds,
                         cat="phase", args={"platform": platform.name})

        primitive_seconds: Dict[Primitive, float] = {}
        residual_seconds = 0.0
        host_busy = flush_seconds
        before = self._snapshot()

        durations = self._kernel.charge(compiled)
        prim = compiled.events["prim"]
        now = work_start
        runs = compiled.phase_runs()
        for name, lo, hi in runs:
            phase_start = now
            seg = durations[lo:hi]
            # Phase makespan: one thread runs the events back to back;
            # with several threads only the zero-duration ideal kernel
            # is eligible, where any assignment has a zero makespan.
            span = float(seg.sum()) if self.threads == 1 else 0.0
            codes = prim[lo:hi]
            for code in np.unique(codes):
                key = CODE_TO_PRIMITIVE[int(code)]
                primitive_seconds[key] = primitive_seconds.get(key, 0.0) \
                    + float(seg[codes == code].sum())
            if not platform.offloads:
                host_busy += span
            now += span
            work = compiled.residuals.get(name)
            if work is not None:
                share = platform.cost_model.residual_seconds(
                    now, work, self._residual_threads)
                residual_seconds += share * self._residual_threads
                host_busy += share * self._residual_threads
                now += share
            platform.phase_end(name)
            if obs is not None:
                obs.add_span(name, phase_start, now - phase_start,
                             cat="phase", args={"gc": compiled.kind,
                                                "events": hi - lo})

        # Residual-only phases that had no events (e.g. summary), in
        # the trace's insertion order — same as the event-by-event path.
        seen = {name for name, _, _ in runs}
        for name, work in compiled.residuals.items():
            if name in seen:
                continue
            share = platform.cost_model.residual_seconds(
                now, work, self._residual_threads)
            residual_seconds += share * self._residual_threads
            host_busy += share * self._residual_threads
            if obs is not None:
                obs.add_span(name, now, share, cat="phase",
                             args={"gc": compiled.kind, "events": 0})
            now += share
            platform.phase_end(name)

        if obs is not None:
            obs.add_span(f"{compiled.kind} gc", gc_start, now - gc_start,
                         cat="gc",
                         args={"platform": platform.name,
                               "events": len(compiled.events)})
        self.clock = now
        return self._package(compiled.kind, gc_start, now, flush_seconds,
                             primitive_seconds, residual_seconds,
                             host_busy, before)


def make_replayer(platform: Platform, threads: Optional[int] = None,
                  mode: str = "auto") -> TraceReplayer:
    """Build the right replayer for ``platform``.

    ``mode`` is ``"auto"`` (fast path where the platform supports it,
    event-by-event otherwise), ``"fast"`` (require the fast path; raise
    :class:`FastReplayUnsupported` where it would not be equivalent) or
    ``"event"`` (force the event-by-event replayer).
    """
    if mode == "event":
        return TraceReplayer(platform, threads=threads)
    if mode not in ("auto", "fast"):
        raise ConfigError(f"unknown replay mode {mode!r}; "
                          f"expected auto, fast or event")
    try:
        return FastTraceReplayer(platform, threads=threads)
    except FastReplayUnsupported:
        if mode == "fast":
            raise
        return TraceReplayer(platform, threads=threads)


# -- kernels ---------------------------------------------------------------

def _kernel_for(platform: Platform):
    if platform.name == "ideal":
        return _ZeroKernel()
    if platform.name == "cpu-ddr4":
        return _DDR4Kernel(platform)
    # A platform that newly claims support must also get a kernel here;
    # fail loudly rather than misprice its events.
    raise FastReplayUnsupported(
        f"{platform.name}: no vectorized kernel implements this platform")


class _ZeroKernel:
    """The ideal platform: offloaded primitives take zero cycles and
    generate no memory traffic."""

    def charge(self, compiled: CompiledTrace) -> np.ndarray:
        return np.zeros(len(compiled.events), dtype=np.float64)


class _DDR4Kernel:
    """Closed-form single-thread DDR4 event costs.

    Replicates ``HostCostModel._roofline`` composed with
    ``DDR4System.stream`` under the no-queue invariant (see
    :meth:`CpuDDR4Platform.fast_replay_support`), keeping the same
    IEEE-754 operation order as the scalar code wherever the arithmetic
    is per-event, so the batched durations match the sequential ones to
    the last bit *before* the clock summation.

    ``charge`` also performs the event stream's byte/energy accounting
    against the real channel resources in bulk.  The FIFO horizons
    (``busy_until``/``small_busy_until``) are deliberately left
    untouched: under the no-queue invariant every horizon the scalar
    path would have written is at or below the thread clock at every
    later reservation, so ``max(now, horizon)`` resolves to ``now``
    with or without them.
    """

    def __init__(self, platform: Platform) -> None:
        core = platform.host.core
        costs = platform.config.costs
        ddr4 = platform.ddr4
        self.costs = costs
        self.channels = ddr4.channels
        self.n_ch = len(ddr4.channels)
        channel = ddr4.channels[0]
        self.ch_rate = channel.rate
        self.ch_latency = channel.latency  # == ResourcePath.latency here
        self.epb = channel.energy_per_byte
        self.ipc_hz = core.config.gc_ipc * core.config.freq_hz
        self.hit_lat = costs.cache_hit_latency_s
        self.ch_mlp = max(1.0, core.mlp / self.n_ch)

    def charge(self, compiled: CompiledTrace) -> np.ndarray:
        costs = self.costs
        ev = compiled.events
        prim = ev["prim"]
        n = len(ev)
        instr = np.zeros(n, dtype=np.float64)
        touched = np.zeros(n, dtype=np.int64)
        hitf = np.zeros(n, dtype=np.float64)
        dep = np.ones(n, dtype=np.float64)

        copy = prim == PRIMITIVE_TYPE_CODES[Primitive.COPY]
        search = prim == PRIMITIVE_TYPE_CODES[Primitive.SEARCH]
        scan = prim == PRIMITIVE_TYPE_CODES[Primitive.SCAN_PUSH]
        bitmap = prim == PRIMITIVE_TYPE_CODES[Primitive.BITMAP_COUNT]
        known = int(copy.sum() + search.sum() + scan.sum() + bitmap.sum())
        if known != n:
            raise ConfigError("trace contains primitive codes the DDR4 "
                              "kernel does not price")

        if copy.any():
            size = ev["size_bytes"][copy]
            instr[copy] = size * costs.copy_instructions_per_byte \
                + costs.copy_object_overhead_instructions
            touched[copy] = 2 * size
            hitf[copy] = costs.copy_hit_fraction
            dep[copy] = 2.0
        if search.any():
            size = ev["size_bytes"][search]
            found = ev["found"][search].astype(bool)
            examined = np.maximum(1, np.where(found, size // 2, size))
            instr[search] = examined * costs.search_instructions_per_card
            touched[search] = examined
            hitf[search] = costs.search_hit_fraction
        if scan.any():
            refs = np.maximum(1, ev["refs"][scan])
            instr[scan] = refs * costs.scan_push_instructions_per_ref
            touched[scan] = refs * CACHE_LINE
            try:
                mark_id = compiled.phase_names.index("mark")
            except ValueError:
                marking = np.zeros(int(scan.sum()), dtype=bool)
            else:
                marking = ev["phase"][scan] == mark_id
            hitf[scan] = np.where(marking, costs.scan_push_hit_major,
                                  costs.scan_push_hit_minor)
            dep[scan] = np.where(marking, 2.0, 1.0)
        if bitmap.any():
            bits = ev["bits"][bitmap]
            cached = ev["bits_cached"][bitmap]
            b = np.maximum(1, np.where(cached == NO_BITS_CACHED,
                                       bits, cached))
            instr[bitmap] = 12.0 + b * costs.bitmap_instructions_per_bit
            touched[bitmap] = 2 * (b // 8 + 1)
            hitf[bitmap] = costs.bitmap_hit_fraction

        touched_f = touched.astype(np.float64)
        miss = (touched_f * (1.0 - hitf)).astype(np.int64)
        hits = touched_f / CACHE_LINE * hitf
        compute = instr / self.ipc_hz + hits * self.hit_lat / 4.0

        # DDR4System.stream: each channel serves round(miss / channels)
        # bytes; int(round()) is round-half-to-even, i.e. np.rint.
        share = miss.astype(np.float64) / self.n_ch
        r = np.rint(share)
        r_i = r.astype(np.int64)
        service = r / self.ch_rate
        n_req = np.ceil(r / CACHE_LINE)
        lat_rel = self.ch_latency * dep \
            + (n_req - 1.0) * (self.ch_latency / self.ch_mlp)
        mem_rel = np.where(r_i > 0, np.maximum(service, lat_rel),
                           self.ch_latency * dep)
        durations = np.where(miss > 0, np.maximum(compute, mem_rel),
                             compute)

        # Bulk byte/energy accounting: ResourcePath.stream reserves the
        # per-channel share on every channel once per event with a
        # positive rounded share (a zero share returns before reserving).
        served = r_i > 0
        if served.any():
            r_served = r_i[served]
            total_bytes = int(r_served.sum())
            busy = float(service[served].sum())
            energy = float((r_served * self.epb).sum())
            requests = int(served.sum())
            for channel in self.channels:
                channel.bytes_served += total_bytes
                channel.busy_time += busy
                channel.energy_joules += energy
                channel.requests += requests
        return durations
