"""Vectorized fast-path trace replay.

The event-by-event :class:`~repro.platform.replay.TraceReplayer` walks
every :class:`~repro.gcalgo.trace.TraceEvent` through Python attribute
dispatch; for large traces the *timing layer* dominates experiment
runtime.  :class:`FastTraceReplayer` costs a whole
:class:`~repro.gcalgo.columnar.CompiledTrace` through one of two kernel
families instead, selected by the platform's own eligibility answer
(:meth:`~repro.platform.base.Platform.fast_replay_support`):

* **closed-form** (``ideal``; ``cpu-ddr4`` with one GC thread) — every
  event's duration is a pure function of the event, so the whole trace
  prices in a handful of numpy array operations;
* **batched-stateful** (multi-threaded ``cpu-ddr4``, ``cpu-hmc``,
  ``charon`` — unified or ``--distributed`` — and
  ``charon-cpuside``) — costs are order-dependent through shared
  state, so a two-stage kernel from :mod:`repro.platform.batched`
  precomputes all pure per-event work in bulk and replays only the
  stateful recurrence (thread clocks, FIFO horizons, unit queues,
  per-slice TLB/bitmap-cache ports and tags) in a tight loop;
* **refuse** (only the abstract base platform) — no equivalent kernel
  exists and :class:`FastReplayUnsupported` is raised;
  :func:`make_replayer` falls back to event-by-event replay in
  ``auto`` mode.

Equivalence contract (what the golden tests in
``tests/test_fast_replay_equivalence.py`` assert): integer counters
(DRAM/link/TSV bytes, bitmap-cache hits/accesses) are *exactly* equal —
they are pure integer functions of the events — while float quantities
(wall, per-primitive seconds, energy) agree to 1e-9 relative tolerance,
absorbing the summation-order difference between per-event and bulk
accounting (~n*eps).
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.errors import ConfigError
from repro.gcalgo.columnar import (CODE_TO_PRIMITIVE, CompiledTrace,
                                   compile_trace)
from repro.gcalgo.trace import GCTrace, Primitive
from repro.obs.eventlog import COLLECTOR_FOR_KIND, get_eventlog
from repro.obs.tracer import get_tracer
from repro.platform.base import (FAST_BATCHED, FAST_CLOSED_FORM,
                                 FAST_REFUSE, Platform)
from repro.platform.batched import (FastReplayUnsupported,
                                    batched_kernel_for,
                                    host_event_columns)
from repro.platform.replay import TraceReplayer, perf_counter
from repro.platform.timing import GCTimingResult

__all__ = ["FastReplayUnsupported", "FastTraceReplayer",
           "make_replayer"]


class FastTraceReplayer(TraceReplayer):
    """Batched replay for platforms that declare an equivalent kernel.

    Accepts :class:`GCTrace` or :class:`CompiledTrace` inputs (objects
    are compiled on the fly; feed compiled traces to skip that cost).
    Residual (non-offloadable) phase work still goes through the real
    :meth:`HostCostModel.residual_seconds` scalar path in phase order,
    so its resource accounting — and on HMC-backed platforms its
    stateful cube round-robin — evolves identically to the event-by-
    event replayer.
    """

    def __init__(self, platform: Platform,
                 threads: Optional[int] = None) -> None:
        super().__init__(platform, threads=threads)
        level, why = platform.fast_replay_support(self.threads)
        if level == FAST_REFUSE:
            raise FastReplayUnsupported(f"{platform.name}: {why}")
        if level == FAST_CLOSED_FORM:
            self._kernel = _kernel_for(platform)
            self._batched = None
            self.kernel_name = "closed-form"
        elif level == FAST_BATCHED:
            self._kernel = None
            self._batched = batched_kernel_for(platform, self.threads)
            self.kernel_name = self._batched.name
        else:  # pragma: no cover - platforms only return the three
            raise ConfigError(f"unknown fast-replay level {level!r}")

    def replay(self, trace: Union[GCTrace, CompiledTrace]
               ) -> GCTimingResult:
        compiled = (trace if isinstance(trace, CompiledTrace)
                    else compile_trace(trace))
        if self._batched is not None:
            return self._replay_batched(compiled)
        return self._replay_closed_form(compiled)

    # -- batched-stateful path ---------------------------------------------

    def _replay_batched(self, compiled: CompiledTrace) -> GCTimingResult:
        platform = self.platform
        kernel = self._batched
        started = perf_counter()
        chunks_before = kernel.chunks_processed
        obs = get_tracer()
        if not obs.enabled:
            obs = None
        gc_start = self.clock
        work_start = platform.begin_gc(gc_start)
        flush_seconds = work_start - gc_start
        if obs is not None and flush_seconds > 0.0:
            obs.add_span("llc-flush", gc_start, flush_seconds,
                         cat="phase", args={"platform": platform.name})

        primitive_seconds: Dict[Primitive, float] = {}
        residual_seconds = 0.0
        host_busy = flush_seconds
        before = self._snapshot()
        # Stage 1: plans and bulk accounting for the whole trace (after
        # the snapshot so counter deltas attribute to this GC).
        kernel.begin(compiled)

        now = work_start
        runs = compiled.phase_runs()
        for name, lo, hi in runs:
            phase_start = now
            barrier, busy = kernel.run_phase(lo, hi, now,
                                             primitive_seconds)
            host_busy += busy
            now = barrier
            work = compiled.residuals.get(name)
            if work is not None:
                share = platform.cost_model.residual_seconds(
                    now, work, self._residual_threads)
                residual_seconds += share * self._residual_threads
                host_busy += share * self._residual_threads
                now += share
            platform.phase_end(name)
            if obs is not None:
                obs.add_span(name, phase_start, now - phase_start,
                             cat="phase", args={"gc": compiled.kind,
                                                "events": hi - lo})

        # Residual-only phases that had no events (e.g. summary), in
        # the trace's insertion order — same as the event-by-event path.
        seen = {name for name, _, _ in runs}
        for name, work in compiled.residuals.items():
            if name in seen:
                continue
            share = platform.cost_model.residual_seconds(
                now, work, self._residual_threads)
            residual_seconds += share * self._residual_threads
            host_busy += share * self._residual_threads
            if obs is not None:
                obs.add_span(name, now, share, cat="phase",
                             args={"gc": compiled.kind, "events": 0})
            now += share
            platform.phase_end(name)

        if obs is not None:
            obs.add_span(f"{compiled.kind} gc", gc_start, now - gc_start,
                         cat="gc",
                         args={"platform": platform.name,
                               "events": len(compiled.events)})
        self.clock = now
        result = self._package(compiled.kind, gc_start, now,
                               flush_seconds, primitive_seconds,
                               residual_seconds, host_busy, before)
        host_seconds = perf_counter() - started
        self._note_replay(len(compiled.events), host_seconds,
                          chunks=kernel.chunks_processed - chunks_before)
        eventlog = get_eventlog()
        if eventlog.enabled:
            eventlog.emit(
                "gc_pause",
                collector=COLLECTOR_FOR_KIND.get(compiled.kind,
                                                 compiled.kind),
                kind=compiled.kind, platform=platform.name,
                sim_ns=int((now - gc_start) * 1e9),
                host_ns=int(host_seconds * 1e9),
                events=len(compiled.events))
        return result

    # -- closed-form path ----------------------------------------------------

    def _replay_closed_form(self, compiled: CompiledTrace
                            ) -> GCTimingResult:
        platform = self.platform
        started = perf_counter()
        # Single enabled check per GC; the vectorized hot path below
        # only pays an ``is None`` test per *phase*, not per event.
        obs = get_tracer()
        if not obs.enabled:
            obs = None
        gc_start = self.clock
        work_start = platform.begin_gc(gc_start)
        flush_seconds = work_start - gc_start
        if obs is not None and flush_seconds > 0.0:
            obs.add_span("llc-flush", gc_start, flush_seconds,
                         cat="phase", args={"platform": platform.name})

        primitive_seconds: Dict[Primitive, float] = {}
        residual_seconds = 0.0
        host_busy = flush_seconds
        before = self._snapshot()

        durations = self._kernel.charge(compiled)
        prim = compiled.events["prim"]
        now = work_start
        runs = compiled.phase_runs()
        for name, lo, hi in runs:
            phase_start = now
            seg = durations[lo:hi]
            # Phase makespan: one thread runs the events back to back;
            # with several threads only the zero-duration ideal kernel
            # is eligible, where any assignment has a zero makespan.
            span = float(seg.sum()) if self.threads == 1 else 0.0
            codes = prim[lo:hi]
            for code in np.unique(codes):
                key = CODE_TO_PRIMITIVE[int(code)]
                primitive_seconds[key] = primitive_seconds.get(key, 0.0) \
                    + float(seg[codes == code].sum())
            if not platform.offloads:
                host_busy += span
            now += span
            work = compiled.residuals.get(name)
            if work is not None:
                share = platform.cost_model.residual_seconds(
                    now, work, self._residual_threads)
                residual_seconds += share * self._residual_threads
                host_busy += share * self._residual_threads
                now += share
            platform.phase_end(name)
            if obs is not None:
                obs.add_span(name, phase_start, now - phase_start,
                             cat="phase", args={"gc": compiled.kind,
                                                "events": hi - lo})

        # Residual-only phases that had no events (e.g. summary), in
        # the trace's insertion order — same as the event-by-event path.
        seen = {name for name, _, _ in runs}
        for name, work in compiled.residuals.items():
            if name in seen:
                continue
            share = platform.cost_model.residual_seconds(
                now, work, self._residual_threads)
            residual_seconds += share * self._residual_threads
            host_busy += share * self._residual_threads
            if obs is not None:
                obs.add_span(name, now, share, cat="phase",
                             args={"gc": compiled.kind, "events": 0})
            now += share
            platform.phase_end(name)

        if obs is not None:
            obs.add_span(f"{compiled.kind} gc", gc_start, now - gc_start,
                         cat="gc",
                         args={"platform": platform.name,
                               "events": len(compiled.events)})
        self.clock = now
        result = self._package(compiled.kind, gc_start, now,
                               flush_seconds, primitive_seconds,
                               residual_seconds, host_busy, before)
        host_seconds = perf_counter() - started
        self._note_replay(len(compiled.events), host_seconds)
        eventlog = get_eventlog()
        if eventlog.enabled:
            eventlog.emit(
                "gc_pause",
                collector=COLLECTOR_FOR_KIND.get(compiled.kind,
                                                 compiled.kind),
                kind=compiled.kind, platform=platform.name,
                sim_ns=int((now - gc_start) * 1e9),
                host_ns=int(host_seconds * 1e9),
                events=len(compiled.events))
        return result


def make_replayer(platform: Platform, threads: Optional[int] = None,
                  mode: str = "auto") -> TraceReplayer:
    """Build the right replayer for ``platform``.

    ``mode`` is ``"auto"`` (fast path where the platform supports it,
    event-by-event otherwise), ``"fast"`` (require the fast path; raise
    :class:`FastReplayUnsupported` where it would not be equivalent) or
    ``"event"`` (force the event-by-event replayer).
    """
    if mode == "event":
        return TraceReplayer(platform, threads=threads)
    if mode not in ("auto", "fast"):
        raise ConfigError(f"unknown replay mode {mode!r}; "
                          f"expected auto, fast or event")
    try:
        return FastTraceReplayer(platform, threads=threads)
    except FastReplayUnsupported:
        if mode == "fast":
            raise
        # Auto-mode fallbacks are recorded so a silently event-by-event
        # experiment is visible in `repro stats` (and fails the CI
        # fast-path-coverage check when it should not happen).
        from repro.obs.metrics import global_metrics
        global_metrics().scope("replay").counter(
            "kernel_fallbacks",
            "auto-mode fallbacks to event-by-event replay",
            platform=platform.name).add(1)
        eventlog = get_eventlog()
        if eventlog.enabled:
            eventlog.emit("fallback", platform=platform.name,
                          to="event")
        return TraceReplayer(platform, threads=threads)


# -- closed-form kernels ----------------------------------------------------

def _kernel_for(platform: Platform):
    if platform.name == "ideal":
        return _ZeroKernel()
    if platform.name == "cpu-ddr4":
        return _DDR4Kernel(platform)
    # A platform that newly claims closed-form support must also get a
    # kernel here; fail loudly rather than misprice its events.
    raise FastReplayUnsupported(
        f"{platform.name}: no closed-form kernel implements this "
        f"platform")


class _ZeroKernel:
    """The ideal platform: offloaded primitives take zero cycles and
    generate no memory traffic."""

    def charge(self, compiled: CompiledTrace) -> np.ndarray:
        return np.zeros(len(compiled.events), dtype=np.float64)


class _DDR4Kernel:
    """Closed-form single-thread DDR4 event costs.

    Replicates ``HostCostModel._roofline`` composed with
    ``DDR4System.stream`` under the no-queue invariant (see
    :meth:`CpuDDR4Platform.fast_replay_support`), keeping the same
    IEEE-754 operation order as the scalar code wherever the arithmetic
    is per-event, so the batched durations match the sequential ones to
    the last bit *before* the clock summation.

    ``charge`` also performs the event stream's byte/energy accounting
    against the real channel resources in bulk.  The FIFO horizons
    (``busy_until``/``small_busy_until``) are deliberately left
    untouched: under the no-queue invariant every horizon the scalar
    path would have written is at or below the thread clock at every
    later reservation, so ``max(now, horizon)`` resolves to ``now``
    with or without them.
    """

    def __init__(self, platform: Platform) -> None:
        core = platform.host.core
        costs = platform.config.costs
        ddr4 = platform.ddr4
        self.costs = costs
        self.channels = ddr4.channels
        self.n_ch = len(ddr4.channels)
        channel = ddr4.channels[0]
        self.ch_rate = channel.rate
        self.ch_latency = channel.latency  # == ResourcePath.latency here
        self.ipc_hz = core.config.gc_ipc * core.config.freq_hz
        self.hit_lat = costs.cache_hit_latency_s
        self.ch_mlp = max(1.0, core.mlp / self.n_ch)

    def charge(self, compiled: CompiledTrace) -> np.ndarray:
        compute, miss, dep, _priority = host_event_columns(
            compiled, self.costs, self.ipc_hz, self.hit_lat)

        # DDR4System.stream: each channel serves round(miss / channels)
        # bytes; int(round()) is round-half-to-even, i.e. np.rint.
        share = miss.astype(np.float64) / self.n_ch
        r = np.rint(share)
        r_i = r.astype(np.int64)
        service = r / self.ch_rate
        n_req = np.ceil(r / 64)
        lat_rel = self.ch_latency * dep \
            + (n_req - 1.0) * (self.ch_latency / self.ch_mlp)
        mem_rel = np.where(r_i > 0, np.maximum(service, lat_rel),
                           self.ch_latency * dep)
        durations = np.where(miss > 0, np.maximum(compute, mem_rel),
                             compute)

        # Bulk byte/energy accounting: ResourcePath.stream reserves the
        # per-channel share on every channel once per event with a
        # positive rounded share (a zero share returns before reserving).
        served = r_i > 0
        if served.any():
            total_bytes = int(r_i[served].sum())
            requests = int(served.sum())
            for channel in self.channels:
                channel.account_bulk(total_bytes, requests)
        return durations
