"""The trace replayer: traces x platform -> timing/energy results.

Events execute on the configured number of GC threads.  Within each
phase, every event goes to the least-loaded thread (work stealing keeps
HotSpot's parallel collectors balanced, so the least-loaded assignment
is the right approximation); phase boundaries are barriers, and each
phase's residual (non-offloadable) host work is divided evenly across
threads at its barrier.  Resource contention couples the threads: every
memory stream reserves real bandwidth on the shared fluid resources, so
eight threads hammering two DDR4 channels saturate exactly as the paper
describes.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Dict, Iterable, List, Tuple

from repro.gcalgo.trace import GCTrace, Primitive, TraceEvent
from repro.obs.eventlog import COLLECTOR_FOR_KIND, get_eventlog
from repro.obs.tracer import get_tracer
from repro.platform.base import Platform
from repro.platform.timing import GCTimingResult, PlatformEnergy


class TraceReplayer:
    """Replays successive GC traces on one platform instance."""

    #: Which replay kernel this replayer drives; the fast path
    #: overrides it ("closed-form" or a batched kernel name) and every
    #: result carries it as ``replay_kernel``.
    kernel_name = "event"

    def __init__(self, platform: Platform, threads: int = None) -> None:
        self.platform = platform
        self.threads = (platform.config.gc_threads if threads is None
                        else threads)
        if self.threads < 1:
            raise ValueError("need at least one GC thread")
        cores = platform.config.host.num_cores
        if not platform.offloads:
            # Host-executed primitives need a core each; extra GC
            # threads beyond the core count cannot add parallelism.
            self.threads = min(self.threads, cores)
        # Residual work always runs on the host, core-bounded even when
        # many more threads sit blocked on offload responses.
        self._residual_threads = min(self.threads, cores)
        self.clock = 0.0  # global time; GCs replay back to back

    # -- public API --------------------------------------------------------

    def replay(self, trace: GCTrace) -> GCTimingResult:
        """Replay one GC trace; returns its timing result."""
        platform = self.platform
        started = perf_counter()
        # One enabled check per GC keeps the disabled path at a single
        # attribute read; ``obs is None`` guards every span below.
        obs = get_tracer()
        if not obs.enabled:
            obs = None
        gc_start = self.clock
        work_start = platform.begin_gc(gc_start)
        flush_seconds = work_start - gc_start
        if obs is not None and flush_seconds > 0.0:
            obs.add_span("llc-flush", gc_start, flush_seconds,
                         cat="phase", args={"platform": platform.name})

        thread_clock = [work_start] * self.threads
        primitive_seconds: Dict[Primitive, float] = {}
        residual_seconds = 0.0
        host_busy = flush_seconds  # LLC flush occupies the host
        before = self._snapshot()

        phases = self._phases(trace)
        for phase, events in phases:
            phase_start = thread_clock[0]
            # Least-loaded thread assignment via a heap of clocks.
            heap: List[Tuple[float, int]] = [
                (clock, index) for index, clock in enumerate(thread_clock)]
            heapq.heapify(heap)
            for event in events:
                now, index = heapq.heappop(heap)
                finish = platform.offload_finish(now, event,
                                                 trace.kind)
                duration = finish - now
                primitive_seconds[event.primitive] = \
                    primitive_seconds.get(event.primitive, 0.0) + duration
                if not platform.offloads:
                    host_busy += duration
                elif platform.name != "ideal":
                    # The host thread blocks on the response; only the
                    # dispatch instant burns host pipeline.
                    host_busy += \
                        platform.config.costs.charon_dispatch_overhead_s
                heapq.heappush(heap, (finish, index))
            for clock, index in heap:
                thread_clock[index] = clock
            # The phase's residual host work, split across threads.
            work = trace.residuals.get(phase)
            if work is not None:
                barrier = max(thread_clock)
                share = platform.cost_model.residual_seconds(
                    barrier, work, self._residual_threads)
                residual_seconds += share * self._residual_threads
                host_busy += share * self._residual_threads
                barrier += share
                thread_clock = [barrier] * self.threads
            else:
                barrier = max(thread_clock)
                thread_clock = [barrier] * self.threads
            platform.phase_end(phase)
            if obs is not None:
                obs.add_span(phase, phase_start,
                             thread_clock[0] - phase_start, cat="phase",
                             args={"gc": trace.kind,
                                   "events": len(events)})

        # Residual-only phases that had no events (e.g. summary).
        # ``phases`` is reused from above: event phase segmentation is a
        # pure function of the trace, recomputing it would double the
        # cost of short traces.
        leftover = [name for name in trace.residuals
                    if name not in {p for p, _ in phases}]
        now = max(thread_clock)
        for phase in leftover:
            share = platform.cost_model.residual_seconds(
                now, trace.residuals[phase], self._residual_threads)
            residual_seconds += share * self._residual_threads
            host_busy += share * self._residual_threads
            if obs is not None:
                obs.add_span(phase, now, share, cat="phase",
                             args={"gc": trace.kind, "events": 0})
            now += share
            platform.phase_end(phase)

        if obs is not None:
            obs.add_span(f"{trace.kind} gc", gc_start, now - gc_start,
                         cat="gc",
                         args={"platform": platform.name,
                               "events": len(trace.events)})
        self.clock = now
        result = self._package(trace.kind, gc_start, now, flush_seconds,
                               primitive_seconds, residual_seconds,
                               host_busy, before)
        host_seconds = perf_counter() - started
        self._note_replay(len(trace.events), host_seconds)
        eventlog = get_eventlog()
        if eventlog.enabled:
            eventlog.emit(
                "gc_pause",
                collector=COLLECTOR_FOR_KIND.get(trace.kind, trace.kind),
                kind=trace.kind, platform=platform.name,
                sim_ns=int((now - gc_start) * 1e9),
                host_ns=int(host_seconds * 1e9),
                events=len(trace.events))
        return result

    def replay_all(self, traces: Iterable[GCTrace]) -> GCTimingResult:
        """Replay a run's GC events back to back; returns the combined
        result."""
        results = [self.replay(trace) for trace in traces]
        return GCTimingResult.combine(results)

    # -- internals -----------------------------------------------------------

    def _note_replay(self, events: int, elapsed: float,
                     chunks: int = 0) -> None:
        """Record which kernel replayed how much, and how fast.

        Feeds the ``replay.kernel_*`` metrics ``repro stats`` reports,
        so a run always shows whether the fast path actually ran (and
        the CI fast-path-coverage check can fail on silent fallbacks).
        """
        from repro.obs.metrics import global_metrics

        scope = global_metrics().scope("replay")
        labels = {"kernel": self.kernel_name,
                  "platform": self.platform.name}
        scope.counter("kernel_events",
                      "events replayed through this kernel",
                      **labels).add(events)
        scope.counter("kernel_seconds",
                      "host wall-clock seconds spent replaying",
                      **labels).add(elapsed)
        if chunks:
            scope.counter("kernel_chunks",
                          "stage-2 chunks the batched kernels consumed",
                          **labels).add(chunks)
        if elapsed > 0:
            scope.gauge("kernel_events_per_sec",
                        "replay throughput of the last GC",
                        **labels).set(events / elapsed)

    def _snapshot(self) -> Tuple:
        """Platform counter snapshot taken at GC start."""
        platform = self.platform
        return (platform.charon_busy_seconds(),
                platform.bitmap_cache_counters(),
                platform.memory_snapshot(),
                platform.traffic_detail())

    def _package(self, gc_kind: str, gc_start: float, now: float,
                 flush_seconds: float,
                 primitive_seconds: Dict[Primitive, float],
                 residual_seconds: float, host_busy: float,
                 before: Tuple) -> GCTimingResult:
        """Assemble the timing result from counter deltas.

        Shared with the vectorized fast path so both replayers report
        through identical accounting code.
        """
        platform = self.platform
        charon_busy_before, (bc_hits_before, bc_accesses_before), \
            (bytes_before, energy_before), traffic_before = before
        wall = now - gc_start
        bytes_after, energy_after = platform.memory_snapshot()
        result = GCTimingResult(
            platform=platform.name,
            gc_kind=gc_kind,
            wall_seconds=wall,
            primitive_seconds=primitive_seconds,
            residual_seconds=residual_seconds,
            flush_seconds=flush_seconds,
            dram_bytes=bytes_after - bytes_before,
        )
        traffic_after = platform.traffic_detail()
        if traffic_after:
            result.link_bytes = int(traffic_after["link_bytes"]
                                    - traffic_before.get("link_bytes", 0))
            result.tsv_bytes = int(traffic_after["tsv_bytes"]
                                   - traffic_before.get("tsv_bytes", 0))
            result.local_fraction = traffic_after["local_fraction"]
        bc_hits, bc_accesses = platform.bitmap_cache_counters()
        result.bitmap_cache_hits = bc_hits - bc_hits_before
        result.bitmap_cache_accesses = bc_accesses - bc_accesses_before
        result.energy = self._energy(
            wall, host_busy, energy_after - energy_before,
            platform.charon_busy_seconds() - charon_busy_before)
        result.replay_kernel = self.kernel_name
        return result

    @staticmethod
    def _phases(trace: GCTrace) -> List[Tuple[str, List[TraceEvent]]]:
        phases: List[Tuple[str, List[TraceEvent]]] = []
        for event in trace.events:
            if not phases or phases[-1][0] != event.phase:
                phases.append((event.phase, []))
            phases[-1][1].append(event)
        return phases

    def _energy(self, wall: float, host_busy: float, memory_j: float,
                charon_busy: float) -> PlatformEnergy:
        """Package-level energy model.

        Host: during a stop-the-world collection every GC thread
        occupies a core for the whole pause — working, spinning in the
        termination protocol, or busy-waiting on a blocked offload (the
        Sec. 4.1 intrinsic blocks the calling thread) — so the package
        draws near-active power for ``min(threads, cores)`` cores
        regardless of platform.  This is why Charon's energy saving
        (Fig. 17) tracks its speedup sublinearly.  Charon: per-unit
        active power for unit-busy-seconds plus a small static floor.
        Memory: the pJ/bit accounting done by the resources.
        """
        costs = self.platform.config.costs
        cores = self.platform.config.host.num_cores
        active_threads = min(self.threads, cores)
        host_power = costs.host_idle_power_w \
            + (costs.host_active_power_w - costs.host_idle_power_w) \
            * active_threads / cores
        host_j = host_power * wall
        charon_j = 0.0
        if self.platform.device is not None:
            charon_j = (costs.charon_unit_active_power_w * charon_busy
                        + costs.charon_static_power_w * wall)
        return PlatformEnergy(host_j=host_j, memory_j=memory_j,
                              charon_j=charon_j)
