"""Batched stateful replay kernels (the two-stage fast path).

The closed-form kernels in :mod:`repro.platform.fast_replay` only cover
platforms whose event costs are pure functions of the event.  Everything
else — multi-threaded DDR4, ``cpu-hmc``, the Charon platforms — couples
events through shared state: FIFO bandwidth horizons, the anonymous
round-robin cursor, per-unit busy clocks, the TLB/bitmap-cache ports and
the bitmap cache's tag/LRU contents.  Those platforms replay through the
kernels here instead, in two stages:

* **stage 1** (:meth:`begin`) precomputes, over the compiled trace's
  columns, every order-independent per-event quantity — primitive
  classification, per-resource byte reservations and service times,
  latency/MLP/issue bound constants, request/response packet chains,
  cube routing and bitmap line addresses — and applies all
  order-independent *accounting* (byte counters, energy, packet and
  queue statistics) in bulk;
* **stage 2** (:meth:`run_phase`) replays only the order-dependent
  recurrence — thread clocks under least-loaded assignment, fluid
  resource ``busy_until`` horizons, unit busy clocks, the anonymous cube
  cursor, and the bitmap cache's real tag state — as a tight chunked
  Python loop over the precomputed plans, with no cost-model calls and
  no :class:`~repro.gcalgo.trace.TraceEvent` dispatch.

Equivalence is *exact by construction* for every integer counter and
every individual IEEE-754 operation on the critical path: stage 2
replicates the scalar code's operation order (``max`` placement,
addition association, division operands) so clock values match bit for
bit; only bulk-summed float accounting (busy time, energy) and
cross-phase float accumulations may differ within the fast path's 1e-9
relative contract.  ``tests/test_fast_replay_equivalence.py`` holds the
golden comparisons.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ProtectionFault, ReproError
from repro.gcalgo.columnar import (CODE_TO_PRIMITIVE, CompiledTrace,
                                   PRIMITIVE_TYPE_CODES)
from repro.gcalgo.trace import Primitive, is_marking_phase
from repro.units import CACHE_LINE, HMC_MAX_REQUEST, WORD

#: Stage-2 loop granularity: plans are consumed in slices of this many
#: events (the ``replay.kernel.chunks`` metric counts these).
CHUNK_EVENTS = 4096


class FastReplayUnsupported(ReproError):
    """The platform's event costs cannot be batched (its
    :meth:`~repro.platform.base.Platform.fast_replay_support` refused,
    or the trace touches state the kernel cannot mirror)."""


def _prim_index(compiled: CompiledTrace
                ) -> Tuple[List[Primitive], List[int]]:
    """``(keys, per-event key index)`` for a compiled trace.

    Stage 2 accumulates per-primitive durations into a small list
    indexed by these ids instead of hashing enum members per event;
    the per-primitive addition order is untouched (each primitive's
    events still add in event order), so results stay bit-identical.
    Pure function of the trace, memoized on it (callers must not
    mutate the returned lists).
    """
    cache = _kernel_memo(compiled)
    hit = cache.get("prim_index")
    if hit is None:
        from repro.experiments import stage1_cache

        def produce():
            codes = compiled.events["prim"]
            uq = np.unique(codes)
            return uq, np.searchsorted(uq, codes)

        uq, ids = stage1_cache.fetch(compiled, "prim_index", (),
                                     produce)
        keys = [CODE_TO_PRIMITIVE[int(code)] for code in uq.tolist()]
        hit = cache["prim_index"] = (keys, ids.tolist())
    return hit


def _kernel_memo(compiled: CompiledTrace) -> Dict:
    """Per-trace memo for trace-pure stage-1 products.

    The trace cache hands the same :class:`CompiledTrace` to every
    platform's replayer, so anything that depends only on the trace (or
    on a hashable parameter key) is computed once per trace instead of
    once per ``begin``.  This memo is the in-process front of the
    persistent :mod:`~repro.experiments.stage1_cache`: on a memo miss
    the producers below read through it (and write back on a disk
    miss), so a warm sweep process recomputes no stage-1 arrays at all.
    """
    memo = compiled.__dict__.get("_kernel_memo")
    if memo is None:
        memo = compiled.__dict__["_kernel_memo"] = {}
    return memo


# ---------------------------------------------------------------------------
# Shared stage-1 helpers
# ---------------------------------------------------------------------------

class _CubeMap:
    """A pure mirror of :class:`~repro.mem.vm.VirtualMemory` placement.

    ``vm.lookup`` walks the page-size tables in *insertion order* and
    returns the first mapping covering the address; the mirror keeps the
    same table order so every lookup resolves identically.  The mirror
    is read-only — it never mutates the VM — and is rebuilt whenever the
    VM's total mapping count changes.
    """

    def __init__(self, vm, pcid: int) -> None:
        self.vm = vm
        self.pcid = pcid
        self._sizes: List[int] = []
        self._tables: List[Dict[int, Tuple[int, bool]]] = []
        self._np_tables = None
        self._count = -1
        self.refresh()

    def refresh(self) -> None:
        count = sum(len(t) for t in self.vm._tables.values())
        if count == self._count:
            return
        self._count = count
        self._sizes = list(self.vm._tables.keys())
        self._tables = [
            {vaddr: (m.cube, m.pinned)
             for (p, vaddr), m in table.items() if p == self.pcid}
            for table in self.vm._tables.values()
        ]
        self._np_tables = None

    def np_tables(self) -> List[Tuple[int, np.ndarray, np.ndarray]]:
        """``(page_bytes, sorted page vaddrs, cubes)`` per table, for
        the vectorized column lookup (built lazily per refresh)."""
        tables = self._np_tables
        if tables is None:
            tables = []
            for size, table in zip(self._sizes, self._tables):
                keys = np.fromiter(table.keys(), dtype=np.int64,
                                   count=len(table))
                cubes = np.fromiter((e[0] for e in table.values()),
                                    dtype=np.int64, count=len(table))
                order = np.argsort(keys)
                tables.append((size, keys[order], cubes[order]))
            self._np_tables = tables
        return tables

    def lookup_columns(self, addrs: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`lookup` over an int64 address column.

        Returns ``(cube, page_bytes, mapped)`` arrays; unmapped rows
        have ``mapped`` False (their cube/page values are meaningless).
        Table precedence matches the scalar walk: earlier (insertion
        order) page-size tables win.
        """
        n = len(addrs)
        cube = np.zeros(n, dtype=np.int64)
        psize = np.ones(n, dtype=np.int64)
        mapped = np.zeros(n, dtype=bool)
        for size, keys, cubes in self.np_tables():
            if len(keys) == 0:
                continue
            todo = ~mapped
            if not todo.any():
                break
            sub = addrs[todo]
            page = sub - sub % size
            idx = np.searchsorted(keys, page)
            idxc = np.minimum(idx, len(keys) - 1)
            hit = keys[idxc] == page
            if hit.any():
                rows = np.flatnonzero(todo)[hit]
                cube[rows] = cubes[idxc[hit]]
                psize[rows] = size
                mapped[rows] = True
        return cube, psize, mapped

    def lookup(self, addr: int) -> Optional[Tuple[int, int, bool]]:
        """``(cube, page_bytes, pinned)`` of the mapping, or ``None``."""
        for size, table in zip(self._sizes, self._tables):
            entry = table.get(addr - addr % size)
            if entry is not None:
                return entry[0], size, entry[1]
        return None

    def cube_of(self, addr: int) -> int:
        entry = self.lookup(addr)
        if entry is None:
            raise ProtectionFault(
                f"no mapping for vaddr {addr:#x} in pcid {self.pcid}")
        return entry[0]

    def is_pinned(self, addr: int) -> bool:
        entry = self.lookup(addr)
        return entry is not None and entry[2]

    def split(self, start: int, length: int) -> List[Tuple[int, int]]:
        """``(run_length, cube)`` pieces, merged like
        :meth:`VirtualMemory.split_range_by_cube` (run starts are not
        needed by the kernels, only lengths and owners)."""
        runs: List[Tuple[int, int]] = []
        cursor = start
        end = start + length
        while cursor < end:
            entry = self.lookup(cursor)
            if entry is None:
                raise ProtectionFault(
                    f"no mapping for vaddr {cursor:#x} in pcid "
                    f"{self.pcid}")
            cube, page_bytes, _ = entry
            page_end = cursor - cursor % page_bytes + page_bytes
            run_end = end if end < page_end else page_end
            if runs and runs[-1][1] == cube:
                runs[-1] = (runs[-1][0] + run_end - cursor, cube)
            else:
                runs.append((run_end - cursor, cube))
            cursor = run_end
        return runs


class _Lanes:
    """Flat horizon array over the fluid resources stage 2 touches.

    Each registered :class:`FluidResource` owns two slots — the bulk
    FIFO lane at ``2i`` and the short-request priority lane at ``2i+1``
    — mirroring ``busy_until``/``small_busy_until``.  ``sync_in`` loads
    the real horizons before a phase, ``sync_out`` writes them back
    after, so outside :meth:`run_phase` the real objects stay
    authoritative (the scalar residual path and phase-end hooks run
    against them unchanged).  Dynamic accounting (streams whose target
    is only known in stage 2, e.g. anonymous fault traffic) accumulates
    in ``acc_bytes``/``acc_reqs`` and is deposited at ``sync_out``.
    """

    def __init__(self) -> None:
        self.resources: List = []
        self._index: Dict[int, int] = {}
        self.H: List[float] = []
        self.acc_bytes: List[int] = []
        self.acc_reqs: List[int] = []

    def register(self, resource) -> int:
        """Resource index (lane slots are ``2i`` bulk, ``2i+1`` small)."""
        key = id(resource)
        index = self._index.get(key)
        if index is None:
            index = len(self.resources)
            self._index[key] = index
            self.resources.append(resource)
            self.H.extend((0.0, 0.0))
            self.acc_bytes.append(0)
            self.acc_reqs.append(0)
        return index

    def slot(self, resource, priority: bool) -> int:
        return 2 * self.register(resource) + (1 if priority else 0)

    def sync_in(self) -> None:
        H = self.H
        for i, resource in enumerate(self.resources):
            H[2 * i] = resource.busy_until
            H[2 * i + 1] = resource.small_busy_until

    def sync_out(self) -> None:
        H = self.H
        for i, resource in enumerate(self.resources):
            resource.busy_until = H[2 * i]
            resource.small_busy_until = H[2 * i + 1]
            if self.acc_reqs[i] or self.acc_bytes[i]:
                resource.account_bulk(self.acc_bytes[i], self.acc_reqs[i])
                self.acc_bytes[i] = 0
                self.acc_reqs[i] = 0


def host_event_columns(compiled: CompiledTrace, costs, ipc_hz: float,
                       hit_lat: float):
    """Per-event host-cost columns shared by the host-executed kernels.

    Vectorizes :class:`~repro.platform.host_costs.HostCostModel`'s
    per-primitive instruction/locality maths; returns ``(compute,
    miss_bytes, dependent_batches, priority)`` arrays where ``compute``
    is the roofline's compute-side duration, ``miss_bytes`` the miss
    stream pushed at the memory port, ``dependent_batches`` the serial
    dependence factor and ``priority`` whether the stream rides the
    short-request lane (everything except bulk copies).

    Pure in the trace and the listed cost parameters, so results are
    memoized on the trace keyed by those parameters (the same compiled
    trace replays on several platforms and, in benchmarks, repeatedly).
    The cached arrays are frozen read-only; kernels index them but
    never write.
    """
    key = ("host_cols", ipc_hz, hit_lat,
           costs.copy_instructions_per_byte,
           costs.copy_object_overhead_instructions,
           costs.copy_hit_fraction,
           costs.search_instructions_per_card,
           costs.search_hit_fraction,
           costs.scan_push_instructions_per_ref,
           costs.scan_push_hit_major, costs.scan_push_hit_minor,
           costs.bitmap_instructions_per_bit,
           costs.bitmap_hit_fraction)
    cache = _kernel_memo(compiled)
    hit = cache.get(key)
    if hit is not None:
        return hit
    from repro.experiments import stage1_cache

    compute, miss, dep, priority = stage1_cache.fetch(
        compiled, "host_cols", key[1:],
        lambda: _compute_host_columns(compiled, costs, ipc_hz, hit_lat))
    for array in (compute, miss, dep, priority):
        array.flags.writeable = False
    cache[key] = (compute, miss, dep, priority)
    return compute, miss, dep, priority


def _compute_host_columns(compiled: CompiledTrace, costs,
                          ipc_hz: float, hit_lat: float):
    """The actual :func:`host_event_columns` precompute (the producer
    behind the memo and the stage-1 cache)."""
    ev = compiled.events
    derived = compiled.derived_columns()
    n = len(ev)
    instr = np.zeros(n, dtype=np.float64)
    touched = np.zeros(n, dtype=np.int64)
    hitf = np.zeros(n, dtype=np.float64)
    dep = np.ones(n, dtype=np.float64)

    copy = derived["is_copy"]
    search = derived["is_search"]
    scan = derived["is_scan"]
    bitmap = derived["is_bitmap"]
    known = int(copy.sum() + search.sum() + scan.sum() + bitmap.sum())
    if known != n:
        raise FastReplayUnsupported(
            "trace contains primitive codes the host kernels do not "
            "price")

    if copy.any():
        size = ev["size_bytes"][copy]
        instr[copy] = size * costs.copy_instructions_per_byte \
            + costs.copy_object_overhead_instructions
        touched[copy] = 2 * size
        hitf[copy] = costs.copy_hit_fraction
        dep[copy] = 2.0
    if search.any():
        examined = np.maximum(1, derived["search_examined"][search])
        instr[search] = examined * costs.search_instructions_per_card
        touched[search] = examined
        hitf[search] = costs.search_hit_fraction
    if scan.any():
        refs = np.maximum(1, ev["refs"][scan])
        instr[scan] = refs * costs.scan_push_instructions_per_ref
        touched[scan] = refs * CACHE_LINE
        mark_ids = [pid for pid, name in enumerate(compiled.phase_names)
                    if is_marking_phase(name)]
        if mark_ids:
            marking = np.isin(ev["phase"][scan],
                              np.asarray(mark_ids, dtype=np.uint16))
        else:
            marking = np.zeros(int(scan.sum()), dtype=bool)
        hitf[scan] = np.where(marking, costs.scan_push_hit_major,
                              costs.scan_push_hit_minor)
        dep[scan] = np.where(marking, 2.0, 1.0)
    if bitmap.any():
        b = np.maximum(1, derived["eff_bits"][bitmap])
        instr[bitmap] = 12.0 + b * costs.bitmap_instructions_per_bit
        touched[bitmap] = 2 * (b // 8 + 1)
        hitf[bitmap] = costs.bitmap_hit_fraction

    touched_f = touched.astype(np.float64)
    miss = (touched_f * (1.0 - hitf)).astype(np.int64)
    hits = touched_f / CACHE_LINE * hitf
    compute = instr / ipc_hz + hits * hit_lat / 4.0
    priority = ~copy
    return compute, miss, dep, priority


def _path_latency(resources: Sequence) -> float:
    """``ResourcePath.latency`` replicated operation for operation
    (``extra_latency + sum(...)``, with ``extra_latency`` always 0.0 for
    the paths the kernels drive)."""
    return 0.0 + sum(r.latency for r in resources)


# ---------------------------------------------------------------------------
# Host-executed kernels (cpu-ddr4 multi-thread, cpu-hmc)
# ---------------------------------------------------------------------------

class DDR4BatchedKernel:
    """Multi-threaded DDR4 replay: precomputed costs, horizon recurrence.

    Stage 1 lifts :meth:`HostCostModel._roofline` composed with
    :meth:`DDR4System.stream` into columns; the only state left for
    stage 2 is the two channels' bulk/priority FIFO horizons and the GC
    thread clocks (least-loaded assignment via the same heap the
    event-by-event replayer uses).
    """

    name = "ddr4-batched"

    def __init__(self, platform, threads: int) -> None:
        core = platform.host.core
        costs = platform.config.costs
        ddr4 = platform.ddr4
        self.platform = platform
        self.threads = threads
        self.costs = costs
        self.ipc_hz = core.config.gc_ipc * core.config.freq_hz
        self.hit_lat = costs.cache_hit_latency_s
        self.channels = ddr4.channels
        self.n_ch = len(ddr4.channels)
        channel = ddr4.channels[0]
        self.ch_rate = channel.rate
        self.ch_latency = channel.latency
        self.ch_mlp = max(1.0, core.mlp / self.n_ch)
        self.lanes = _Lanes()
        self.ch_slots = [(self.lanes.slot(ch, False),
                          self.lanes.slot(ch, True))
                         for ch in ddr4.channels]
        self.chunks_processed = 0
        self._cols = None

    def begin(self, compiled: CompiledTrace) -> None:
        compute, miss, dep, priority = host_event_columns(
            compiled, self.costs, self.ipc_hz, self.hit_lat)
        # DDR4System.stream: each channel serves int(round(miss / n))
        # bytes (round-half-to-even == np.rint); both channels get the
        # same share, with no issue bound for host streams.
        share = miss.astype(np.float64) / self.n_ch
        r = np.rint(share)
        r_i = r.astype(np.int64)
        service = r / self.ch_rate
        n_req = np.ceil(r / CACHE_LINE)
        lat = self.ch_latency
        a_term = lat * dep
        b_term = (n_req - 1.0) * (lat / self.ch_mlp)
        self._prim_keys, prim_ids = _prim_index(compiled)
        self._cols = (compute.tolist(), miss.tolist(), r_i.tolist(),
                      service.tolist(), a_term.tolist(), b_term.tolist(),
                      priority.tolist(), prim_ids)
        # Bulk accounting: one reservation of the rounded share on every
        # channel per event with a positive share.
        served = r_i > 0
        if served.any():
            total = int(r_i[served].sum())
            count = int(served.sum())
            for channel in self.channels:
                channel.account_bulk(total, count)

    def run_phase(self, lo: int, hi: int, start: float,
                  prim_seconds: Dict[Primitive, float]
                  ) -> Tuple[float, float]:
        lanes = self.lanes
        lanes.sync_in()
        H = lanes.H
        (compute, miss, r_i, service, a_term, b_term, priority,
         pids) = self._cols
        (c0_bulk, c0_small), (c1_bulk, c1_small) = self.ch_slots
        keys = self._prim_keys
        sums = [prim_seconds.get(key) for key in keys]
        busy = 0.0
        heap = [(start, index) for index in range(self.threads)]
        heapify(heap)
        for chunk_lo in range(lo, hi, CHUNK_EVENTS):
            chunk_hi = min(hi, chunk_lo + CHUNK_EVENTS)
            self.chunks_processed += 1
            for i in range(chunk_lo, chunk_hi):
                now, index = heappop(heap)
                finish = now + compute[i]
                if miss[i] > 0:
                    share = r_i[i]
                    a = a_term[i]
                    if share > 0:
                        if priority[i]:
                            l0, l1 = c0_small, c1_small
                        else:
                            l0, l1 = c0_bulk, c1_bulk
                        svc = service[i]
                        fl = (now + a) + b_term[i]
                        s = H[l0]
                        if s < now:
                            s = now
                        e0 = s + svc
                        H[l0] = e0
                        if fl > e0:
                            e0 = fl
                        s = H[l1]
                        if s < now:
                            s = now
                        e1 = s + svc
                        H[l1] = e1
                        if fl > e1:
                            e1 = fl
                        mem = e0 if e0 > e1 else e1
                    else:
                        mem = now + a
                    if mem > finish:
                        finish = mem
                duration = finish - now
                pid = pids[i]
                prev = sums[pid]
                sums[pid] = (duration if prev is None
                             else prev + duration)
                busy += duration
                heappush(heap, (finish, index))
        for key, value in zip(keys, sums):
            if value is not None:
                prim_seconds[key] = value
        barrier = max(clock for clock, _ in heap)
        lanes.sync_out()
        return barrier, busy


class HostHMCBatchedKernel:
    """``cpu-hmc`` replay: per-cube routed host streams, batched.

    Stage 1 resolves every event's miss range into per-cube runs through
    the :class:`_CubeMap` mirror and freezes each run's path (host link,
    cube-to-cube hop, destination TSVs) into ``(slots, services,
    latency-bound constants)``; stage 2 replays only the shared-FIFO
    horizon recurrence.  Ranges that fault (unmapped addresses) fall
    back — exactly like :meth:`HMCHostPort.stream_range` — to the
    anonymous round-robin stream, whose cube cursor is *shared state*
    advanced through the real port so the interleaving with scalar
    residual work is preserved.
    """

    name = "hmc-batched"

    def __init__(self, platform, threads: int) -> None:
        core = platform.host.core
        costs = platform.config.costs
        self.platform = platform
        self.threads = threads
        self.costs = costs
        self.port = platform.port
        self.hmc = platform.hmc
        self.ipc_hz = core.config.gc_ipc * core.config.freq_hz
        self.hit_lat = costs.cache_hit_latency_s
        self.mlp = core.mlp
        self.lanes = _Lanes()
        self.map = _CubeMap(self.port.vm, self.port.pcid)
        # Per-cube host paths: resource lists and path latency, frozen
        # from the real topology objects.
        self._paths = []
        for cube in range(self.hmc.config.cubes):
            resources = self.hmc.host_path(cube).resources
            self._paths.append((resources, _path_latency(resources)))
        self.chunks_processed = 0
        self._plan_cache: Dict[Tuple, Tuple] = {}
        self._compute: List[float] = []
        self._prim_keys: List[Primitive] = []
        self._prim_ids: List[int] = []
        self._plans: List = []

    def _stream_plan(self, cube: int, nbytes: int, prio: bool,
                     dep: float) -> Tuple:
        """((slot, service) pairs, A, B) of one run, cached by key."""
        key = (cube, nbytes, prio, dep)
        plan = self._plan_cache.get(key)
        if plan is None:
            resources, lat = self._paths[cube]
            pairs = tuple((self.lanes.slot(r, prio), nbytes / r.rate)
                          for r in resources)
            n_req = math.ceil(nbytes / CACHE_LINE)
            a_term = lat * dep
            b_term = (n_req - 1) * (lat / self.mlp)
            plan = (pairs, a_term, b_term)
            self._plan_cache[key] = plan
        return plan

    def _account_runs(self, acc: Dict[int, List[int]], cube: int,
                      nbytes: int, count: int) -> None:
        """Accumulate ``count`` runs totalling ``nbytes`` on a cube's
        host path (deposited via ``account_bulk`` when begin ends)."""
        for resource in self._paths[cube][0]:
            ri = self.lanes.register(resource)
            counters = acc.get(ri)
            if counters is None:
                counters = acc[ri] = [0, 0]
            counters[0] += nbytes
            counters[1] += count

    def begin(self, compiled: CompiledTrace) -> None:
        compute, miss, dep, priority = host_event_columns(
            compiled, self.costs, self.ipc_hz, self.hit_lat)
        self.map.refresh()
        src = compiled.events["src"]
        n = len(src)
        plans: List = [None] * n
        acc: Dict[int, List[int]] = {}
        need = np.flatnonzero(miss > 0)
        rest: List[int] = []
        if len(need):
            src_n = src[need]
            nb = miss[need]
            cube, psize, mapped = self.map.lookup_columns(src_n)
            # Single-page ranges (the vast majority) plan in bulk: one
            # run on the page's cube, grouped by (nbytes, cube,
            # priority, dependence) so each distinct plan is built once.
            fits = mapped & (src_n % psize + nb <= psize)
            rows = np.flatnonzero(fits)
            if len(rows):
                cube_s = cube[rows]
                nb_s = nb[rows]
                prio_s = priority[need][rows].astype(np.int64)
                dep2 = (dep[need][rows] == 2.0).astype(np.int64)
                key = ((nb_s * 256 + cube_s) * 2 + prio_s) * 2 + dep2
                _, first, inv = np.unique(key, return_index=True,
                                          return_inverse=True)
                table = []
                for f0 in first.tolist():
                    r0 = int(need[rows[f0]])
                    pairs, a, b = self._stream_plan(
                        int(cube_s[f0]), int(nb_s[f0]),
                        bool(priority[r0]), float(dep[r0]))
                    table.append((1, pairs, a, b))
                for i, j in zip(need[rows].tolist(), inv.tolist()):
                    plans[i] = table[j]
                bsum = np.bincount(cube_s,
                                   weights=nb_s.astype(np.float64))
                bcnt = np.bincount(cube_s)
                for c in np.flatnonzero(bcnt).tolist():
                    self._account_runs(acc, c, int(bsum[c]),
                                       int(bcnt[c]))
            rest = need[~fits].tolist()
        # Leftover events — multi-page ranges and faulting (anonymous)
        # streams — go through the scalar path, exactly as the
        # event-by-event port does.
        for i in rest:
            addr = int(src[i])
            nbytes = int(miss[i])
            prio = bool(priority[i])
            d = float(dep[i])
            try:
                runs = self.map.split(addr, nbytes)
            except ProtectionFault:
                # stream_anon fallback: cube choice is stage-2 state
                # (the shared round-robin cursor).
                plans[i] = (0, nbytes, self.port.anon_share(nbytes),
                            prio, d)
                continue
            event_plan = []
            for run_len, cube_r in runs:
                event_plan.append(self._stream_plan(cube_r, run_len,
                                                    prio, d))
                self._account_runs(acc, cube_r, run_len, 1)
            if len(event_plan) == 1:
                pairs, a, b = event_plan[0]
                plans[i] = (1, pairs, a, b)
            else:
                plans[i] = (2, tuple(event_plan))
        for ri, (nbytes, requests) in acc.items():
            self.lanes.resources[ri].account_bulk(nbytes, requests)
        self._plans = plans
        self._compute = compute.tolist()
        self._prim_keys, self._prim_ids = _prim_index(compiled)

    def _anon_event(self, now: float, H: List[float], plan) -> float:
        """One faulting range streamed anonymously (stage-2 state: the
        cube cursor); accounting accumulates into the lanes."""
        _, nbytes, share, prio, dep = plan
        lanes = self.lanes
        port = self.port
        mem = now
        remaining = nbytes
        while remaining > 0:
            cube = port.take_anon_cube()
            piece = share if share < remaining else remaining
            resources, lat = self._paths[cube]
            f = now
            for resource in resources:
                ri = lanes.register(resource)
                sl = 2 * ri + (1 if prio else 0)
                s = H[sl]
                if s < now:
                    s = now
                e = s + piece / resource.rate
                H[sl] = e
                if e > f:
                    f = e
                lanes.acc_bytes[ri] += piece
                lanes.acc_reqs[ri] += 1
            # stream_anon passes the range's priority through but keeps
            # dependent_batches at 1 (its default).
            fl = (now + lat * 1) + \
                (math.ceil(piece / CACHE_LINE) - 1) * (lat / self.mlp)
            if fl > f:
                f = fl
            if f > mem:
                mem = f
            remaining -= piece
        return mem

    def run_phase(self, lo: int, hi: int, start: float,
                  prim_seconds: Dict[Primitive, float]
                  ) -> Tuple[float, float]:
        lanes = self.lanes
        lanes.sync_in()
        H = lanes.H
        compute = self._compute
        pids = self._prim_ids
        keys = self._prim_keys
        sums = [prim_seconds.get(key) for key in keys]
        plans = self._plans
        busy = 0.0
        heap = [(start, index) for index in range(self.threads)]
        heapify(heap)
        for chunk_lo in range(lo, hi, CHUNK_EVENTS):
            chunk_hi = min(hi, chunk_lo + CHUNK_EVENTS)
            self.chunks_processed += 1
            for cmp, plan, pid in zip(compute[chunk_lo:chunk_hi],
                                      plans[chunk_lo:chunk_hi],
                                      pids[chunk_lo:chunk_hi]):
                now, index = heappop(heap)
                finish = now + cmp
                if plan is not None:
                    tag = plan[0]
                    if tag == 1:  # one run (the hot case), inlined
                        _, pairs, a_term, b_term = plan
                        f = now
                        for sl, svc in pairs:
                            s = H[sl]
                            if s < now:
                                s = now
                            e = s + svc
                            H[sl] = e
                            if e > f:
                                f = e
                        fl = (now + a_term) + b_term
                        mem = fl if fl > f else f
                    elif tag == 0:
                        mem = self._anon_event(now, H, plan)
                    else:  # multi-run range
                        mem = now
                        for pairs, a_term, b_term in plan[1]:
                            f = now
                            for sl, svc in pairs:
                                s = H[sl]
                                if s < now:
                                    s = now
                                e = s + svc
                                H[sl] = e
                                if e > f:
                                    f = e
                            fl = (now + a_term) + b_term
                            if fl > f:
                                f = fl
                            if f > mem:
                                mem = f
                    if mem > finish:
                        finish = mem
                duration = finish - now
                prev = sums[pid]
                sums[pid] = (duration if prev is None
                             else prev + duration)
                busy += duration
                heappush(heap, (finish, index))
        for key, value in zip(keys, sums):
            if value is not None:
                prim_seconds[key] = value
        barrier = max(clock for clock, _ in heap)
        lanes.sync_out()
        return barrier, busy


# ---------------------------------------------------------------------------
# Charon offload kernel
# ---------------------------------------------------------------------------

class CharonBatchedKernel:
    """Batched offload replay for ``charon`` / ``charon-cpuside``.

    Stage 1 routes every event to its (cube, unit-class) pool, freezes
    the request/response packet chains into flat time addends, compiles
    each unit execution into stream plans and bitmap line lists, and
    bulk-applies every order-independent counter (offload tallies,
    packet/probe/link bytes, TLB lookup counts, unit local/remote
    bytes).  Stage 2 keeps only what is genuinely order-dependent: the
    per-unit busy clocks (least-loaded dispatch), the link/TSV and
    TLB/bitmap-cache port horizons, and the bitmap cache's real tag/LRU
    state machine.

    Distributed charon is handled by resolving every TLB lookup and
    bitmap-cache access to its owning slice at plan time: plans carry
    ``(port slot, remote penalty)`` pairs (and per-line ``(address,
    slice, penalty)`` triples) instead of assuming the single central
    slice, and stage 2 keeps one port horizon and one tag array per
    slice.  With one slice the arithmetic degenerates to the unified
    fast path bit-for-bit.
    """

    name = "charon-batched"

    def __init__(self, platform, threads: int) -> None:
        device = platform.device
        cfg = platform.config
        self.platform = platform
        self.threads = threads
        self.device = device
        self.hmc = platform.hmc
        self.cpu_side = device.cpu_side
        self.pcid = device.context.pcid
        self.dispatch = cfg.costs.charon_dispatch_overhead_s
        self.cyc = device.context.unit_cycle_s
        self.access_lat = cfg.hmc.access_latency_s
        self.chunk = cfg.charon.request_granularity
        self.mai = cfg.charon.mai_entries_per_cube
        self.issue = cfg.charon.unit_freq_hz
        self.scan_local = (cfg.charon.scan_push_local
                           and not self.cpu_side)
        self.ref_cubes = cfg.hmc.cubes
        self.central = device.central

        self.lanes = _Lanes()
        self.map = _CubeMap(device.context.vm, self.pcid)

        # TLB / bitmap-cache slices.  Unified devices have one slice;
        # ``charon --distributed`` has one per cube, and every lookup
        # is dispatched to the slice owning the translated address
        # (mirroring ``CharonContext.translate`` /
        # ``BitmapCacheComplex.slice_for``).  Port rates and latencies
        # are uniform across slices, so only the slot and the remote
        # penalty vary per lookup.
        self.distributed = device.tlbs.distributed
        self.tlbs = device.tlbs.slices
        self.tlb_slots = [self.lanes.slot(t.port, False)
                          for t in self.tlbs]
        self.tlb_svc = 1 / self.tlbs[0].port.rate
        self._tlb_uses = {}  # (unit cube, slice) -> lookup tuple

        self.bcs = device.bitmap_cache.slices
        self.bc_access = [b.cache.access for b in self.bcs]
        self.bc_slots = [self.lanes.slot(b.port, False)
                         for b in self.bcs]
        self.bc_svc = 1 / self.bcs[0].port.rate
        self.bc_mem = self.bcs[0].memory_latency_s
        self.bc_enabled = self.bcs[0].enabled
        self._read_acc = [0] * len(self.bcs)
        self._read_hits = [0] * len(self.bcs)

        # Unit pools, in the device's routing keys.
        self.pools: List[List] = []
        self.pool_of: Dict[Tuple[str, int], int] = {}
        for key, units in device.units.items():
            self.pool_of[key] = len(self.pools)
            self.pools.append(units)
        self._busy = [[0.0] * len(p) for p in self.pools]
        self._acc_cmds = [[0] * len(p) for p in self.pools]
        self._acc_busy = [[0.0] * len(p) for p in self.pools]

        # Per-(unit cube, target cube) stream paths.
        self._paths: Dict[Tuple[int, int], Tuple[List, float]] = {}
        self._plan_cache: Dict[Tuple, Tuple] = {}

        # Packet chains (flat addends) per destination cube.
        hl = self.hmc.host_link
        self._req_size = cfg.charon.request_packet_bytes
        self._resp_sizes = (cfg.charon.response_packet_bytes_noval,
                            cfg.charon.response_packet_bytes)
        self._req_chain: Dict[int, Tuple] = {}
        self._resp_chain: Dict[Tuple[int, int], Tuple] = {}
        if not self.cpu_side:
            for cube in range(cfg.hmc.cubes):
                cross = self.hmc._link_chain(self.central, cube)
                self._req_chain[cube] = (
                    self._req_size / hl.rate, hl.latency,
                    tuple(self._req_size / l.rate + l.latency
                          for l in cross))
                back = self.hmc._link_chain(cube, self.central)
                for hv, size in ((0, self._resp_sizes[0]),
                                 (1, self._resp_sizes[1])):
                    self._resp_chain[(cube, hv)] = (
                        tuple(size / l.rate + l.latency for l in back),
                        size / hl.rate, hl.latency)
        self.chunks_processed = 0
        self._plans: List = []
        self._prim_keys: List[Primitive] = []
        self._prim_ids: List[int] = []
        self._bc_uses: Dict[Tuple[int, int], Tuple[int, float]] = {}

    # -- stage-1 helpers ---------------------------------------------------

    def _path(self, c: int, t: int) -> Tuple[List, float]:
        key = (c, t)
        path = self._paths.get(key)
        if path is None:
            if self.cpu_side:
                resources = self.hmc.host_path(t).resources
            else:
                resources = self.hmc.unit_path(c, t).resources
            path = (resources, _path_latency(resources))
            self._paths[key] = path
        return path

    def _stream_plan(self, c: int, t: int, nbytes: int, chunk: int,
                     prio: bool) -> Tuple:
        key = (c, t, nbytes, chunk, prio)
        plan = self._plan_cache.get(key)
        if plan is None:
            resources, rt = self._path(c, t)
            slots = tuple(self.lanes.slot(r, prio) for r in resources)
            svcs = tuple(nbytes / r.rate for r in resources)
            n = math.ceil(nbytes / chunk)
            plan = (slots, svcs, rt * 1, (n - 1) * (rt / self.mai),
                    n / self.issue, rt)
            self._plan_cache[key] = plan
        return plan

    def _account_stream(self, acc: Dict[int, List[int]], c: int, t: int,
                        nbytes: int, count: int = 1) -> None:
        """Accumulate ``count`` streams totalling ``nbytes`` from unit
        cube ``c`` to target cube ``t`` (deposited when begin ends)."""
        if not self.cpu_side:
            if c == t:
                self._local_bytes += nbytes
            else:
                self._remote_bytes += nbytes
        for resource in self._path(c, t)[0]:
            ri = self.lanes.register(resource)
            counters = acc.get(ri)
            if counters is None:
                counters = acc[ri] = [0, 0]
            counters[0] += nbytes
            counters[1] += count

    def _tlb_use(self, c: int, owner: int) -> Tuple:
        """(slot, penalty, slice, remote?) for one TLB lookup.

        ``c`` is the unit cube issuing the lookup; ``owner`` is the
        cube whose slice holds the translation (ignored when the TLB
        is unified).
        """
        si = owner if self.distributed else 0
        key = (c, si)
        use = self._tlb_uses.get(key)
        if use is None:
            tlb = self.tlbs[si]
            remote = c != tlb.home_cube
            pen = 2 * tlb.link_latency_s if remote else 0.0
            use = (self.tlb_slots[si], pen, si, remote)
            self._tlb_uses[key] = use
        return use

    def _bc_use(self, c: int, owner: int) -> Tuple[int, float]:
        """(slice, penalty) for one bitmap-cache access from cube
        ``c`` against the slice owning cube ``owner``."""
        si = owner if self.distributed else 0
        key = (c, si)
        use = self._bc_uses.get(key)
        if use is None:
            bc = self.bcs[si]
            pen = (2 * bc.link_latency_s
                   if c != bc.home_cube else 0.0)
            use = (si, pen)
            self._bc_uses[key] = use
        return use

    def _entry(self, kind_key: str, u: int, has_value: int,
               ex: Tuple) -> Tuple:
        """The per-event plan tuple stage 2 consumes."""
        pool = self.pool_of[(kind_key, u)]
        if self.cpu_side:
            return (pool, None, None, ex)
        return (pool, self._req_chain[u],
                self._resp_chain[(u, has_value)], ex)

    def begin(self, compiled: CompiledTrace) -> None:
        info = self.device._require_init()
        self.map.refresh()
        ev = compiled.events
        prim = ev["prim"]
        n = len(prim)
        derived = compiled.derived_columns()
        copy_m = derived["is_copy"]
        search_m = derived["is_search"]
        scan_m = derived["is_scan"]
        bitmap_m = derived["is_bitmap"]
        if int(copy_m.sum() + search_m.sum() + scan_m.sum()
               + bitmap_m.sum()) != n:
            raise FastReplayUnsupported(
                "trace contains primitive codes the Charon kernel "
                "does not model")
        marking_kind = compiled.kind in ("major", "g1", "concurrent")
        cpu_side = self.cpu_side
        cyc = self.cyc
        chunk = self.chunk
        src = ev["src"]
        dst = ev["dst"]
        size = ev["size_bytes"]
        refs = ev["refs"]
        pushes = ev["pushes"]
        code_copy = PRIMITIVE_TYPE_CODES[Primitive.COPY]
        code_search = PRIMITIVE_TYPE_CODES[Primitive.SEARCH]
        code_scan = PRIMITIVE_TYPE_CODES[Primitive.SCAN_PUSH]

        self._local_bytes = 0
        self._remote_bytes = 0
        acc: Dict[int, List[int]] = {}
        batches: Dict[Tuple[int, int], int] = {}
        tallies = {"tlb": [0] * len(self.tlbs),
                   "tlb_remote": [0] * len(self.tlbs),
                   "bc_port": [0] * len(self.bcs),
                   "probes": 0}
        t_tlb = tallies["tlb"]
        t_rem = tallies["tlb_remote"]
        plans: List = [None] * n

        # Rows stage 1 cannot group: bitmap counts (their cache-line
        # lists are per-event) and marking-phase scans (mark line
        # addresses depend on the object address) take the scalar
        # planner below; so do multi-page ranges found along the way.
        leftover = bitmap_m.copy()
        if marking_kind:
            leftover |= scan_m

        src_cube, src_psize, src_mapped = self.map.lookup_columns(src)
        dst_cube, dst_psize, dst_mapped = self.map.lookup_columns(dst)
        sized = size > 0
        if cpu_side:
            need_src = (copy_m & sized) | search_m \
                | (scan_m & (refs > 0))
        elif self.scan_local:
            need_src = copy_m | search_m | scan_m
        else:
            need_src = copy_m | search_m | (scan_m & (refs > 0))
        if (need_src & ~src_mapped).any() \
                or (copy_m & sized & ~dst_mapped).any():
            # An event will fault.  Replan everything through the
            # scalar planner, which raises the identical
            # ProtectionFault at the identical event — accounting is
            # deferred to the end of begin, so a faulting begin never
            # mutates the platform on either path.
            self._plan_events(compiled, info, range(n), plans, acc,
                              batches, tallies)
        else:
            zeros = np.zeros(n, dtype=np.int64)
            ucube_cs = zeros if cpu_side else src_cube
            src_off = src % src_psize
            dst_off = dst % dst_psize

            # -- copies ----------------------------------------------
            rows = np.flatnonzero(copy_m & ~sized)
            if len(rows):
                uq, inv = np.unique(ucube_cs[rows],
                                    return_inverse=True)
                table = []
                for u0, m in zip(uq.tolist(),
                                 np.bincount(inv).tolist()):
                    table.append(self._entry("copy_search", u0, 0,
                                             ("T", cyc)))
                    batches[(u0, code_copy)] = \
                        batches.get((u0, code_copy), 0) + m
                for i, j in zip(rows.tolist(), inv.tolist()):
                    plans[i] = table[j]
            rows = np.flatnonzero(copy_m & sized)
            if len(rows):
                sz = size[rows]
                fits = (src_off[rows] + sz <= src_psize[rows]) \
                    & (dst_off[rows] + sz <= dst_psize[rows])
                leftover[rows[~fits]] = True
                vec = rows[fits]
                if len(vec):
                    u_a = ucube_cs[vec]
                    sc_a = src_cube[vec]
                    dc_a = dst_cube[vec]
                    sz_a = size[vec]
                    key = ((sz_a * 64 + u_a) * 64 + sc_a) * 64 + dc_a
                    _, first, inv = np.unique(key, return_index=True,
                                              return_inverse=True)
                    table = []
                    for f0, m in zip(first.tolist(),
                                     np.bincount(inv).tolist()):
                        u0 = int(u_a[f0])
                        sc0 = int(sc_a[f0])
                        dc0 = int(dc_a[f0])
                        sz0 = int(sz_a[f0])
                        use_s = self._tlb_use(u0, sc0)
                        use_d = self._tlb_use(u0, dc0)
                        ex = ("C", ((use_s[0], use_s[1]),
                                    (use_d[0], use_d[1])),
                              (self._stream_plan(u0, sc0, sz0, chunk,
                                                 False),),
                              (self._stream_plan(u0, dc0, sz0, chunk,
                                                 False),))
                        table.append(self._entry("copy_search", u0, 0,
                                                 ex))
                        batches[(u0, code_copy)] = \
                            batches.get((u0, code_copy), 0) + m
                        for _, _, si, rem in (use_s, use_d):
                            t_tlb[si] += m
                            if rem:
                                t_rem[si] += m
                        tallies["probes"] += \
                            2 * math.ceil(sz0 / chunk) * m
                        self._account_stream(acc, u0, sc0, sz0 * m, m)
                        self._account_stream(acc, u0, dc0, sz0 * m, m)
                    for i, j in zip(vec.tolist(), inv.tolist()):
                        plans[i] = table[j]

            # -- searches --------------------------------------------
            rows = np.flatnonzero(search_m)
            if len(rows):
                examined = np.maximum(
                    32, derived["search_examined"][rows])
                fits = src_off[rows] + examined <= src_psize[rows]
                leftover[rows[~fits]] = True
                keep = np.flatnonzero(fits)
                if len(keep):
                    vec = rows[keep]
                    ex_a = examined[keep]
                    u_a = ucube_cs[vec]
                    sc_a = src_cube[vec]
                    key = (ex_a * 64 + u_a) * 64 + sc_a
                    _, first, inv = np.unique(key, return_index=True,
                                              return_inverse=True)
                    table = []
                    for f0, m in zip(first.tolist(),
                                     np.bincount(inv).tolist()):
                        u0 = int(u_a[f0])
                        sc0 = int(sc_a[f0])
                        ex0 = int(ex_a[f0])
                        s_chunk = min(HMC_MAX_REQUEST, ex0)
                        use = self._tlb_use(u0, sc0)
                        ex = ("S", (use[0], use[1]),
                              (self._stream_plan(u0, sc0, ex0, s_chunk,
                                                 False),),
                              math.ceil(ex0 / 32) * cyc)
                        table.append(self._entry("copy_search", u0, 1,
                                                 ex))
                        batches[(u0, code_search)] = \
                            batches.get((u0, code_search), 0) + m
                        t_tlb[use[2]] += m
                        if use[3]:
                            t_rem[use[2]] += m
                        tallies["probes"] += \
                            math.ceil(ex0 / s_chunk) * m
                        self._account_stream(acc, u0, sc0, ex0 * m, m)
                    for i, j in zip(vec.tolist(), inv.tolist()):
                        plans[i] = table[j]

            # -- scans (non-marking kinds only) ----------------------
            if not marking_kind:
                if cpu_side:
                    u_all = zeros
                elif self.scan_local:
                    u_all = src_cube
                else:
                    u_all = np.full(n, self.central, dtype=np.int64)
                rows = np.flatnonzero(scan_m & (refs <= 0))
                if len(rows):
                    uq, inv = np.unique(u_all[rows],
                                        return_inverse=True)
                    table = []
                    for u0, m in zip(uq.tolist(),
                                     np.bincount(inv).tolist()):
                        table.append(self._entry("scan_push", u0, 1,
                                                 ("T", 2 * cyc)))
                        batches[(u0, code_scan)] = \
                            batches.get((u0, code_scan), 0) + m
                    for i, j in zip(rows.tolist(), inv.tolist()):
                        plans[i] = table[j]
                rows = np.flatnonzero(scan_m & (refs > 0))
                if len(rows):
                    rf_a = refs[rows]
                    ps_a = pushes[rows]
                    r_span = int(rf_a.max()) + 1
                    p_span = int(ps_a.max()) + 1
                    if r_span * p_span * 64 * 64 >= 2 ** 62:
                        leftover[rows] = True
                    else:
                        u_a = u_all[rows]
                        oc_a = src_cube[rows]
                        key = ((rf_a * p_span + ps_a) * 64 + u_a) \
                            * 64 + oc_a
                        _, first, inv = np.unique(
                            key, return_index=True,
                            return_inverse=True)
                        table = []
                        for f0, m in zip(first.tolist(),
                                         np.bincount(inv).tolist()):
                            u0 = int(u_a[f0])
                            oc0 = int(oc_a[f0])
                            rf0 = int(rf_a[f0])
                            ps0 = int(ps_a[f0])
                            slot_bytes = max(CACHE_LINE, rf0 * 8)
                            slot_plan = self._stream_plan(
                                u0, oc0, slot_bytes, 256, True)
                            self._account_stream(acc, u0, oc0,
                                                 slot_bytes * m, m)
                            per_cube = [rf0 // self.ref_cubes] \
                                * self.ref_cubes
                            for extra in range(rf0 % self.ref_cubes):
                                per_cube[extra] += 1
                            ref_plans = []
                            for t, count in enumerate(per_cube):
                                if count == 0:
                                    continue
                                nb = count * CACHE_LINE
                                ref_plans.append(self._stream_plan(
                                    u0, t, nb, CACHE_LINE, True))
                                self._account_stream(acc, u0, t,
                                                     nb * m, m)
                            use = self._tlb_use(u0, oc0)
                            ex = ("P", (use[0], use[1]), slot_plan,
                                  tuple(ref_plans), ps0 * cyc, None)
                            table.append(self._entry("scan_push", u0,
                                                     1, ex))
                            batches[(u0, code_scan)] = \
                                batches.get((u0, code_scan), 0) + m
                            t_tlb[use[2]] += m
                            if use[3]:
                                t_rem[use[2]] += m
                            tallies["probes"] += rf0 * m
                        for i, j in zip(rows.tolist(), inv.tolist()):
                            plans[i] = table[j]

            rest = np.flatnonzero(leftover).tolist()
            if rest:
                self._plan_events(compiled, info, rest, plans, acc,
                                  batches, tallies)

        self._finish_accounting(compiled, copy_m, batches, acc,
                                tallies)
        self._plans = plans
        self._prim_keys, self._prim_ids = _prim_index(compiled)

    def _plan_events(self, compiled: CompiledTrace, info,
                     indices, plans: List, acc: Dict[int, List[int]],
                     batches: Dict[Tuple[int, int], int],
                     tallies: Dict[str, int]) -> None:
        """Scalar (per-event) planner — the reference implementation.

        Plans ``indices`` exactly as the event-by-event offload path
        would, mutating the shared accumulators.  The vectorized stage
        1 routes here only the rows it cannot group (bitmap counts,
        marking-phase scans, multi-page ranges) — plus the whole trace
        when a ProtectionFault must be raised in event order.
        """
        cube_of = self.map.cube_of
        marking_kind = compiled.kind in ("major", "g1", "concurrent")
        covered = info.heap_end - info.bitmap_covered_start
        bc_line = self.bcs[0].line_bytes
        cyc = self.cyc
        chunk = self.chunk
        t_tlb = tallies["tlb"]
        t_rem = tallies["tlb_remote"]
        t_bc = tallies["bc_port"]
        bitmap_owner = None  # slice owner of the map base, lazily

        ev = compiled.events
        prim_c = ev["prim"]
        src_c = ev["src"]
        dst_c = ev["dst"]
        size_c = ev["size_bytes"]
        refs_c = ev["refs"]
        pushes_c = ev["pushes"]
        bits_c = ev["bits"]
        found_c = ev["found"]

        code_copy = PRIMITIVE_TYPE_CODES[Primitive.COPY]
        code_search = PRIMITIVE_TYPE_CODES[Primitive.SEARCH]
        code_scan = PRIMITIVE_TYPE_CODES[Primitive.SCAN_PUSH]

        for i in indices:
            p = int(prim_c[i])
            src = int(src_c[i])
            if p == code_scan:
                if self.cpu_side:
                    cube = 0
                elif self.scan_local:
                    cube = cube_of(src)
                else:
                    cube = self.central
                key = ("scan_push", cube)
            elif p == code_copy or p == code_search:
                cube = 0 if self.cpu_side else cube_of(src)
                key = ("copy_search", cube)
            else:
                bit_index = (src - info.bitmap_covered_start) // WORD
                baddr = info.bitmap_base + bit_index // 8
                cube = 0 if self.cpu_side else cube_of(baddr)
                key = ("bitmap_count", cube)
            pool = self.pool_of[key]
            unit_cube = cube  # units live on their routing cube

            if p == code_copy:
                size = int(size_c[i])
                if size <= 0:
                    ex = ("T", cyc)
                    uses = ()
                else:
                    dst = int(dst_c[i])
                    use_s = self._tlb_use(
                        unit_cube,
                        cube_of(src) if self.distributed else 0)
                    use_d = self._tlb_use(
                        unit_cube,
                        cube_of(dst) if self.distributed else 0)
                    runs = self.map.split(src, size)
                    reads = tuple(
                        self._stream_plan(unit_cube, t, nb, chunk,
                                          False) for nb, t in runs)
                    for nb, t in runs:
                        self._account_stream(acc, unit_cube, t, nb)
                    runs = self.map.split(dst, size)
                    writes = tuple(
                        self._stream_plan(unit_cube, t, nb, chunk,
                                          False) for nb, t in runs)
                    for nb, t in runs:
                        self._account_stream(acc, unit_cube, t, nb)
                    ex = ("C", ((use_s[0], use_s[1]),
                                (use_d[0], use_d[1])), reads, writes)
                    uses = (use_s, use_d)
                    tallies["probes"] += 2 * math.ceil(size / chunk)
                has_value = 0
            elif p == code_search:
                size = int(size_c[i])
                examined = max(32, size // 2 if found_c[i] else size)
                s_chunk = min(HMC_MAX_REQUEST, max(32, examined))
                use = self._tlb_use(
                    unit_cube,
                    cube_of(src) if self.distributed else 0)
                runs = self.map.split(src, examined)
                run_plans = tuple(
                    self._stream_plan(unit_cube, t, nb, s_chunk, False)
                    for nb, t in runs)
                for nb, t in runs:
                    self._account_stream(acc, unit_cube, t, nb)
                ex = ("S", (use[0], use[1]), run_plans,
                      math.ceil(examined / 32) * cyc)
                uses = (use,)
                tallies["probes"] += math.ceil(examined / s_chunk)
                has_value = 1
            elif p == code_scan:
                refs = int(refs_c[i])
                if refs <= 0:
                    ex = ("T", 2 * cyc)
                    uses = ()
                else:
                    obj_cube = cube_of(src)
                    use = self._tlb_use(unit_cube, obj_cube)
                    slot_bytes = max(CACHE_LINE, refs * 8)
                    slot_plan = self._stream_plan(
                        unit_cube, obj_cube, slot_bytes, 256, True)
                    self._account_stream(acc, unit_cube, obj_cube,
                                         slot_bytes)
                    per_cube = [refs // self.ref_cubes] * self.ref_cubes
                    for extra in range(refs % self.ref_cubes):
                        per_cube[extra] += 1
                    ref_plans = []
                    for t, count in enumerate(per_cube):
                        if count == 0:
                            continue
                        nb = count * CACHE_LINE
                        ref_plans.append(self._stream_plan(
                            unit_cube, t, nb, CACHE_LINE, True))
                        self._account_stream(acc, unit_cube, t, nb)
                    pushes = int(pushes_c[i])
                    marks = None
                    if marking_kind and pushes and covered > 0:
                        window_base = ((src >> 14) * 2654435761) \
                            % max(1, covered)
                        lines = []
                        for index in range(pushes):
                            off = (window_base + (src & 0x3FF0)
                                   + index * 64) % covered
                            line_addr = info.bitmap_base + off // 64
                            ci, bpen = self._bc_use(
                                unit_cube, cube_of(line_addr))
                            lines.append((line_addr, ci, bpen))
                            t_bc[ci] += 1
                        marks = tuple(lines)
                    ex = ("P", (use[0], use[1]), slot_plan,
                          tuple(ref_plans), pushes * cyc, marks)
                    uses = (use,)
                    tallies["probes"] += refs
                has_value = 1
            else:  # bitmap count
                bits = int(bits_c[i])
                if bits <= 0:
                    ex = ("T", cyc)
                    uses = ()
                else:
                    # The scalar unit translates the (constant) map
                    # base, so the owning slice is fixed per trace.
                    if bitmap_owner is None:
                        bitmap_owner = (cube_of(info.bitmap_base)
                                        if self.distributed else 0)
                    use = self._tlb_use(unit_cube, bitmap_owner)
                    words = (bits + 63) // 64
                    bit_offset = (src - info.bitmap_covered_start) // WORD
                    byte_lo = bit_offset // 8
                    byte_hi = byte_lo + words * WORD
                    lines = []
                    for map_base in (info.bitmap_base,
                                     info.bitmap_base
                                     + info.bitmap_bytes):
                        first = (map_base + byte_lo) // bc_line
                        last = (map_base + byte_hi - 1) // bc_line
                        for idx in range(first, last + 1):
                            line_addr = idx * bc_line
                            ci, bpen = self._bc_use(
                                unit_cube, cube_of(line_addr))
                            lines.append((line_addr, ci, bpen))
                            t_bc[ci] += 1
                    ex = ("B", (use[0], use[1]), tuple(lines),
                          words * cyc)
                    uses = (use,)
                has_value = 1

            for _, _, si, rem in uses:
                t_tlb[si] += 1
                if rem:
                    t_rem[si] += 1
            batches[(cube, p)] = batches.get((cube, p), 0) + 1
            if self.cpu_side:
                plans[i] = (pool, None, None, ex)
            else:
                plans[i] = (pool, self._req_chain[cube],
                            self._resp_chain[(cube, has_value)], ex)

    def _finish_accounting(self, compiled: CompiledTrace,
                           copy_m: np.ndarray,
                           batches: Dict[Tuple[int, int], int],
                           acc: Dict[int, List[int]],
                           tallies: Dict[str, int]) -> None:
        """Apply every order-independent counter begin accumulated."""
        device = self.device
        code_copy = PRIMITIVE_TYPE_CODES[Primitive.COPY]
        probe_requests = tallies["probes"]
        for (cube, p), count in batches.items():
            device.record_offload_batch(cube, CODE_TO_PRIMITIVE[p],
                                        count, p != code_copy)
        if not self.cpu_side:
            hl = self.hmc.host_link
            n_events = len(compiled.events)
            n_copy = int(copy_m.sum())
            req_b = self._req_size * n_events
            resp_b = self._resp_sizes[0] * n_copy \
                + self._resp_sizes[1] * (n_events - n_copy)
            probe_b = 8 * probe_requests
            hl.account_bulk(req_b + resp_b + probe_b,
                            2 * n_events + probe_requests)
            cross: Dict[int, List[int]] = {}
            for (cube, p), count in batches.items():
                for link in self.hmc._link_chain(self.central, cube):
                    size = (self._req_size
                            + self._resp_sizes[1 if p != code_copy
                                               else 0])
                    counters = cross.setdefault(id(link), [0, 0, link])
                    counters[0] += size * count
                    counters[1] += 2 * count
            for nbytes, requests, link in cross.values():
                link.account_bulk(nbytes, requests)
            self.hmc.unit_local_bytes += self._local_bytes
            self.hmc.unit_remote_bytes += self._remote_bytes
        for si, lookups in enumerate(tallies["tlb"]):
            if lookups:
                tlb = self.tlbs[si]
                tlb.lookups += lookups
                tlb.port.account_bulk(lookups, lookups)
        for si, remote in enumerate(tallies["tlb_remote"]):
            if remote:
                self.tlbs[si].remote_lookups += remote
        for ci, accesses in enumerate(tallies["bc_port"]):
            if accesses:
                self.bcs[ci].port.account_bulk(accesses, accesses)
        for ri, (nbytes, requests) in acc.items():
            self.lanes.resources[ri].account_bulk(nbytes, requests)

    # -- stage 2 -----------------------------------------------------------

    def run_phase(self, lo: int, hi: int, start: float,
                  prim_seconds: Dict[Primitive, float]
                  ) -> Tuple[float, float]:
        lanes = self.lanes
        lanes.sync_in()
        self._sync_units_in()
        H = lanes.H
        plans = self._plans
        pids = self._prim_ids
        keys = self._prim_keys
        sums = [prim_seconds.get(key) for key in keys]
        pools_busy = self._busy
        acc_cmds = self._acc_cmds
        acc_busy = self._acc_busy
        dispatch = self.dispatch
        tlb_svc = self.tlb_svc
        bc_slots = self.bc_slots
        bc_svc = self.bc_svc
        bc_mem = self.bc_mem
        bc_enabled = self.bc_enabled
        bc_access = self.bc_access
        access_lat = self.access_lat
        n_bc = len(bc_slots)
        read_acc = [0] * n_bc
        read_hits = [0] * n_bc

        def run_stream(now: float, plan) -> float:
            slots, svcs, a, b, i1, i2 = plan
            f = now
            for sl, svc in zip(slots, svcs):
                s = H[sl]
                if s < now:
                    s = now
                e = s + svc
                H[sl] = e
                if e > f:
                    f = e
            fl = (now + a) + b
            if fl > f:
                f = fl
            fi = (now + i1) + i2
            if fi > f:
                f = fi
            return f

        heap = [(start, index) for index in range(self.threads)]
        heapify(heap)
        for chunk_lo in range(lo, hi, CHUNK_EVENTS):
            chunk_hi = min(hi, chunk_lo + CHUNK_EVENTS)
            self.chunks_processed += 1
            for i in range(chunk_lo, chunk_hi):
                now, index = heappop(heap)
                pool, req, resp, ex = plans[i]
                t0 = now + dispatch
                if req is None:
                    arrival = t0
                else:
                    arrival = (t0 + req[0]) + req[1]
                    for add in req[2]:
                        arrival += add
                busy = pools_busy[pool]
                u = 0
                best = busy[0]
                for k in range(1, len(busy)):
                    if busy[k] < best:
                        best = busy[k]
                        u = k
                s0 = arrival if arrival > best else best

                kind = ex[0]
                if kind == "T":
                    finish = s0 + ex[1]
                    release = finish
                elif kind == "C":
                    f = s0
                    for sl, pen in ex[1]:
                        t = H[sl]
                        if t < s0:
                            t = s0
                        d = t + tlb_svc
                        H[sl] = d
                        d += pen
                        if d > f:
                            f = d
                    read_f = f
                    for plan in ex[2]:
                        r = run_stream(f, plan)
                        if r > read_f:
                            read_f = r
                    first = f + access_lat
                    write_f = first
                    for plan in ex[3]:
                        w = run_stream(first, plan)
                        if w > write_f:
                            write_f = w
                    release = read_f
                    finish = read_f if read_f > write_f else write_f
                elif kind == "S":
                    sl, pen = ex[1]
                    t = H[sl]
                    if t < s0:
                        t = s0
                    d = t + tlb_svc
                    H[sl] = d
                    f = d + pen
                    for plan in ex[2]:
                        r = run_stream(f, plan)
                        if r > f:
                            f = r
                    finish = f + ex[3]
                    release = finish
                elif kind == "P":
                    sl, pen = ex[1]
                    t = H[sl]
                    if t < s0:
                        t = s0
                    d = t + tlb_svc
                    H[sl] = d
                    f = d + pen
                    f = run_stream(f, ex[2])
                    lf = f
                    for plan in ex[3]:
                        r = run_stream(f, plan)
                        if r > lf:
                            lf = r
                    f = lf + ex[4]
                    marks = ex[5]
                    if marks is not None:
                        for line, ci, bc_pen in marks:
                            hit = (bc_access[ci](line, True)
                                   if bc_enabled else False)
                            sl = bc_slots[ci]
                            t = H[sl]
                            if t < f:
                                t = f
                            d = t + bc_svc
                            H[sl] = d
                            if not hit:
                                d += bc_mem
                                if not bc_enabled:
                                    d += bc_mem
                            d += bc_pen
                            if d > f:
                                f = d
                    finish = f
                    release = finish
                else:  # "B"
                    sl, pen = ex[1]
                    t = H[sl]
                    if t < s0:
                        t = s0
                    d = t + tlb_svc
                    H[sl] = d
                    f = d + pen
                    last = f
                    for line, ci, bc_pen in ex[2]:
                        hit = (bc_access[ci](line, False)
                               if bc_enabled else False)
                        read_acc[ci] += 1
                        if hit:
                            read_hits[ci] += 1
                        sl = bc_slots[ci]
                        t = H[sl]
                        if t < f:
                            t = f
                        d = t + bc_svc
                        H[sl] = d
                        if not hit:
                            d += bc_mem
                        d += bc_pen
                        if d > last:
                            last = d
                    finish = last + ex[3]
                    release = finish

                busy[u] = release
                acc_cmds[pool][u] += 1
                acc_busy[pool][u] += release - s0

                if resp is None:
                    r = finish
                else:
                    r = finish
                    for add in resp[0]:
                        r += add
                    r = (r + resp[1]) + resp[2]
                duration = r - now
                pid = pids[i]
                prev = sums[pid]
                sums[pid] = (duration if prev is None
                             else prev + duration)
                heappush(heap, (r, index))

        for key, value in zip(keys, sums):
            if value is not None:
                prim_seconds[key] = value
        for ci in range(n_bc):
            self._read_acc[ci] += read_acc[ci]
            self._read_hits[ci] += read_hits[ci]
        barrier = max(clock for clock, _ in heap)
        lanes.sync_out()
        self._sync_units_out()
        return barrier, (hi - lo) * dispatch

    # -- state synchronisation ---------------------------------------------

    def _sync_units_in(self) -> None:
        for pool, units in enumerate(self.pools):
            busy = self._busy[pool]
            for k, unit in enumerate(units):
                busy[k] = unit.busy_until

    def _sync_units_out(self) -> None:
        for pool, units in enumerate(self.pools):
            busy = self._busy[pool]
            cmds = self._acc_cmds[pool]
            times = self._acc_busy[pool]
            for k, unit in enumerate(units):
                unit.busy_until = busy[k]
                if cmds[k]:
                    unit.commands += cmds[k]
                    unit.busy_time += times[k]
                    cmds[k] = 0
                    times[k] = 0.0
        for ci, accesses in enumerate(self._read_acc):
            if accesses:
                self.bcs[ci].record_reads(accesses,
                                          self._read_hits[ci])
                self._read_acc[ci] = 0
                self._read_hits[ci] = 0


def batched_kernel_for(platform, threads: int):
    """The stage-2 kernel matching a batched-stateful platform."""
    name = platform.name
    if name == "cpu-ddr4":
        return DDR4BatchedKernel(platform, threads)
    if name == "cpu-hmc":
        return HostHMCBatchedKernel(platform, threads)
    if name in ("charon", "charon-cpuside"):
        return CharonBatchedKernel(platform, threads)
    raise FastReplayUnsupported(
        f"no batched kernel is registered for platform {name!r}")
